//! # branch-lab
//!
//! A full-stack reproduction of *"Branch Prediction Is Not A Solved Problem:
//! Measurements, Opportunities, and Future Directions"* (Lin & Tarsa,
//! IISWC 2019).
//!
//! This façade crate re-exports the workspace crates so applications can
//! depend on a single entry point:
//!
//! * [`trace`] — the instruction/trace substrate ([`bp_trace`]).
//! * [`workloads`] — synthetic benchmark generation ([`bp_workloads`]).
//! * [`predictors`] — TAGE-SC-L and baseline predictors ([`bp_predictors`]).
//! * [`pipeline`] — the out-of-order IPC timing model ([`bp_pipeline`]).
//! * [`analysis`] — H2P / rare-branch characterization ([`bp_analysis`]).
//! * [`helpers`] — offline-trained helper predictors ([`bp_helpers`]).
//! * [`core`] — dataset construction and experiment running ([`bp_core`]).
//! * [`metrics`] — the `BRANCH_LAB_METRICS` observability layer
//!   ([`bp_metrics`]).
//!
//! # Quick start
//!
//! ```
//! use branch_lab::workloads::{specint_suite, WorkloadSpec};
//! use branch_lab::predictors::{Predictor, TageScL, TageSclConfig};
//!
//! // Generate a small trace for the `leela`-like benchmark and measure
//! // TAGE-SC-L 8KB accuracy over it.
//! let spec = &specint_suite()[6];
//! let trace = spec.trace(0, 50_000);
//! let mut bpu = TageScL::new(TageSclConfig::storage_kb(8));
//! let mut correct = 0u64;
//! let mut total = 0u64;
//! for b in trace.conditional_branches() {
//!     let pred = bpu.predict(b.ip);
//!     bpu.update(b.ip, b.taken, pred);
//!     total += 1;
//!     if pred == b.taken {
//!         correct += 1;
//!     }
//! }
//! assert!(total > 0);
//! assert!(correct as f64 / total as f64 > 0.5);
//! ```

pub use bp_analysis as analysis;
pub use bp_core as core;
pub use bp_helpers as helpers;
pub use bp_metrics as metrics;
pub use bp_pipeline as pipeline;
pub use bp_predictors as predictors;
pub use bp_trace as trace;
pub use bp_workloads as workloads;
