//! Rare-branch anatomy of a large-code-footprint application: execution
//! and accuracy distributions (Fig. 3), accuracy spread (Fig. 4), and the
//! storage limit study in miniature (§IV-B).
//!
//! Run with: `cargo run --release --example rare_branches`

use branch_lab::analysis::{
    accuracy_spread, paper_equivalent, BinSpec, BranchProfile, RecurrenceAnalysis,
};
use branch_lab::core::Table;
use branch_lab::predictors::{measure, TageScL, TageSclConfig};
use branch_lab::workloads::lcf_suite;

fn main() {
    let spec = &lcf_suite()[1]; // game-like: the extreme rare-branch case
    println!("analyzing {}", spec.name);
    let trace = spec.trace(0, 600_000);

    let mut bpu = TageScL::kb8();
    let profile = BranchProfile::collect(&mut bpu, trace.insts());
    println!(
        "{} static branch IPs, {:.1} executions per branch on average, accuracy {:.3}",
        profile.static_branch_count(),
        profile.mean_execs_per_static_branch(),
        profile.accuracy()
    );

    // Fig. 3 (middle): most static branches execute only a handful of
    // times (in 30M-instruction paper equivalents).
    let window = profile.instructions;
    let execs = BinSpec::executions()
        .histogram(profile.iter().map(|(_, s)| paper_equivalent(s.execs, window)));
    let mut table = Table::new(vec!["executions (paper-equiv)", "fraction of IPs"]);
    for (label, frac) in execs.labels().iter().zip(execs.fractions()) {
        table.row(vec![label.clone(), format!("{frac:.3}")]);
    }
    print!("{}", table.render());

    // Fig. 4b: accuracy spread collapses once branches execute often.
    let bins = accuracy_spread(&profile, 100.0, 2_000.0);
    if let (Some(first), Some(last)) = (bins.first(), bins.last()) {
        println!(
            "\naccuracy stddev: {:.2} for the rarest bin vs {:.2} at {:.0}+ executions (Fig. 4)",
            first.stddev, last.stddev, last.lo
        );
    }

    // Fig. 9: median recurrence intervals reveal long-timescale phases.
    let rec = RecurrenceAnalysis::compute(&trace);
    let hist = rec.histogram(trace.len() as u64);
    let peak = hist
        .labels()
        .iter()
        .zip(hist.fractions())
        .skip(1)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(l, _)| l.clone())
        .unwrap_or_default();
    println!("median recurrence intervals peak in the {peak} bin (paper: 100K-1M)");

    // §IV-B in miniature: storage scaling helps 8KB -> 64KB, then stalls.
    println!("\nTAGE-SC-L accuracy vs storage:");
    for kb in [8usize, 64, 256] {
        let mut p = TageScL::new(TageSclConfig::storage_kb(kb));
        let acc = measure(&mut p, &trace).accuracy();
        println!("  {kb:>4}KB  {acc:.4}");
    }
    println!("Scaling storage cannot rescue branches that execute a handful of times (§IV-B).");
}
