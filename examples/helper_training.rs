//! The §V pipeline end-to-end: screen H2Ps on training inputs, train a
//! 2-bit CNN helper offline, deploy it alongside TAGE-SC-L, and evaluate
//! on a held-out application input.
//!
//! Run with: `cargo run --release --example helper_training`

use branch_lab::analysis::{rank_heavy_hitters, BranchProfile, H2pCriteria};
use branch_lab::helpers::{evaluate_helper, train_helper, HybridPredictor, TrainerConfig};
use branch_lab::predictors::{measure, DirectionPredictor, TageScL};
use branch_lab::trace::SliceConfig;
use branch_lab::workloads::specint_suite;

fn main() {
    let spec = &specint_suite()[1]; // mcf-like: H2P-dominated
    let program = spec.program();
    let len = 300_000;
    println!("workload {}: training on inputs 0-2, evaluating on input {}", spec.name, spec.inputs - 1);

    // Offline phase: trace multiple inputs and screen H2Ps.
    let train_traces: Vec<_> = (0..3).map(|i| spec.trace_with(&program, i, len)).collect();
    let slice = SliceConfig::new(50_000);
    let criteria = H2pCriteria::paper();
    let mut merged = BranchProfile::new();
    let mut h2ps = std::collections::HashSet::new();
    for t in &train_traces {
        let mut bpu = TageScL::kb8();
        for s in t.slices(slice) {
            let p = BranchProfile::collect(&mut bpu, s);
            h2ps.extend(criteria.screen(&p, slice));
            merged.merge(&p);
        }
    }
    let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
    let target = hitters.first().expect("mcf-like has H2Ps").ip;
    println!("top H2P heavy hitter: {target:#x}");

    // Train the helper offline on the aggregated multi-input data.
    let helper = train_helper(&train_traces, target, &TrainerConfig::default());
    println!("trained CNN helper: {} bits of 2-bit weights", helper.storage_bits());

    // Held-out evaluation.
    let held_out = spec.trace_with(&program, spec.inputs - 1, len);
    let helper_acc = evaluate_helper(&helper, &held_out).expect("target executes");

    // TAGE's accuracy on the same branch.
    let mut tage = TageScL::kb8();
    let mut total = 0u64;
    let mut correct = 0u64;
    for b in held_out.conditional_branches() {
        let pred = tage.predict_and_train(b.ip, b.taken);
        if b.ip == target {
            total += 1;
            correct += u64::from(pred == b.taken);
        }
    }
    let tage_acc = correct as f64 / total.max(1) as f64;
    println!(
        "\nheld-out accuracy on {target:#x}: TAGE-SC-L 8KB {tage_acc:.3} vs CNN helper {helper_acc:.3}"
    );

    // Deployed: hybrid whole-trace accuracy.
    let base = measure(&mut TageScL::kb8(), &held_out).accuracy();
    let mut hybrid = HybridPredictor::new(TageScL::kb8());
    hybrid.attach_cnn(helper);
    let hyb = measure(&mut hybrid, &held_out).accuracy();
    println!(
        "whole-trace accuracy: {base:.4} -> {hyb:.4} with one helper attached \
         ({} helper overrides)",
        hybrid.helper_overrides
    );
}
