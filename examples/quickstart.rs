//! Quickstart: generate a workload, run TAGE-SC-L over it, and measure
//! both prediction accuracy and the IPC cost of the remaining
//! mispredictions.
//!
//! Run with: `cargo run --release --example quickstart`

use branch_lab::core::{f3, Table};
use branch_lab::pipeline::{run, PipelineConfig};
use branch_lab::predictors::{measure, GShare, PerfectPredictor, TageScL};
use branch_lab::workloads::specint_suite;

fn main() {
    // Pick the leela-like benchmark — the least predictable of the
    // SPECint-like suite (Table I: 0.880 under TAGE-SC-L 8KB).
    let spec = &specint_suite()[6];
    println!("workload: {} ({} inputs declared)", spec.name, spec.inputs);

    let trace = spec.trace(0, 400_000);
    println!(
        "traced {} instructions, {} conditional branches, {} static branch sites",
        trace.len(),
        trace.conditional_branch_count(),
        spec.program().static_cond_branch_count(),
    );

    // Compare predictors on accuracy and on IPC.
    let cfg = PipelineConfig::skylake();
    let mut table = Table::new(vec!["predictor", "accuracy", "mpki", "ipc @1x", "ipc @8x"]);
    let mut add = |name: &str, acc: f64, mpki: f64, ipc1: f64, ipc8: f64| {
        table.row(vec![
            name.to_owned(),
            f3(acc),
            format!("{mpki:.2}"),
            f3(ipc1),
            f3(ipc8),
        ]);
    };

    let mut gshare = GShare::new(13, 16);
    let acc = measure(&mut gshare, &trace);
    let mut gshare = GShare::new(13, 16);
    let s1 = run(&trace, &mut gshare, &cfg);
    let mut gshare = GShare::new(13, 16);
    let s8 = run(&trace, &mut gshare, &cfg.scaled(8));
    add("gshare", acc.accuracy(), acc.mpki(trace.len() as u64), s1.ipc(), s8.ipc());

    let acc = measure(&mut TageScL::kb8(), &trace);
    let s1 = run(&trace, &mut TageScL::kb8(), &cfg);
    let s8 = run(&trace, &mut TageScL::kb8(), &cfg.scaled(8));
    add("tage-sc-l-8kb", acc.accuracy(), acc.mpki(trace.len() as u64), s1.ipc(), s8.ipc());

    let s1 = run(&trace, &mut PerfectPredictor, &cfg);
    let s8 = run(&trace, &mut PerfectPredictor, &cfg.scaled(8));
    add("perfect", 1.0, 0.0, s1.ipc(), s8.ipc());

    print!("{}", table.render());
    println!(
        "\nThe gap between tage-sc-l-8kb and perfect is the paper's \"IPC opportunity\" —\n\
         note how it widens as the pipeline scales from 1x to 8x (Fig. 1)."
    );
}
