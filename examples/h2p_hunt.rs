//! H2P hunting: screen the hard-to-predict branches of a benchmark with
//! the paper's §III-A criteria, rank the heavy hitters, and inspect the
//! dependency branches that make the top one hard (§IV-A).
//!
//! Run with: `cargo run --release --example h2p_hunt [workload-index]`

use branch_lab::analysis::{
    rank_heavy_hitters, BranchProfile, DependencyAnalysis, H2pCriteria, DEFAULT_WINDOW,
};
use branch_lab::core::Table;
use branch_lab::predictors::TageScL;
use branch_lab::trace::SliceConfig;
use branch_lab::workloads::specint_suite;

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1); // mcf-like by default
    let suite = specint_suite();
    let spec = &suite[idx.min(suite.len() - 1)];
    println!("hunting H2Ps in {}", spec.name);

    let trace = spec.trace(0, 500_000);
    let slice = SliceConfig::new(50_000);
    let criteria = H2pCriteria::paper();

    // Screen per slice with a continuously-trained predictor, as in the
    // paper's methodology.
    let mut bpu = TageScL::kb8();
    let mut merged = BranchProfile::new();
    let mut h2ps = std::collections::HashSet::new();
    for s in trace.slices(slice) {
        let profile = BranchProfile::collect(&mut bpu, s);
        h2ps.extend(criteria.screen(&profile, slice));
        merged.merge(&profile);
    }
    println!(
        "aggregate accuracy {:.4}; {} static branches; {} H2Ps",
        merged.accuracy(),
        merged.static_branch_count(),
        h2ps.len()
    );

    let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
    let mut table = Table::new(vec!["rank", "ip", "execs", "mispredicts", "cum-frac"]);
    for (i, h) in hitters.iter().take(10).enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            format!("{:#x}", h.ip),
            format!("{}", h.execs),
            format!("{}", h.mispredicts),
            format!("{:.3}", h.cumulative_fraction),
        ]);
    }
    print!("{}", table.render());

    if let Some(top) = hitters.first() {
        let dep = DependencyAnalysis::new(&trace);
        let report = dep.analyze(&trace, top.ip, DEFAULT_WINDOW, 256);
        println!(
            "\ntop H2P {:#x}: {} dependency branches at history positions {}..{} —\n\
             the position spread is why exact-pattern matching struggles (Fig. 6).",
            top.ip,
            report.dep_branch_count(),
            report.min_position().unwrap_or(0),
            report.max_position().unwrap_or(0),
        );
    }
}
