//! Instruction-set definitions shared by the workload interpreter, the
//! pipeline timing model, and the analyses.

use std::fmt;

/// Number of architectural registers in the synthetic ISA.
pub const NUM_REGS: usize = 32;

/// An architectural register identifier (`r0` .. `r31`).
///
/// `r0` is a normal, writable register (unlike MIPS) so that workload
/// generators do not need to special-case it.
///
/// # Examples
///
/// ```
/// use bp_trace::Reg;
/// let r = Reg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS` ("register index out of range").
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "register index out of range");
        Reg(index)
    }

    /// Returns the register index in `0..NUM_REGS`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Comparison condition for conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater than or equal (signed).
    Ge,
}

impl Cond {
    /// Evaluates the condition on two operand values (interpreted as signed
    /// for the ordered comparisons, matching the interpreter).
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
        }
    }

    /// Returns the condition that evaluates to the opposite outcome.
    #[must_use]
    pub fn negated(self) -> Self {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Coarse instruction class used by the timing model to pick latencies and
/// by the analyses to find loads, stores, and branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation.
    Alu,
    /// Multi-cycle integer multiply.
    Mul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Any control-flow instruction; see [`BranchKind`].
    Branch,
    /// No-op / filler instruction.
    Nop,
}

impl InstClass {
    /// True for memory instructions (loads and stores).
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::Alu => "alu",
            InstClass::Mul => "mul",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::Branch => "branch",
            InstClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Control-flow instruction subtypes, mirroring the branch classes exposed
/// to CBP2016-style predictors (instruction type is a standardized BPU
/// input in the paper's §II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch — the only kind predictors must predict a
    /// direction for.
    Conditional,
    /// Unconditional direct jump.
    DirectJump,
    /// Unconditional indirect jump (target from a register).
    IndirectJump,
    /// Direct function call.
    Call,
    /// Function return (indirect).
    Return,
}

impl BranchKind {
    /// True if the branch has a predictable direction (conditional).
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "cond",
            BranchKind::DirectJump => "jmp",
            BranchKind::IndirectJump => "ijmp",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_display() {
        for i in 0..NUM_REGS as u8 {
            let r = Reg::new(i);
            assert_eq!(r.index(), i as usize);
            assert_eq!(r.to_string(), format!("r{i}"));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(NUM_REGS as u8);
    }

    #[test]
    fn cond_eval_matches_semantics() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
        assert!(Cond::Ge.eval(0, u64::MAX)); // 0 >= -1 signed
    }

    #[test]
    fn cond_negation_is_involutive_and_opposite() {
        let cases = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge];
        for c in cases {
            assert_eq!(c.negated().negated(), c);
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 5)] {
                assert_ne!(c.eval(a, b), c.negated().eval(a, b));
            }
        }
    }

    #[test]
    fn class_predicates() {
        assert!(InstClass::Load.is_memory());
        assert!(InstClass::Store.is_memory());
        assert!(!InstClass::Alu.is_memory());
        assert!(BranchKind::Conditional.is_conditional());
        assert!(!BranchKind::Call.is_conditional());
    }
}
