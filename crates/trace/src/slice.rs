//! Fixed-length trace slicing.
//!
//! The paper post-processes every 10B-instruction workload trace into
//! 30M-instruction slices (the default SimPoint granularity) and computes
//! all per-slice branch statistics over *every* slice. [`SliceConfig`]
//! captures the slice length; the default scales the methodology down for
//! laptop-scale traces.

use crate::record::RetiredInst;

/// Configuration for slicing a trace into fixed-length windows.
///
/// # Examples
///
/// ```
/// use bp_trace::SliceConfig;
/// let cfg = SliceConfig::default();
/// assert_eq!(cfg.len(), SliceConfig::DEFAULT_LEN);
/// let custom = SliceConfig::new(1_000);
/// assert_eq!(custom.len(), 1_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SliceConfig {
    len: usize,
}

#[allow(clippy::len_without_is_empty)] // a length *setting*, not a container
impl SliceConfig {
    /// Default slice length (instructions). The paper uses 30M; we default
    /// to 200K, and the H2P screening thresholds in `bp-analysis` scale
    /// linearly with this value.
    pub const DEFAULT_LEN: usize = 200_000;

    /// The paper's slice length, for reference and threshold scaling.
    pub const PAPER_LEN: usize = 30_000_000;

    /// Creates a slice configuration.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "slice length must be positive");
        SliceConfig { len }
    }

    /// Slice length in instructions.
    #[must_use]
    pub fn len(self) -> usize {
        self.len
    }

    /// The ratio of this slice length to the paper's 30M-instruction
    /// slices, used to scale count thresholds.
    #[must_use]
    pub fn paper_scale(self) -> f64 {
        self.len as f64 / Self::PAPER_LEN as f64
    }
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig::new(Self::DEFAULT_LEN)
    }
}

/// Iterator over fixed-length instruction slices of a trace.
///
/// Produced by [`Trace::slices`](crate::Trace::slices). Full slices are
/// yielded first; a trailing partial slice is yielded only if it covers at
/// least half the configured length, so that per-slice statistics remain
/// comparable across slices.
#[derive(Clone, Debug)]
pub struct Slices<'a> {
    rest: &'a [RetiredInst],
    len: usize,
}

impl<'a> Slices<'a> {
    pub(crate) fn new(insts: &'a [RetiredInst], config: SliceConfig) -> Self {
        Slices {
            rest: insts,
            len: config.len(),
        }
    }
}

impl<'a> Iterator for Slices<'a> {
    type Item = &'a [RetiredInst];

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.len() >= self.len {
            let (head, tail) = self.rest.split_at(self.len);
            self.rest = tail;
            Some(head)
        } else if self.rest.len() * 2 >= self.len && !self.rest.is_empty() {
            let head = self.rest;
            self.rest = &[];
            Some(head)
        } else {
            self.rest = &[];
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let full = self.rest.len() / self.len;
        let partial = usize::from(self.rest.len() % self.len * 2 >= self.len);
        let n = full + partial;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Slices<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstClass;

    fn insts(n: usize) -> Vec<RetiredInst> {
        (0..n)
            .map(|i| RetiredInst::op(i as u64, InstClass::Alu, None, None, None, 0))
            .collect()
    }

    #[test]
    fn exact_division() {
        let v = insts(100);
        let s: Vec<_> = Slices::new(&v, SliceConfig::new(25)).collect();
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|sl| sl.len() == 25));
    }

    #[test]
    fn large_partial_is_kept() {
        let v = insts(130);
        let s: Vec<_> = Slices::new(&v, SliceConfig::new(50)).collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s[2].len(), 30); // 30 >= 25 = half of 50
    }

    #[test]
    fn small_partial_is_dropped() {
        let v = insts(120);
        let s: Vec<_> = Slices::new(&v, SliceConfig::new(50)).collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn size_hint_matches() {
        let v = insts(130);
        let it = Slices::new(&v, SliceConfig::new(50));
        assert_eq!(it.len(), 3);
        assert_eq!(it.count(), 3);
    }

    #[test]
    fn paper_scale() {
        let cfg = SliceConfig::new(SliceConfig::PAPER_LEN);
        assert!((cfg.paper_scale() - 1.0).abs() < 1e-12);
        let half = SliceConfig::new(SliceConfig::PAPER_LEN / 2);
        assert!((half.paper_scale() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_len_panics() {
        let _ = SliceConfig::new(0);
    }
}
