//! The `BPTR` v3 block codec: bit-packed, delta-compressed, streaming.
//!
//! The paper's methodology replays multi-billion-instruction traces per
//! workload (§V-B); real Pin-based trace libraries spend 0.1–1.2 *bits*
//! per branch. The fat v1/v2 encoding (37 bytes per record, fully
//! materialized) cannot reach that scale, so v3 re-encodes the stream
//! around the two redundancies every retired-instruction trace has:
//!
//! * **Static locality** — the dynamic stream revisits a small set of
//!   static instructions. Each block builds a *dictionary* of unique
//!   static descriptors (ip, class, registers, branch kind, target) in
//!   first-appearance order; dynamic records are dictionary indices.
//!   Straight-line code makes the next index overwhelmingly predictable
//!   (`previous + 1`), so indices are emitted as a 1-bit hit/miss stream
//!   with explicit varint indices only on misses.
//! * **Payload sparsity** — `dst_value` and `mem_addr` are usually zero,
//!   and conditional-branch outcomes are a single bit. Non-zero values
//!   get presence bitmaps plus varints (memory addresses as zigzag
//!   deltas, which turn strided access patterns into one-byte codes);
//!   branch outcomes are a packed bitstream.
//!
//! A loop-dominated branch trace costs ~2–4 *bits* per instruction; the
//! worst case (random 64-bit `dst_value` every record) degrades to
//! roughly the v2 cost, never beyond `MAX_BLOCK_PAYLOAD`.
//!
//! Records are grouped into blocks of [`BLOCK_RECORDS`]; every block is
//! independently decodable and carries its own FNV-1a trailer, so a torn
//! or bit-rotted region is detected at (and localized to) the block that
//! holds it, and decode proceeds block-wise with bounded memory no
//! matter how long the trace is. [`TraceWriter`] streams records in
//! without materializing them; the matching block reader lives in
//! [`crate::reader`].
//!
//! On-disk layout (little-endian throughout):
//!
//! ```text
//! file   := header block* end-marker <eof>
//! header := "BPTR" u16(version=3) u16(name_len) name u32(input) u64(count)
//! block  := u32(n_records>0) u32(payload_len) payload u64(fnv1a(frame+payload))
//! end    := u32(0) u32(0) u64(fnv1a over the 8 zero bytes)
//! ```
//!
//! `count == u64::MAX` marks a streamed file whose length was unknown at
//! header time; any other value is validated against the blocks' total.
//! Trailing bytes after the end marker are rejected.
//!
//! ```text
//! payload := varint(n_dict) dict-entry{n_dict}
//!            pred_bits[⌈n/8⌉] dstv_bits[⌈n/8⌉] mem_bits[⌈n/8⌉]
//!            varint{misses} taken_bits[⌈n_br/8⌉]
//!            varint{dst_values} zigzag-varint{mem_addr deltas}
//! dict-entry := flags(class|kind<<3) src1 src2 dst
//!               zigzag-varint(ip Δ prev entry)
//!               [zigzag-varint(target Δ ip) if kind != 0]
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::io::Write;

use crate::isa::BranchKind;
use crate::record::{BranchInfo, RetiredInst};
use crate::serialize::{
    class_code, decode_class, decode_kind, decode_reg, encode_reg, fnv1a, kind_code,
    write_header, FNV_OFFSET, ReadTraceError, WriteTraceError, VERSION_V3,
};
use crate::trace::TraceMeta;

/// Records per v3 block. Large enough that dictionary and bitstream
/// overheads amortize to fractions of a bit per record, small enough
/// that one block's decode buffer stays a few megabytes at worst.
pub const BLOCK_RECORDS: usize = 1 << 16;

/// Hard ceiling on one block's encoded payload. The encoder's worst case
/// (all-miss indices, 10-byte varints everywhere, a full dictionary) is
/// under 4 MiB; anything larger in a header is hostile or corrupt and is
/// rejected *before* any allocation of that size.
pub const MAX_BLOCK_PAYLOAD: usize = 1 << 23;

/// Header `count` sentinel: record total unknown at header-write time.
pub(crate) const COUNT_UNKNOWN: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// varints, zigzag deltas, bitstreams
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps a wrapping difference onto small varints for both directions.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `cur` relative to `prev` (wrapping, so every u64 is reachable).
fn put_delta(out: &mut Vec<u8>, prev: u64, cur: u64) {
    put_varint(out, zigzag(cur.wrapping_sub(prev) as i64));
}

/// A bitstream built LSB-first within each byte.
#[derive(Default)]
struct BitBuf {
    bytes: Vec<u8>,
    len: usize,
}

impl BitBuf {
    fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().expect("just pushed") |= 1 << (self.len % 8);
        }
        self.len += 1;
    }
}

/// Reads bit `i` of an LSB-first bitstream.
fn bit(bits: &[u8], i: usize) -> bool {
    bits[i / 8] >> (i % 8) & 1 != 0
}

/// A bounds-checked cursor over one block payload. Every overrun is a
/// structured decode error, never a panic or an oversized allocation.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ReadTraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ReadTraceError::Corrupt("block payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, ReadTraceError> {
        let mut v = 0u64;
        for shift in 0..10 {
            let &byte = self
                .buf
                .get(self.pos)
                .ok_or(ReadTraceError::Corrupt("block payload truncated"))?;
            self.pos += 1;
            // The 10th byte may only contribute the final bit of a u64.
            if shift == 9 && byte > 1 {
                return Err(ReadTraceError::Corrupt("varint"));
            }
            v |= u64::from(byte & 0x7f) << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ReadTraceError::Corrupt("varint"))
    }

    fn delta(&mut self, prev: u64) -> Result<u64, ReadTraceError> {
        Ok(prev.wrapping_add(unzigzag(self.varint()?) as u64))
    }

    fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// the static-descriptor dictionary
// ---------------------------------------------------------------------------

/// One unique static descriptor: everything about a record except its
/// dynamic payload (`taken`, `dst_value`, `mem_addr`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct DictEntry {
    ip: u64,
    /// Branch target (0 for non-branch records, which never read it).
    target: u64,
    class: u8,
    /// `kind_code` of the branch info, or 0 when `branch` is `None`.
    kind: u8,
    src1: u8,
    src2: u8,
    dst: u8,
}

impl DictEntry {
    fn of(inst: &RetiredInst) -> Self {
        let (kind, target) = match inst.branch {
            Some(b) => (kind_code(b.kind), b.target),
            None => (0, 0),
        };
        DictEntry {
            ip: inst.ip,
            target,
            class: class_code(inst.class),
            kind,
            src1: encode_reg(inst.src1),
            src2: encode_reg(inst.src2),
            dst: encode_reg(inst.dst),
        }
    }
}

/// FNV-1a `Hasher` for the encoder's dictionary map: the keys are tiny
/// fixed-size structs, where SipHash's per-call setup dominates.
#[derive(Default)]
struct FnvState(Option<u64>);

impl Hasher for FnvState {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0.unwrap_or(FNV_OFFSET);
        fnv1a(&mut h, bytes);
        self.0 = Some(h);
    }

    fn finish(&self) -> u64 {
        self.0.unwrap_or(FNV_OFFSET)
    }
}

type DictMap = HashMap<DictEntry, u32, BuildHasherDefault<FnvState>>;

// ---------------------------------------------------------------------------
// block encode
// ---------------------------------------------------------------------------

/// Encodes `records` (at most [`BLOCK_RECORDS`]) as one v3 block payload
/// into `out` (cleared first). Scratch state lives in `enc` so a long
/// streaming write reuses its allocations across blocks.
pub(crate) fn encode_block(records: &[RetiredInst], enc: &mut BlockEncoder, out: &mut Vec<u8>) {
    debug_assert!(!records.is_empty() && records.len() <= BLOCK_RECORDS);
    out.clear();
    enc.reset();

    // Pass 1: dictionary in first-appearance order + per-record indices.
    for inst in records {
        let entry = DictEntry::of(inst);
        let next = enc.dict.len() as u32;
        let idx = *enc.map.entry(entry).or_insert(next);
        if idx == next {
            enc.dict.push(entry);
        }
        enc.indices.push(idx);
    }
    let n_dict = enc.dict.len() as u32;

    // Dictionary section.
    put_varint(out, u64::from(n_dict));
    let mut prev_ip = 0u64;
    for e in &enc.dict {
        out.push(e.class | e.kind << 3);
        out.extend_from_slice(&[e.src1, e.src2, e.dst]);
        put_delta(out, prev_ip, e.ip);
        prev_ip = e.ip;
        if e.kind != 0 {
            put_delta(out, e.ip, e.target);
        }
    }

    // Pass 2: bitstreams + value streams.
    let mut pred = 0u32;
    let mut prev_mem = 0u64;
    for (inst, &idx) in records.iter().zip(&enc.indices) {
        enc.pred_bits.push(idx == pred);
        if idx != pred {
            put_varint(&mut enc.misses, u64::from(idx));
        }
        pred = (idx + 1) % n_dict;
        enc.dstv_bits.push(inst.dst_value != 0);
        if inst.dst_value != 0 {
            put_varint(&mut enc.values, inst.dst_value);
        }
        enc.mem_bits.push(inst.mem_addr != 0);
        if inst.mem_addr != 0 {
            put_delta(&mut enc.mems, prev_mem, inst.mem_addr);
            prev_mem = inst.mem_addr;
        }
        if let Some(b) = inst.branch {
            enc.taken_bits.push(b.taken);
        }
    }

    out.extend_from_slice(&enc.pred_bits.bytes);
    out.extend_from_slice(&enc.dstv_bits.bytes);
    out.extend_from_slice(&enc.mem_bits.bytes);
    out.extend_from_slice(&enc.misses);
    out.extend_from_slice(&enc.taken_bits.bytes);
    out.extend_from_slice(&enc.values);
    out.extend_from_slice(&enc.mems);
    debug_assert!(out.len() <= MAX_BLOCK_PAYLOAD, "payload {} over cap", out.len());
}

/// Reusable scratch buffers for [`encode_block`].
#[derive(Default)]
pub(crate) struct BlockEncoder {
    map: DictMap,
    dict: Vec<DictEntry>,
    indices: Vec<u32>,
    pred_bits: BitBuf,
    dstv_bits: BitBuf,
    mem_bits: BitBuf,
    taken_bits: BitBuf,
    misses: Vec<u8>,
    values: Vec<u8>,
    mems: Vec<u8>,
}

impl BlockEncoder {
    fn reset(&mut self) {
        self.map.clear();
        self.dict.clear();
        self.indices.clear();
        for bits in [
            &mut self.pred_bits,
            &mut self.dstv_bits,
            &mut self.mem_bits,
            &mut self.taken_bits,
        ] {
            bits.bytes.clear();
            bits.len = 0;
        }
        self.misses.clear();
        self.values.clear();
        self.mems.clear();
    }
}

// ---------------------------------------------------------------------------
// block decode
// ---------------------------------------------------------------------------

/// Decodes one v3 block payload holding exactly `n_records` records,
/// appending them to `out`. Every malformed input path returns a
/// structured [`ReadTraceError`]; allocations are bounded by
/// `n_records` (already validated against [`BLOCK_RECORDS`]) and the
/// payload length (validated against [`MAX_BLOCK_PAYLOAD`]).
pub(crate) fn decode_block(
    payload: &[u8],
    n_records: usize,
    out: &mut Vec<RetiredInst>,
) -> Result<(), ReadTraceError> {
    let mut cur = Cur::new(payload);

    let n_dict = usize::try_from(cur.varint()?).unwrap_or(usize::MAX);
    if n_dict == 0 || n_dict > n_records {
        return Err(ReadTraceError::Corrupt("dictionary size"));
    }
    let mut dict = Vec::with_capacity(n_dict);
    let mut prev_ip = 0u64;
    for _ in 0..n_dict {
        let flags = cur.bytes(1)?[0];
        if flags >> 6 != 0 {
            return Err(ReadTraceError::Corrupt("dictionary flags"));
        }
        let class = flags & 0x7;
        let kind = flags >> 3 & 0x7;
        decode_class(class)?;
        if kind != 0 {
            decode_kind(kind)?;
        }
        let regs = cur.bytes(3)?;
        for &r in regs {
            decode_reg(r)?;
        }
        let ip = cur.delta(prev_ip)?;
        prev_ip = ip;
        let target = if kind != 0 { cur.delta(ip)? } else { 0 };
        dict.push(DictEntry {
            ip,
            target,
            class,
            kind,
            src1: regs[0],
            src2: regs[1],
            dst: regs[2],
        });
    }

    let bitmap_len = n_records.div_ceil(8);
    let pred_bits = cur.bytes(bitmap_len)?;
    let dstv_bits = cur.bytes(bitmap_len)?;
    let mem_bits = cur.bytes(bitmap_len)?;

    // Resolve dictionary indices (reading miss varints in stream order)
    // and count how many records draw from each value stream.
    let mut indices = Vec::with_capacity(n_records);
    let mut pred = 0u32;
    let mut n_br = 0usize;
    for i in 0..n_records {
        let idx = if bit(pred_bits, i) {
            pred
        } else {
            let v = cur.varint()?;
            if v >= n_dict as u64 {
                return Err(ReadTraceError::Corrupt("dictionary index"));
            }
            v as u32
        };
        n_br += usize::from(dict[idx as usize].kind != 0);
        pred = (idx + 1) % n_dict as u32;
        indices.push(idx);
    }

    let taken_bits = cur.bytes(n_br.div_ceil(8))?;

    // Value streams, in payload order: dst_values first, then mem deltas.
    let mut dst_values = Vec::with_capacity(n_records.min(1024));
    for i in 0..n_records {
        if bit(dstv_bits, i) {
            let v = cur.varint()?;
            if v == 0 {
                return Err(ReadTraceError::Corrupt("zero in dst_value stream"));
            }
            dst_values.push(v);
        } else {
            dst_values.push(0);
        }
    }
    let mut prev_mem = 0u64;
    let mut br_seen = 0usize;
    for (i, &idx) in indices.iter().enumerate() {
        let e = dict[idx as usize];
        let mem_addr = if bit(mem_bits, i) {
            prev_mem = cur.delta(prev_mem)?;
            prev_mem
        } else {
            0
        };
        let branch = if e.kind == 0 {
            None
        } else {
            let kind = decode_kind(e.kind)?;
            let taken = bit(taken_bits, br_seen);
            br_seen += 1;
            if !taken && kind != BranchKind::Conditional {
                return Err(ReadTraceError::Corrupt("unconditional not-taken"));
            }
            Some(BranchInfo { kind, taken, target: e.target })
        };
        out.push(RetiredInst {
            ip: e.ip,
            dst_value: dst_values[i],
            mem_addr,
            class: decode_class(e.class)?,
            src1: decode_reg(e.src1)?,
            src2: decode_reg(e.src2)?,
            dst: decode_reg(e.dst)?,
            branch,
        });
    }

    if !cur.is_done() {
        return Err(ReadTraceError::Corrupt("block payload size"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// the streaming writer
// ---------------------------------------------------------------------------

/// Streams retired instructions into a v3 `BPTR` file without ever
/// materializing the trace: records are buffered one block at a time,
/// encoded, checksummed, and written out.
///
/// Pass the total record count to [`TraceWriter::new`] when it is known
/// (it is embedded in the header and verified on decode); pass `None`
/// for open-ended streams — the header then carries the
/// "count unknown" sentinel and readers trust the block structure,
/// which every block's own FNV-1a trailer guards.
///
/// # Examples
///
/// ```
/// use bp_trace::{RetiredInst, Trace, TraceMeta, TraceWriter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let meta = TraceMeta::new("streamed", 0);
/// let mut w = TraceWriter::new(Vec::new(), &meta, None)?;
/// for i in 0..100_000u64 {
///     w.push(RetiredInst::cond_branch(0x40 + (i % 32) * 4, i % 3 == 0, 0x100, Some(1), None))?;
/// }
/// let bytes = w.finish()?;
/// assert!(bytes.len() < 100_000); // under a byte per instruction
/// let back = Trace::read_from(bytes.as_slice())?;
/// assert_eq!(back.len(), 100_000);
/// # Ok(())
/// # }
/// ```
pub struct TraceWriter<W: Write> {
    inner: W,
    block: Vec<RetiredInst>,
    payload: Vec<u8>,
    enc: BlockEncoder,
    written: u64,
    declared: Option<u64>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the v3 header for `meta` and prepares for streaming.
    /// `count` is the total number of records that will be pushed, if
    /// known up-front.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and rejects over-long workload names
    /// exactly like [`Trace::write_to`](crate::Trace::write_to).
    pub fn new(mut writer: W, meta: &TraceMeta, count: Option<u64>) -> Result<Self, WriteTraceError> {
        write_header(&mut writer, VERSION_V3, meta, count.unwrap_or(COUNT_UNKNOWN))?;
        Ok(TraceWriter {
            inner: writer,
            block: Vec::with_capacity(BLOCK_RECORDS.min(4096)),
            payload: Vec::new(),
            enc: BlockEncoder::default(),
            written: 0,
            declared: count,
        })
    }

    /// Appends one record, flushing a full block to the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn push(&mut self, inst: RetiredInst) -> Result<(), WriteTraceError> {
        self.block.push(inst);
        self.written += 1;
        if self.block.len() == BLOCK_RECORDS {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Records pushed so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.written
    }

    /// True when no record has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    fn flush_block(&mut self) -> Result<(), WriteTraceError> {
        if self.block.is_empty() {
            return Ok(());
        }
        encode_block(&self.block, &mut self.enc, &mut self.payload);
        let n = self.block.len() as u32;
        self.block.clear();
        write_framed_block(&mut self.inner, n, &self.payload)?;
        Ok(())
    }

    /// Flushes the final partial block, writes the end marker, flushes
    /// the writer, and returns it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if a total count was declared to [`TraceWriter::new`] and
    /// a different number of records was pushed — the header would lie.
    pub fn finish(mut self) -> Result<W, WriteTraceError> {
        if let Some(declared) = self.declared {
            assert_eq!(
                declared, self.written,
                "TraceWriter: header declared {declared} records but {} were pushed",
                self.written
            );
        }
        self.flush_block()?;
        write_framed_block(&mut self.inner, 0, &[])?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Writes one `[n_records][payload_len][payload][fnv]` frame; the
/// all-zero frame (`n_records == 0`) is the end marker.
fn write_framed_block<W: Write>(w: &mut W, n_records: u32, payload: &[u8]) -> Result<(), WriteTraceError> {
    let mut frame = [0u8; 8];
    frame[0..4].copy_from_slice(&n_records.to_le_bytes());
    frame[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, &frame);
    fnv1a(&mut hash, payload);
    w.write_all(&frame)?;
    w.write_all(payload)?;
    w.write_all(&hash.to_le_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{InstClass, Reg};

    fn roundtrip_block(records: &[RetiredInst]) -> Vec<RetiredInst> {
        let mut payload = Vec::new();
        encode_block(records, &mut BlockEncoder::default(), &mut payload);
        let mut out = Vec::new();
        decode_block(&payload, records.len(), &mut out).expect("decode");
        out
    }

    #[test]
    fn loop_block_costs_under_half_a_byte_per_record() {
        // A tight 8-instruction loop: after the first iteration every
        // index is predicted, so the cost is the four bitstreams.
        let mut records = Vec::new();
        for i in 0..BLOCK_RECORDS as u64 {
            let slot = i % 8;
            if slot == 7 {
                records.push(RetiredInst::cond_branch(0x40 + slot * 4, i % 9 != 0, 0x40, Some(1), None));
            } else {
                records.push(RetiredInst::op(
                    0x40 + slot * 4,
                    InstClass::Alu,
                    Some(Reg::new(1)),
                    None,
                    None,
                    0,
                ));
            }
        }
        let mut payload = Vec::new();
        encode_block(&records, &mut BlockEncoder::default(), &mut payload);
        assert!(
            payload.len() * 2 < records.len(),
            "{} bytes for {} records",
            payload.len(),
            records.len()
        );
        assert_eq!(roundtrip_block(&records), records);
    }

    #[test]
    fn hostile_field_values_roundtrip_exactly() {
        // Every corner the public `RetiredInst` fields allow: max deltas,
        // branch-classed non-branches, values on dst-less records.
        let records = vec![
            RetiredInst {
                ip: u64::MAX,
                dst_value: u64::MAX,
                mem_addr: u64::MAX,
                class: InstClass::Store,
                src1: Some(Reg::new(31)),
                src2: None,
                dst: None,
                branch: None,
            },
            RetiredInst {
                ip: 0,
                dst_value: 1,
                mem_addr: 1,
                class: InstClass::Branch,
                src1: None,
                src2: Some(Reg::new(0)),
                dst: Some(Reg::new(7)),
                branch: None,
            },
            RetiredInst {
                ip: 0x7fff_ffff_ffff_ffff,
                dst_value: 0,
                mem_addr: 0,
                class: InstClass::Nop,
                src1: None,
                src2: None,
                dst: None,
                branch: Some(BranchInfo { kind: BranchKind::Return, taken: true, target: 0 }),
            },
        ];
        assert_eq!(roundtrip_block(&records), records);
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        let mut cur = Cur::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]);
        assert!(matches!(cur.varint(), Err(ReadTraceError::Corrupt("varint"))));
        let mut cur = Cur::new(&[0x80; 11]);
        assert!(matches!(cur.varint(), Err(ReadTraceError::Corrupt("varint"))));
        let mut cur = Cur::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert_eq!(cur.varint().expect("max u64"), u64::MAX);
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_payload_is_structured_error() {
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(RetiredInst::cond_branch(i * 4, i % 2 == 0, 0x40, None, None));
        }
        let mut payload = Vec::new();
        encode_block(&records, &mut BlockEncoder::default(), &mut payload);
        for cut in 0..payload.len() {
            let mut out = Vec::new();
            let err = decode_block(&payload[..cut], records.len(), &mut out)
                .expect_err("truncated payload must fail");
            assert!(matches!(err, ReadTraceError::Corrupt(_)), "cut {cut}: {err:?}");
        }
    }

    #[test]
    fn oversized_payload_is_structured_error() {
        let records = vec![RetiredInst::cond_branch(4, true, 8, None, None)];
        let mut payload = Vec::new();
        encode_block(&records, &mut BlockEncoder::default(), &mut payload);
        payload.push(0);
        let err = decode_block(&payload, 1, &mut Vec::new()).expect_err("extra byte");
        assert!(matches!(err, ReadTraceError::Corrupt("block payload size")));
    }
}
