//! Streaming trace consumption: the [`TraceReader`] trait and the
//! version-dispatching `BPTR` block decoder.
//!
//! Replaying a paper-scale trace (§V-B works with multi-billion
//! instruction streams) must not require materializing it: everything
//! downstream — `SweepReplay::prepare`, `sweep_measure`, profile
//! collection — consumes traces chunk-by-chunk through [`TraceReader`].
//! The in-memory [`Trace`] is just one implementation (a single-chunk
//! reader over its slice); [`BptrReader`] decodes v1/v2/v3 files with
//! peak memory bounded by one block, independent of trace length.
//!
//! Chunk boundaries carry no meaning: a reader may split the stream
//! anywhere, and consumers must produce identical results for any
//! chunking of the same record sequence.

use std::io::{self, Read};
use std::sync::Arc;

use crate::codec_v3::{decode_block, BLOCK_RECORDS, COUNT_UNKNOWN, MAX_BLOCK_PAYLOAD};
use crate::record::RetiredInst;
use crate::serialize::{
    decode_record_v12, fnv1a, ReadTraceError, FNV_OFFSET, MAGIC, MIN_VERSION, V12_RECORD_BYTES,
    VERSION_V2, VERSION_V3,
};
use crate::trace::{Trace, TraceMeta};

/// Records per chunk when streaming the fat v1/v2 record format.
const V12_CHUNK: usize = 16 * 1024;

/// A source of retired-instruction records, delivered in arbitrary-size
/// chunks until exhausted.
///
/// The contract is iterator-like: [`TraceReader::next_chunk`] yields
/// `Ok(Some(records))` zero or more times, then `Ok(None)` exactly once
/// at a *successfully verified* end of stream. Integrity failures
/// (checksums, framing, trailing bytes) surface as errors no later than
/// the final `next_chunk` call, so a consumer that drains the reader has
/// validated the whole stream.
pub trait TraceReader {
    /// Workload metadata for the trace being read.
    fn meta(&self) -> &TraceMeta;

    /// Total record count, when the source declares one up-front. This
    /// is a *hint* from a possibly-untrusted header: use it to size
    /// estimates, never to pre-allocate unbounded memory.
    fn len_hint(&self) -> Option<u64>;

    /// Returns the next chunk of records, or `None` at a verified end
    /// of stream.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure or any corruption
    /// detected in the underlying stream.
    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError>;
}

impl<T: TraceReader + ?Sized> TraceReader for &mut T {
    fn meta(&self) -> &TraceMeta {
        (**self).meta()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        (**self).next_chunk()
    }
}

/// A [`TraceReader`] over a borrowed in-memory trace: yields the whole
/// record slice as one chunk. Obtained from [`Trace::reader`].
pub struct SliceReader<'a> {
    meta: &'a TraceMeta,
    insts: &'a [RetiredInst],
    consumed: bool,
}

impl TraceReader for SliceReader<'_> {
    fn meta(&self) -> &TraceMeta {
        self.meta
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.insts.len() as u64)
    }

    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        if self.consumed {
            return Ok(None);
        }
        self.consumed = true;
        Ok(Some(self.insts))
    }
}

/// A [`TraceReader`] that owns a shared in-memory trace (as handed out
/// by the workload trace store), yielding its records as one chunk.
pub struct SharedReader {
    trace: Arc<Trace>,
    consumed: bool,
}

impl SharedReader {
    /// Wraps a shared trace for streaming consumption.
    #[must_use]
    pub fn new(trace: Arc<Trace>) -> Self {
        SharedReader { trace, consumed: false }
    }
}

impl TraceReader for SharedReader {
    fn meta(&self) -> &TraceMeta {
        self.trace.meta()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }

    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        if self.consumed {
            return Ok(None);
        }
        self.consumed = true;
        Ok(Some(self.trace.insts()))
    }
}

impl Trace {
    /// A streaming view of this trace: one chunk covering every record.
    #[must_use]
    pub fn reader(&self) -> SliceReader<'_> {
        SliceReader { meta: self.meta(), insts: self.insts(), consumed: false }
    }
}

/// Streaming decoder for every supported `BPTR` version.
///
/// The header is parsed in [`BptrReader::new`]; records then stream out
/// in bounded chunks — one codec block for v3, `V12_CHUNK` fat records
/// for v1/v2 — so peak memory is independent of trace length. Integrity
/// is verified incrementally (v3: per-block FNV-1a trailers; v2: a
/// running digest checked against the file trailer) and the stream must
/// end exactly where the format says it does: leftover bytes are
/// `Corrupt("trailing bytes")`, a missing end is an I/O error.
///
/// Decode is hostile-input hardened: no header or frame field can cause
/// an allocation beyond one block's caps ([`BLOCK_RECORDS`],
/// [`MAX_BLOCK_PAYLOAD`]), and every malformed byte is a structured
/// [`ReadTraceError`], never a panic.
pub struct BptrReader<R> {
    inner: R,
    version: u16,
    meta: TraceMeta,
    /// Header-declared record total (`None`: v3 "count unknown").
    declared: Option<u64>,
    produced: u64,
    chunk: Vec<RetiredInst>,
    payload: Vec<u8>,
    /// Running FNV-1a over every byte read, for the v2 file trailer.
    hash: u64,
    done: bool,
}

impl<R: Read> BptrReader<R> {
    /// Parses the `BPTR` header and prepares for block-wise decode.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, an
    /// unsupported version, or malformed metadata.
    pub fn new(mut inner: R) -> Result<Self, ReadTraceError> {
        let mut hash = FNV_OFFSET;
        let mut magic = [0u8; 4];
        read_hashed(&mut inner, &mut hash, &mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTraceError::BadMagic);
        }
        let mut b2 = [0u8; 2];
        read_hashed(&mut inner, &mut hash, &mut b2)?;
        let version = u16::from_le_bytes(b2);
        if !(MIN_VERSION..=VERSION_V3).contains(&version) {
            return Err(ReadTraceError::UnsupportedVersion(version));
        }
        read_hashed(&mut inner, &mut hash, &mut b2)?;
        let name_len = usize::from(u16::from_le_bytes(b2));
        let mut name = vec![0u8; name_len];
        read_hashed(&mut inner, &mut hash, &mut name)?;
        let name = String::from_utf8(name).map_err(|_| ReadTraceError::Corrupt("name"))?;
        let mut b4 = [0u8; 4];
        read_hashed(&mut inner, &mut hash, &mut b4)?;
        let input = u32::from_le_bytes(b4);
        let mut b8 = [0u8; 8];
        read_hashed(&mut inner, &mut hash, &mut b8)?;
        let count = u64::from_le_bytes(b8);
        let declared =
            if version == VERSION_V3 && count == COUNT_UNKNOWN { None } else { Some(count) };
        Ok(BptrReader {
            inner,
            version,
            meta: TraceMeta { name, input },
            declared,
            produced: 0,
            chunk: Vec::new(),
            payload: Vec::new(),
            hash,
            done: false,
        })
    }

    /// Records decoded (and integrity-verified) so far.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.produced
    }

    /// The `BPTR` format version of the underlying stream (1–3).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    fn next_chunk_v12(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        let declared = self.declared.expect("v1/v2 headers always declare a count");
        let remaining = declared - self.produced;
        if remaining == 0 {
            if self.version == VERSION_V2 {
                // The trailer digests everything before itself, so
                // snapshot the running hash before consuming it.
                let computed = self.hash;
                let mut t = [0u8; 8];
                self.inner.read_exact(&mut t)?;
                let stored = u64::from_le_bytes(t);
                if stored != computed {
                    return Err(ReadTraceError::ChecksumMismatch { stored, computed });
                }
            }
            expect_eof(&mut self.inner)?;
            self.done = true;
            return Ok(None);
        }
        let take = usize::try_from(remaining).unwrap_or(usize::MAX).min(V12_CHUNK);
        self.chunk.clear();
        let mut buf = [0u8; V12_RECORD_BYTES];
        for _ in 0..take {
            read_hashed(&mut self.inner, &mut self.hash, &mut buf)?;
            self.chunk.push(decode_record_v12(&buf)?);
        }
        self.produced += take as u64;
        Ok(Some(&self.chunk))
    }

    fn next_chunk_v3(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        let mut frame = [0u8; 8];
        self.inner.read_exact(&mut frame)?;
        let n_records = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
        let payload_len = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes")) as usize;

        if n_records == 0 {
            // End marker: zero frame, still checksummed.
            if payload_len != 0 {
                return Err(ReadTraceError::Corrupt("block header"));
            }
            verify_block_trailer(&mut self.inner, &frame, &[])?;
            if self.declared.is_some_and(|d| d != self.produced) {
                return Err(ReadTraceError::Corrupt("record count mismatch"));
            }
            expect_eof(&mut self.inner)?;
            self.done = true;
            return Ok(None);
        }
        if n_records > BLOCK_RECORDS {
            return Err(ReadTraceError::Corrupt("block record count"));
        }
        if payload_len == 0 || payload_len > MAX_BLOCK_PAYLOAD {
            return Err(ReadTraceError::Corrupt("block payload length"));
        }
        if self.declared.is_some_and(|d| d.wrapping_sub(self.produced) < n_records as u64) {
            return Err(ReadTraceError::Corrupt("record count mismatch"));
        }
        self.payload.clear();
        self.payload.resize(payload_len, 0);
        self.inner.read_exact(&mut self.payload)?;
        verify_block_trailer(&mut self.inner, &frame, &self.payload)?;
        self.chunk.clear();
        decode_block(&self.payload, n_records, &mut self.chunk)?;
        self.produced += n_records as u64;
        Ok(Some(&self.chunk))
    }
}

impl<R: Read> TraceReader for BptrReader<R> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn len_hint(&self) -> Option<u64> {
        self.declared
    }

    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        if self.done {
            return Ok(None);
        }
        if self.version == VERSION_V3 {
            self.next_chunk_v3()
        } else {
            self.next_chunk_v12()
        }
    }
}

fn read_hashed<R: Read>(r: &mut R, hash: &mut u64, buf: &mut [u8]) -> Result<(), ReadTraceError> {
    r.read_exact(buf)?;
    fnv1a(hash, buf);
    Ok(())
}

/// Reads a block's 8-byte FNV-1a trailer and checks it against the
/// digest of `frame ++ payload`.
fn verify_block_trailer<R: Read>(
    r: &mut R,
    frame: &[u8; 8],
    payload: &[u8],
) -> Result<(), ReadTraceError> {
    let mut t = [0u8; 8];
    r.read_exact(&mut t)?;
    let stored = u64::from_le_bytes(t);
    let mut computed = FNV_OFFSET;
    fnv1a(&mut computed, frame);
    fnv1a(&mut computed, payload);
    if stored != computed {
        return Err(ReadTraceError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

/// Requires the stream to be exhausted: any further byte is corruption.
fn expect_eof<R: Read>(r: &mut R) -> Result<(), ReadTraceError> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(()),
            Ok(_) => return Err(ReadTraceError::Corrupt("trailing bytes")),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RetiredInst;

    fn branchy(len: u64) -> Trace {
        let mut t = Trace::new(TraceMeta::new("reader", 1));
        for i in 0..len {
            t.push(RetiredInst::cond_branch(0x40 + (i % 97) * 4, i % 5 != 0, 0x400, Some(2), None));
        }
        t
    }

    #[test]
    fn slice_reader_yields_everything_once() {
        let t = branchy(100);
        let mut r = t.reader();
        assert_eq!(r.len_hint(), Some(100));
        assert_eq!(r.next_chunk().unwrap().unwrap(), t.insts());
        assert!(r.next_chunk().unwrap().is_none());
        assert!(r.next_chunk().unwrap().is_none());
    }

    #[test]
    fn shared_reader_yields_everything_once() {
        let t = Arc::new(branchy(64));
        let mut r = SharedReader::new(Arc::clone(&t));
        assert_eq!(r.meta(), t.meta());
        assert_eq!(r.next_chunk().unwrap().unwrap(), t.insts());
        assert!(r.next_chunk().unwrap().is_none());
    }

    #[test]
    fn bptr_reader_streams_v3_blocks() {
        let t = branchy(150_000);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let mut r = BptrReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.meta(), t.meta());
        assert_eq!(r.len_hint(), Some(150_000));
        let mut all = Vec::new();
        while let Some(chunk) = r.next_chunk().unwrap() {
            assert!(chunk.len() <= BLOCK_RECORDS);
            all.extend_from_slice(chunk);
        }
        assert_eq!(r.records_read(), 150_000);
        assert_eq!(all, t.insts());
    }

    #[test]
    fn bptr_reader_streams_v2_in_bounded_chunks() {
        let t = branchy(40_000);
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        let mut r = BptrReader::new(bytes.as_slice()).unwrap();
        let mut all = Vec::new();
        let mut chunks = 0;
        while let Some(chunk) = r.next_chunk().unwrap() {
            assert!(chunk.len() <= V12_CHUNK);
            all.extend_from_slice(chunk);
            chunks += 1;
        }
        assert!(chunks >= 3, "{chunks}");
        assert_eq!(all, t.insts());
    }

    #[test]
    fn v3_count_mismatch_is_detected() {
        let t = branchy(500);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        // Patch the header count (not covered by any block checksum) to
        // lie: the block/end-marker accounting must catch it.
        let count_off = 4 + 2 + 2 + t.meta().name.len() + 4;
        for lie in [499u64, 501, 1] {
            let mut b = bytes.clone();
            b[count_off..count_off + 8].copy_from_slice(&lie.to_le_bytes());
            let err = Trace::read_from(b.as_slice()).unwrap_err();
            assert!(
                matches!(err, ReadTraceError::Corrupt("record count mismatch")),
                "count={lie}: {err:?}"
            );
        }
    }

    #[test]
    fn v3_unknown_count_streams_fine() {
        use crate::codec_v3::TraceWriter;
        let t = branchy(70_000);
        let mut w = TraceWriter::new(Vec::new(), t.meta(), None).unwrap();
        for i in t.iter() {
            w.push(*i).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = BptrReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.len_hint(), None);
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.insts(), t.insts());
        while r.next_chunk().unwrap().is_some() {}
        assert_eq!(r.records_read(), 70_000);
    }

    #[test]
    fn oversized_block_frame_is_rejected_without_allocation() {
        let t = branchy(3);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let frame_off = 4 + 2 + 2 + t.meta().name.len() + 4 + 8;
        // Hostile n_records.
        let mut b = bytes.clone();
        b[frame_off..frame_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Trace::read_from(b.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("block record count")), "{err:?}");
        // Hostile payload_len.
        let mut b = bytes;
        b[frame_off + 4..frame_off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Trace::read_from(b.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("block payload length")), "{err:?}");
    }

    #[test]
    fn non_utf8_name_is_structured() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&3u16.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let Err(err) = BptrReader::new(bytes.as_slice()) else {
            panic!("non-UTF-8 name must be rejected");
        };
        assert!(matches!(err, ReadTraceError::Corrupt("name")), "{err:?}");
    }
}
