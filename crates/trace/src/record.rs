//! Retired-instruction records — the unit every analysis consumes.

use crate::isa::{BranchKind, InstClass, Reg};

/// Outcome information for a retired control-flow instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Subtype of the branch.
    pub kind: BranchKind,
    /// Whether the branch was taken. Unconditional branches are always
    /// `taken = true`.
    pub taken: bool,
    /// The target instruction pointer actually followed when taken.
    pub target: u64,
}

/// A single retired instruction, with full operand ground truth.
///
/// The fields are deliberately public (a passive record in the C spirit):
/// traces contain hundreds of thousands of these and the analyses iterate
/// over them directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetiredInst {
    /// Static instruction pointer.
    pub ip: u64,
    /// Value written to `dst` (0 when there is no destination). Used by the
    /// Fig. 10 register-value analysis.
    pub dst_value: u64,
    /// Effective memory address for loads/stores (0 otherwise).
    pub mem_addr: u64,
    /// Coarse class for the timing model.
    pub class: InstClass,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Branch outcome, present iff `class == InstClass::Branch`.
    pub branch: Option<BranchInfo>,
}

impl RetiredInst {
    /// Creates a non-branch record.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_trace::{InstClass, Reg, RetiredInst};
    /// let i = RetiredInst::op(0x10, InstClass::Alu, Some(Reg::new(1)), None, Some(Reg::new(2)), 42);
    /// assert_eq!(i.dst_value, 42);
    /// assert!(i.branch.is_none());
    /// ```
    #[must_use]
    pub fn op(
        ip: u64,
        class: InstClass,
        src1: Option<Reg>,
        src2: Option<Reg>,
        dst: Option<Reg>,
        dst_value: u64,
    ) -> Self {
        debug_assert!(class != InstClass::Branch, "use a branch constructor");
        RetiredInst {
            ip,
            dst_value,
            mem_addr: 0,
            class,
            src1,
            src2,
            dst,
            branch: None,
        }
    }

    /// Creates a memory record (load or store) with an effective address.
    #[must_use]
    pub fn mem(
        ip: u64,
        class: InstClass,
        addr: u64,
        src1: Option<Reg>,
        src2: Option<Reg>,
        dst: Option<Reg>,
        dst_value: u64,
    ) -> Self {
        debug_assert!(class.is_memory(), "mem() requires a load/store class");
        RetiredInst {
            ip,
            dst_value,
            mem_addr: addr,
            class,
            src1,
            src2,
            dst,
            branch: None,
        }
    }

    /// Creates a conditional branch record. `srcs` are the register indices
    /// read by the branch condition.
    #[must_use]
    pub fn cond_branch(ip: u64, taken: bool, target: u64, src1: Option<u8>, src2: Option<u8>) -> Self {
        RetiredInst {
            ip,
            dst_value: 0,
            mem_addr: 0,
            class: InstClass::Branch,
            src1: src1.map(Reg::new),
            src2: src2.map(Reg::new),
            dst: None,
            branch: Some(BranchInfo {
                kind: BranchKind::Conditional,
                taken,
                target,
            }),
        }
    }

    /// Creates an unconditional control-flow record of the given kind.
    #[must_use]
    pub fn uncond_branch(ip: u64, kind: BranchKind, target: u64) -> Self {
        debug_assert!(!kind.is_conditional(), "use cond_branch for conditionals");
        RetiredInst {
            ip,
            dst_value: 0,
            mem_addr: 0,
            class: InstClass::Branch,
            src1: None,
            src2: None,
            dst: None,
            branch: Some(BranchInfo {
                kind,
                taken: true,
                target,
            }),
        }
    }

    /// True if this record is a conditional branch.
    #[must_use]
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self.branch,
            Some(BranchInfo {
                kind: BranchKind::Conditional,
                ..
            })
        )
    }

    /// For conditional branches, the taken outcome; `None` otherwise.
    #[must_use]
    pub fn taken(&self) -> Option<bool> {
        match self.branch {
            Some(BranchInfo {
                kind: BranchKind::Conditional,
                taken,
                ..
            }) => Some(taken),
            _ => None,
        }
    }

    /// Iterates over the source registers this instruction reads.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_branch_predicates() {
        let b = RetiredInst::cond_branch(0x100, true, 0x140, Some(3), None);
        assert!(b.is_conditional_branch());
        assert_eq!(b.taken(), Some(true));
        assert_eq!(b.sources().count(), 1);
        assert_eq!(b.class, InstClass::Branch);
    }

    #[test]
    fn uncond_branch_has_no_direction() {
        let j = RetiredInst::uncond_branch(0x100, BranchKind::DirectJump, 0x200);
        assert!(!j.is_conditional_branch());
        assert_eq!(j.taken(), None);
        assert!(j.branch.unwrap().taken);
    }

    #[test]
    fn op_and_mem_constructors() {
        let a = RetiredInst::op(1, InstClass::Alu, Some(Reg::new(0)), Some(Reg::new(1)), Some(Reg::new(2)), 7);
        assert_eq!(a.sources().count(), 2);
        let m = RetiredInst::mem(2, InstClass::Load, 0xdead, Some(Reg::new(4)), None, Some(Reg::new(5)), 9);
        assert_eq!(m.mem_addr, 0xdead);
        assert_eq!(m.dst, Some(Reg::new(5)));
    }
}
