//! Binary trace serialization.
//!
//! The paper's offline-training methodology (§V-B) rests on "collecting
//! multiple long-duration traces of an application" into a trace library.
//! This module gives [`Trace`] a compact, versioned binary format so trace
//! collections can be written once and re-analyzed many times.
//!
//! Format (little-endian): magic `BPTR`, version u16, metadata (name
//! length u16 + UTF-8 bytes, input u32), record count u64, one
//! fixed-layout record per instruction, and — since version 2 — a
//! trailing FNV-1a 64-bit checksum over every preceding byte (magic and
//! version included). The checksum turns torn writes and bit rot into
//! loud [`ReadTraceError::ChecksumMismatch`] errors instead of silently
//! wrong replay data; version-1 files (no trailer) remain readable for
//! backward compatibility, they just skip verification.
//!
//! [`Trace::save`] is crash-safe: it writes to a unique temporary file in
//! the destination directory and atomically renames it into place, so a
//! concurrent reader (or a `kill -9` mid-write) can never observe a
//! half-written trace at the final path.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::isa::{BranchKind, InstClass, Reg};
use crate::record::{BranchInfo, RetiredInst};
use crate::trace::{Trace, TraceMeta};

const MAGIC: &[u8; 4] = b"BPTR";
/// Current write version: v2 appends the FNV-1a trailer.
const VERSION: u16 = 2;
/// Oldest version still accepted by [`Trace::read_from`].
const MIN_VERSION: u16 = 1;
const NO_REG: u8 = 0xFF;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 over a byte stream.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// A writer adapter that hashes everything written through it.
struct HashingWriter<W> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter { inner, hash: FNV_OFFSET }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        fnv1a(&mut self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that hashes everything read through it.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader { inner, hash: FNV_OFFSET }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        fnv1a(&mut self.hash, &buf[..n]);
        Ok(n)
    }
}

/// Errors produced when decoding a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not begin with the trace magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// A field held an invalid value (register, class, or branch kind).
    Corrupt(&'static str),
    /// The v2 trailing checksum did not match the payload: the file was
    /// torn mid-write or corrupted at rest.
    ChecksumMismatch {
        /// Checksum recorded in the file's trailer.
        stored: u64,
        /// Checksum recomputed over the payload actually read.
        computed: u64,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => f.write_str("not a branch-lab trace (bad magic)"),
            ReadTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace: invalid {what}"),
            ReadTraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt trace: checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Errors produced when encoding a trace.
#[derive(Debug)]
pub enum WriteTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The workload name does not fit the format's u16 length field; the
    /// trace cannot be written without silently altering its metadata.
    NameTooLong(usize),
}

impl fmt::Display for WriteTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteTraceError::Io(e) => write!(f, "i/o error writing trace: {e}"),
            WriteTraceError::NameTooLong(len) => write!(
                f,
                "workload name is {len} bytes; the BPTR format caps names at {} bytes",
                u16::MAX
            ),
        }
    }
}

impl Error for WriteTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WriteTraceError::Io(e) => Some(e),
            WriteTraceError::NameTooLong(_) => None,
        }
    }
}

impl From<io::Error> for WriteTraceError {
    fn from(e: io::Error) -> Self {
        WriteTraceError::Io(e)
    }
}

fn encode_reg(r: Option<Reg>) -> u8 {
    r.map_or(NO_REG, |r| r.index() as u8)
}

fn decode_reg(b: u8) -> Result<Option<Reg>, ReadTraceError> {
    match b {
        NO_REG => Ok(None),
        i if (i as usize) < crate::isa::NUM_REGS => Ok(Some(Reg::new(i))),
        _ => Err(ReadTraceError::Corrupt("register")),
    }
}

fn class_code(c: InstClass) -> u8 {
    match c {
        InstClass::Alu => 0,
        InstClass::Mul => 1,
        InstClass::Load => 2,
        InstClass::Store => 3,
        InstClass::Branch => 4,
        InstClass::Nop => 5,
    }
}

fn decode_class(b: u8) -> Result<InstClass, ReadTraceError> {
    Ok(match b {
        0 => InstClass::Alu,
        1 => InstClass::Mul,
        2 => InstClass::Load,
        3 => InstClass::Store,
        4 => InstClass::Branch,
        5 => InstClass::Nop,
        _ => return Err(ReadTraceError::Corrupt("instruction class")),
    })
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 1,
        BranchKind::DirectJump => 2,
        BranchKind::IndirectJump => 3,
        BranchKind::Call => 4,
        BranchKind::Return => 5,
    }
}

fn decode_kind(b: u8) -> Result<BranchKind, ReadTraceError> {
    Ok(match b {
        1 => BranchKind::Conditional,
        2 => BranchKind::DirectJump,
        3 => BranchKind::IndirectJump,
        4 => BranchKind::Call,
        5 => BranchKind::Return,
        _ => return Err(ReadTraceError::Corrupt("branch kind")),
    })
}

impl Trace {
    /// Serializes the trace to `writer` in the `BPTR` v2 format
    /// (checksummed; see the module docs).
    ///
    /// A `&mut` reference can be passed for `writer` (e.g. `&mut file`).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer, and returns
    /// [`WriteTraceError::NameTooLong`] when the workload name exceeds the
    /// format's u16 length field (truncating it would make a `save`/`load`
    /// round trip silently alter [`TraceMeta`]).
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), WriteTraceError> {
        let mut writer = HashingWriter::new(writer);
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        let name = self.meta().name.as_bytes();
        let name_len =
            u16::try_from(name.len()).map_err(|_| WriteTraceError::NameTooLong(name.len()))?;
        writer.write_all(&name_len.to_le_bytes())?;
        writer.write_all(name)?;
        writer.write_all(&self.meta().input.to_le_bytes())?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        let mut buf = [0u8; 37];
        for inst in self.iter() {
            buf[0..8].copy_from_slice(&inst.ip.to_le_bytes());
            buf[8..16].copy_from_slice(&inst.dst_value.to_le_bytes());
            buf[16..24].copy_from_slice(&inst.mem_addr.to_le_bytes());
            buf[24] = class_code(inst.class);
            buf[25] = encode_reg(inst.src1);
            buf[26] = encode_reg(inst.src2);
            buf[27] = encode_reg(inst.dst);
            match inst.branch {
                Some(b) => {
                    buf[28] = kind_code(b.kind) | (u8::from(b.taken) << 3);
                    buf[29..37].copy_from_slice(&b.target.to_le_bytes());
                }
                None => {
                    buf[28] = 0;
                    buf[29..37].fill(0);
                }
            }
            writer.write_all(&buf)?;
        }
        // The trailer is the digest of everything before it, so it is
        // written through the inner writer (hashing it would be circular).
        let digest = writer.hash;
        writer.inner.write_all(&digest.to_le_bytes())?;
        writer.inner.flush()?;
        Ok(())
    }

    /// Deserializes a trace previously written with [`Trace::write_to`].
    ///
    /// A `&mut` reference can be passed for `reader`.
    ///
    /// Both format versions are accepted: v2 files have their trailing
    /// checksum verified, v1 files (written before the trailer existed)
    /// are decoded without verification.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, unsupported
    /// version, corrupt field values, or a checksum mismatch.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_trace::{RetiredInst, Trace, TraceMeta};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut t = Trace::new(TraceMeta::new("demo", 3));
    /// t.push(RetiredInst::cond_branch(0x40, true, 0x80, Some(1), None));
    /// let mut bytes = Vec::new();
    /// t.write_to(&mut bytes)?;
    /// let back = Trace::read_from(bytes.as_slice())?;
    /// assert_eq!(back.meta().name, "demo");
    /// assert_eq!(back.insts(), t.insts());
    /// # Ok(())
    /// # }
    /// ```
    pub fn read_from<R: Read>(reader: R) -> Result<Trace, ReadTraceError> {
        let mut reader = HashingReader::new(reader);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTraceError::BadMagic);
        }
        let mut u16b = [0u8; 2];
        reader.read_exact(&mut u16b)?;
        let version = u16::from_le_bytes(u16b);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(ReadTraceError::UnsupportedVersion(version));
        }
        reader.read_exact(&mut u16b)?;
        let name_len = u16::from_le_bytes(u16b) as usize;
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| ReadTraceError::Corrupt("name"))?;
        let mut u32b = [0u8; 4];
        reader.read_exact(&mut u32b)?;
        let input = u32::from_le_bytes(u32b);
        let mut u64b = [0u8; 8];
        reader.read_exact(&mut u64b)?;
        let count = u64::from_le_bytes(u64b);

        let mut trace = Trace::with_capacity(
            TraceMeta::new(name, input),
            usize::try_from(count).unwrap_or(0).min(1 << 28),
        );
        let mut buf = [0u8; 37];
        for _ in 0..count {
            reader.read_exact(&mut buf)?;
            let branch = match buf[28] {
                0 => None,
                code => {
                    let kind = decode_kind(code & 0x7)?;
                    let taken = code & 0x8 != 0;
                    if !taken && kind != BranchKind::Conditional {
                        return Err(ReadTraceError::Corrupt("unconditional not-taken"));
                    }
                    Some(BranchInfo {
                        kind,
                        taken,
                        target: u64::from_le_bytes(buf[29..37].try_into().expect("8 bytes")),
                    })
                }
            };
            trace.push(RetiredInst {
                ip: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
                dst_value: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
                mem_addr: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
                class: decode_class(buf[24])?,
                src1: decode_reg(buf[25])?,
                src2: decode_reg(buf[26])?,
                dst: decode_reg(buf[27])?,
                branch,
            });
        }
        if version >= 2 {
            // Snapshot the digest before the trailer bytes pass through
            // the hashing reader.
            let computed = reader.hash;
            let mut trailer = [0u8; 8];
            reader.read_exact(&mut trailer)?;
            let stored = u64::from_le_bytes(trailer);
            if stored != computed {
                return Err(ReadTraceError::ChecksumMismatch { stored, computed });
            }
        }
        Ok(trace)
    }

    /// Writes the trace to a file at `path` (see [`Trace::write_to`]),
    /// atomically: bytes go to a unique temporary file in the same
    /// directory, which is fsynced and renamed over `path`. Readers (and
    /// concurrent savers racing on the same path) therefore only ever see
    /// either the old complete file or the new complete file; a crash
    /// mid-write leaves at worst an orphaned `.tmp` file, never a torn
    /// trace at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation, write, and rename errors, plus
    /// [`WriteTraceError::NameTooLong`] for oversized workload names. On
    /// error the temporary file is removed (best-effort).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), WriteTraceError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = path.as_ref();
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let base = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let tmp = dir.join(format!(
            ".{base}.{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> Result<(), WriteTraceError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = io::BufWriter::new(file);
            self.write_to(&mut writer)?;
            // BufWriter::into_inner flushes; sync so the rename cannot be
            // durable before the data it points at.
            let file = writer.into_inner().map_err(io::IntoInnerError::into_error)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        };
        write().inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Reads a trace from a file at `path` (see [`Trace::read_from`]).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on open/read/decode failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace, ReadTraceError> {
        let file = std::fs::File::open(path)?;
        Trace::read_from(io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta::new("roundtrip", 7));
        t.push(RetiredInst::op(0x10, InstClass::Alu, Some(Reg::new(1)), None, Some(Reg::new(2)), 42));
        t.push(RetiredInst::mem(0x14, InstClass::Load, 0x800, Some(Reg::new(2)), None, Some(Reg::new(3)), 9));
        t.push(RetiredInst::cond_branch(0x18, false, 0x40, Some(3), Some(4)));
        t.push(RetiredInst::uncond_branch(0x1c, BranchKind::Call, 0x100));
        t.push(RetiredInst::uncond_branch(0x20, BranchKind::Return, 0x20));
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.meta(), t.meta());
        assert_eq!(back.insts(), t.insts());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOPE0000"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        bytes[4] = 99; // version low byte
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Io(_)));
    }

    #[test]
    fn corrupt_register_is_rejected() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        // First record's src1 byte: header is 4+2+2+9+4+8 = 29 bytes
        // ("roundtrip" = 9 chars), record starts at 29, src1 at +25.
        bytes[29 + 25] = 200;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("register")));
    }

    #[test]
    fn file_save_load_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("bp_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bptr");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.insts(), t.insts());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn large_trace_roundtrip() {
        let mut t = Trace::new(TraceMeta::new("big", 0));
        for i in 0..10_000u64 {
            t.push(RetiredInst::cond_branch(0x40 + (i % 64) * 4, i % 3 == 0, 0x80, Some(1), None));
        }
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        // Header + records + 8-byte checksum trailer.
        assert_eq!(bytes.len(), 4 + 2 + 2 + 3 + 4 + 8 + 37 * 10_000 + 8);
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.len(), 10_000);
        assert_eq!(back.insts(), t.insts());
    }

    /// Rewrites v2 `bytes` as the v1 format: drop the trailer, patch the
    /// version field. This is exactly what pre-checksum branch-lab wrote.
    fn downgrade_to_v1(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes.truncate(bytes.len() - 8);
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        bytes
    }

    #[test]
    fn v1_files_without_checksum_still_load() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let back = Trace::read_from(downgrade_to_v1(bytes).as_slice()).unwrap();
        assert_eq!(back.meta(), t.meta());
        assert_eq!(back.insts(), t.insts());
    }

    #[test]
    fn bit_flip_in_payload_fails_the_checksum() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        // Flip one bit in the first record's dst_value — a field whose
        // every value decodes fine, so only the checksum can catch it.
        let dst_value_off = 4 + 2 + 2 + t.meta().name.len() + 4 + 8 + 8;
        bytes[dst_value_off] ^= 0x40;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::ChecksumMismatch { .. }), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn corrupt_trailer_fails_the_checksum() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("bp_trace_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.bptr");
        t.save(&path).unwrap();
        t.save(&path).unwrap(); // overwrite is atomic too
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["atomic.bptr".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
