//! Binary trace serialization: the `BPTR` container, v1/v2 legacy codec,
//! and the shared error types.
//!
//! The paper's offline-training methodology (§V-B) rests on "collecting
//! multiple long-duration traces of an application" into a trace library.
//! This module gives [`Trace`] a compact, versioned binary format so trace
//! collections can be written once and re-analyzed many times.
//!
//! Every version shares the header (little-endian): magic `BPTR`,
//! version u16, metadata (name length u16 + UTF-8 bytes, input u32), and
//! a record count u64. What follows depends on the version:
//!
//! * **v1** — one fixed 37-byte record per instruction, nothing else.
//! * **v2** — v1 plus a trailing FNV-1a 64-bit checksum over every
//!   preceding byte (magic and version included).
//! * **v3** — bit-packed, delta-compressed blocks, each carrying its own
//!   FNV-1a trailer so corruption is detected at (and localized to) the
//!   block holding it; see [`crate::codec_v3`] for the layout. This is
//!   the only version writers emit.
//!
//! All three versions decode through the same streaming block reader
//! ([`crate::reader::BptrReader`]); [`Trace::read_from`] simply drains it
//! into memory. Decode is hardened against hostile input: a corrupt
//! header cannot demand a large allocation (capacity is clamped and
//! grown as records actually arrive), every invalid field is a
//! structured [`ReadTraceError`], and trailing bytes after the final
//! record/trailer are rejected instead of silently ignored.
//!
//! [`Trace::save`] is crash-safe: it writes to a unique temporary file in
//! the destination directory and atomically renames it into place, so a
//! concurrent reader (or a `kill -9` mid-write) can never observe a
//! half-written trace at the final path.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec_v3::TraceWriter;
use crate::isa::{BranchKind, InstClass, Reg, NUM_REGS};
use crate::reader::{BptrReader, TraceReader};
use crate::record::{BranchInfo, RetiredInst};
use crate::trace::{Trace, TraceMeta};

pub(crate) const MAGIC: &[u8; 4] = b"BPTR";
/// Current write version: v3 block codec.
pub(crate) const VERSION_V3: u16 = 3;
/// The checksummed fat-record format (still readable, no longer written).
pub(crate) const VERSION_V2: u16 = 2;
/// Oldest version still accepted by [`Trace::read_from`].
pub(crate) const MIN_VERSION: u16 = 1;
pub(crate) const NO_REG: u8 = 0xFF;

/// Initial record-capacity clamp for decoding: headers are untrusted, so
/// a claimed record count only seeds capacity up to this bound — a
/// hostile 16-byte header can no longer demand a multi-GB allocation
/// before a single record has been read.
pub(crate) const DECODE_CAP_CLAMP: usize = 1 << 16;

/// Bytes of one fixed-layout v1/v2 record.
pub(crate) const V12_RECORD_BYTES: usize = 37;

// The register encoding reserves 0xFF for "no register"; a future ISA
// widening past that would silently alias real registers onto the
// sentinel, so refuse to compile instead.
const _: () = assert!(NUM_REGS < NO_REG as usize, "register encoding collides with NO_REG");

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 over a byte stream.
pub(crate) fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// A writer adapter that hashes everything written through it.
struct HashingWriter<W> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter { inner, hash: FNV_OFFSET }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        fnv1a(&mut self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Errors produced when decoding a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not begin with the trace magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// A field held an invalid value, the framing was malformed, or the
    /// stream carried bytes past its declared end.
    Corrupt(&'static str),
    /// A checksum did not match its payload (the v2 whole-file trailer
    /// or a v3 per-block trailer): the file was torn mid-write or
    /// corrupted at rest.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the payload actually read.
        computed: u64,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => f.write_str("not a branch-lab trace (bad magic)"),
            ReadTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace: invalid {what}"),
            ReadTraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "corrupt trace: checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Errors produced when encoding a trace.
#[derive(Debug)]
pub enum WriteTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The workload name does not fit the format's u16 length field; the
    /// trace cannot be written without silently altering its metadata.
    NameTooLong(usize),
}

impl fmt::Display for WriteTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteTraceError::Io(e) => write!(f, "i/o error writing trace: {e}"),
            WriteTraceError::NameTooLong(len) => write!(
                f,
                "workload name is {len} bytes; the BPTR format caps names at {} bytes",
                u16::MAX
            ),
        }
    }
}

impl Error for WriteTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WriteTraceError::Io(e) => Some(e),
            WriteTraceError::NameTooLong(_) => None,
        }
    }
}

impl From<io::Error> for WriteTraceError {
    fn from(e: io::Error) -> Self {
        WriteTraceError::Io(e)
    }
}

pub(crate) fn encode_reg(r: Option<Reg>) -> u8 {
    r.map_or(NO_REG, |r| r.index() as u8)
}

pub(crate) fn decode_reg(b: u8) -> Result<Option<Reg>, ReadTraceError> {
    match b {
        NO_REG => Ok(None),
        i if (i as usize) < NUM_REGS => Ok(Some(Reg::new(i))),
        _ => Err(ReadTraceError::Corrupt("register")),
    }
}

pub(crate) fn class_code(c: InstClass) -> u8 {
    match c {
        InstClass::Alu => 0,
        InstClass::Mul => 1,
        InstClass::Load => 2,
        InstClass::Store => 3,
        InstClass::Branch => 4,
        InstClass::Nop => 5,
    }
}

pub(crate) fn decode_class(b: u8) -> Result<InstClass, ReadTraceError> {
    Ok(match b {
        0 => InstClass::Alu,
        1 => InstClass::Mul,
        2 => InstClass::Load,
        3 => InstClass::Store,
        4 => InstClass::Branch,
        5 => InstClass::Nop,
        _ => return Err(ReadTraceError::Corrupt("instruction class")),
    })
}

pub(crate) fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 1,
        BranchKind::DirectJump => 2,
        BranchKind::IndirectJump => 3,
        BranchKind::Call => 4,
        BranchKind::Return => 5,
    }
}

pub(crate) fn decode_kind(b: u8) -> Result<BranchKind, ReadTraceError> {
    Ok(match b {
        1 => BranchKind::Conditional,
        2 => BranchKind::DirectJump,
        3 => BranchKind::IndirectJump,
        4 => BranchKind::Call,
        5 => BranchKind::Return,
        _ => return Err(ReadTraceError::Corrupt("branch kind")),
    })
}

/// Writes the version-independent `BPTR` header.
pub(crate) fn write_header<W: Write>(
    writer: &mut W,
    version: u16,
    meta: &TraceMeta,
    count: u64,
) -> Result<(), WriteTraceError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&version.to_le_bytes())?;
    let name = meta.name.as_bytes();
    let name_len =
        u16::try_from(name.len()).map_err(|_| WriteTraceError::NameTooLong(name.len()))?;
    writer.write_all(&name_len.to_le_bytes())?;
    writer.write_all(name)?;
    writer.write_all(&meta.input.to_le_bytes())?;
    writer.write_all(&count.to_le_bytes())?;
    Ok(())
}

/// Encodes one record in the fixed v1/v2 layout.
pub(crate) fn encode_record_v12(inst: &RetiredInst, buf: &mut [u8; V12_RECORD_BYTES]) {
    buf[0..8].copy_from_slice(&inst.ip.to_le_bytes());
    buf[8..16].copy_from_slice(&inst.dst_value.to_le_bytes());
    buf[16..24].copy_from_slice(&inst.mem_addr.to_le_bytes());
    buf[24] = class_code(inst.class);
    buf[25] = encode_reg(inst.src1);
    buf[26] = encode_reg(inst.src2);
    buf[27] = encode_reg(inst.dst);
    match inst.branch {
        Some(b) => {
            buf[28] = kind_code(b.kind) | (u8::from(b.taken) << 3);
            buf[29..37].copy_from_slice(&b.target.to_le_bytes());
        }
        None => {
            buf[28] = 0;
            buf[29..37].fill(0);
        }
    }
}

/// Decodes one record from the fixed v1/v2 layout.
pub(crate) fn decode_record_v12(buf: &[u8; V12_RECORD_BYTES]) -> Result<RetiredInst, ReadTraceError> {
    let branch = match buf[28] {
        0 => None,
        code => {
            let kind = decode_kind(code & 0x7)?;
            let taken = code & 0x8 != 0;
            if !taken && kind != BranchKind::Conditional {
                return Err(ReadTraceError::Corrupt("unconditional not-taken"));
            }
            Some(BranchInfo {
                kind,
                taken,
                target: u64::from_le_bytes(buf[29..37].try_into().expect("8 bytes")),
            })
        }
    };
    Ok(RetiredInst {
        ip: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
        dst_value: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        mem_addr: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        class: decode_class(buf[24])?,
        src1: decode_reg(buf[25])?,
        src2: decode_reg(buf[26])?,
        dst: decode_reg(buf[27])?,
        branch,
    })
}

impl Trace {
    /// Serializes the trace to `writer` in the `BPTR` v3 format
    /// (bit-packed delta-compressed blocks, each with its own FNV-1a
    /// trailer; DESIGN.md documents the layout).
    ///
    /// A `&mut` reference can be passed for `writer` (e.g. `&mut file`).
    /// To serialize a stream of records without materializing a
    /// [`Trace`], use [`TraceWriter`] directly.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer, and returns
    /// [`WriteTraceError::NameTooLong`] when the workload name exceeds the
    /// format's u16 length field (truncating it would make a `save`/`load`
    /// round trip silently alter [`TraceMeta`]).
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), WriteTraceError> {
        let mut w = TraceWriter::new(writer, self.meta(), Some(self.len() as u64))?;
        for inst in self.iter() {
            w.push(*inst)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Serializes the trace in the legacy `BPTR` v2 format (fat 37-byte
    /// records, whole-file checksum trailer).
    ///
    /// Kept for compatibility testing and for tooling that needs the
    /// fixed-layout records; new code should use [`Trace::write_to`]
    /// (v3), which is both smaller and streamable.
    ///
    /// # Errors
    ///
    /// Same contract as [`Trace::write_to`].
    pub fn write_to_v2<W: Write>(&self, writer: W) -> Result<(), WriteTraceError> {
        let mut writer = HashingWriter::new(writer);
        write_header(&mut writer, VERSION_V2, self.meta(), self.len() as u64)?;
        let mut buf = [0u8; V12_RECORD_BYTES];
        for inst in self.iter() {
            encode_record_v12(inst, &mut buf);
            writer.write_all(&buf)?;
        }
        // The trailer is the digest of everything before it, so it is
        // written through the inner writer (hashing it would be circular).
        let digest = writer.hash;
        writer.inner.write_all(&digest.to_le_bytes())?;
        writer.inner.flush()?;
        Ok(())
    }

    /// Deserializes a trace previously written with [`Trace::write_to`]
    /// (any supported version: v1, v2, or v3), materializing it fully in
    /// memory. For block-wise streaming decode, use
    /// [`Trace::open`] or [`BptrReader`] directly.
    ///
    /// A `&mut` reference can be passed for `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, unsupported
    /// version, corrupt field values or framing, a checksum mismatch, or
    /// trailing bytes after the trace's declared end.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_trace::{RetiredInst, Trace, TraceMeta};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut t = Trace::new(TraceMeta::new("demo", 3));
    /// t.push(RetiredInst::cond_branch(0x40, true, 0x80, Some(1), None));
    /// let mut bytes = Vec::new();
    /// t.write_to(&mut bytes)?;
    /// let back = Trace::read_from(bytes.as_slice())?;
    /// assert_eq!(back.meta().name, "demo");
    /// assert_eq!(back.insts(), t.insts());
    /// # Ok(())
    /// # }
    /// ```
    pub fn read_from<R: Read>(reader: R) -> Result<Trace, ReadTraceError> {
        let mut r = BptrReader::new(reader)?;
        // The header's count is untrusted input: seed capacity with at
        // most DECODE_CAP_CLAMP records and let the vector grow as data
        // actually arrives.
        let cap = r
            .len_hint()
            .map_or(0, |n| usize::try_from(n).unwrap_or(usize::MAX))
            .min(DECODE_CAP_CLAMP);
        let mut trace = Trace::with_capacity(r.meta().clone(), cap);
        while let Some(chunk) = r.next_chunk()? {
            trace.extend(chunk.iter().copied());
        }
        Ok(trace)
    }

    /// Writes the trace to a file at `path` (see [`Trace::write_to`]),
    /// atomically: bytes go to a unique temporary file in the same
    /// directory, which is fsynced and renamed over `path`. Readers (and
    /// concurrent savers racing on the same path) therefore only ever see
    /// either the old complete file or the new complete file; a crash
    /// mid-write leaves at worst an orphaned `.tmp` file, never a torn
    /// trace at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation, write, and rename errors, plus
    /// [`WriteTraceError::NameTooLong`] for oversized workload names. On
    /// error the temporary file is removed (best-effort).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), WriteTraceError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = path.as_ref();
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let base = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let tmp = dir.join(format!(
            ".{base}.{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> Result<(), WriteTraceError> {
            let file = std::fs::File::create(&tmp)?;
            let mut writer = io::BufWriter::new(file);
            self.write_to(&mut writer)?;
            // BufWriter::into_inner flushes; sync so the rename cannot be
            // durable before the data it points at.
            let file = writer.into_inner().map_err(io::IntoInnerError::into_error)?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        };
        write().inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Reads a trace from a file at `path` (see [`Trace::read_from`]),
    /// materializing it fully. Prefer [`Trace::open`] when the consumer
    /// can stream.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on open/read/decode failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace, ReadTraceError> {
        let file = std::fs::File::open(path)?;
        Trace::read_from(io::BufReader::new(file))
    }

    /// Opens the trace file at `path` for block-wise streaming decode:
    /// the header is parsed eagerly (so metadata is available), records
    /// are decoded one block at a time as the stream is consumed, and
    /// peak memory stays bounded by the block size regardless of trace
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on open failure or a malformed header.
    pub fn open(
        path: impl AsRef<std::path::Path>,
    ) -> Result<BptrReader<io::BufReader<std::fs::File>>, ReadTraceError> {
        let file = std::fs::File::open(path)?;
        BptrReader::new(io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A fresh per-process scratch directory: concurrent test runs (or a
    /// concurrently running second checkout) must never share paths.
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bp_trace_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta::new("roundtrip", 7));
        t.push(RetiredInst::op(0x10, InstClass::Alu, Some(Reg::new(1)), None, Some(Reg::new(2)), 42));
        t.push(RetiredInst::mem(0x14, InstClass::Load, 0x800, Some(Reg::new(2)), None, Some(Reg::new(3)), 9));
        t.push(RetiredInst::cond_branch(0x18, false, 0x40, Some(3), Some(4)));
        t.push(RetiredInst::uncond_branch(0x1c, BranchKind::Call, 0x100));
        t.push(RetiredInst::uncond_branch(0x20, BranchKind::Return, 0x20));
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.meta(), t.meta());
        assert_eq!(back.insts(), t.insts());
    }

    #[test]
    fn v2_roundtrip_preserves_everything() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.meta(), t.meta());
        assert_eq!(back.insts(), t.insts());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new(TraceMeta::new("empty", 1));
        let encodings = [
            {
                let mut b = Vec::new();
                t.write_to(&mut b).unwrap();
                b
            },
            {
                let mut b = Vec::new();
                t.write_to_v2(&mut b).unwrap();
                b
            },
        ];
        for bytes in encodings {
            let back = Trace::read_from(bytes.as_slice()).unwrap();
            assert_eq!(back.meta(), t.meta());
            assert!(back.is_empty());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOPE0000"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        bytes[4] = 99; // version low byte
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Io(_)));
    }

    #[test]
    fn corrupt_register_is_rejected_in_v2() {
        let mut bytes = Vec::new();
        sample().write_to_v2(&mut bytes).unwrap();
        // First record's src1 byte: header is 4+2+2+9+4+8 = 29 bytes
        // ("roundtrip" = 9 chars), record starts at 29, src1 at +25.
        bytes[29 + 25] = 200;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("register")));
    }

    /// Every register value and the none-sentinel round-trip through the
    /// byte encoding; every other byte is rejected, never aliased.
    #[test]
    fn reg_encoding_is_exhaustive_and_injective() {
        assert_eq!(encode_reg(None), NO_REG);
        assert_eq!(decode_reg(NO_REG).unwrap(), None);
        for i in 0..=u8::MAX {
            match decode_reg(i) {
                Ok(None) => assert_eq!(i, NO_REG),
                Ok(Some(r)) => {
                    assert!((i as usize) < NUM_REGS);
                    assert_eq!(r.index(), i as usize);
                    assert_eq!(encode_reg(Some(r)), i);
                }
                Err(_) => assert!((i as usize) >= NUM_REGS && i != NO_REG),
            }
        }
    }

    #[test]
    fn file_save_load_roundtrip() {
        let t = sample();
        let dir = scratch_dir("roundtrip");
        let path = dir.join("sample.bptr");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.insts(), t.insts());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_streams_block_by_block() {
        let mut t = Trace::new(TraceMeta::new("streamed", 2));
        for i in 0..200_000u64 {
            t.push(RetiredInst::cond_branch(0x40 + (i % 64) * 4, i % 3 == 0, 0x80, Some(1), None));
        }
        let dir = scratch_dir("open");
        let path = dir.join("streamed.bptr");
        t.save(&path).unwrap();
        let mut r = Trace::open(&path).unwrap();
        assert_eq!(r.meta(), t.meta());
        assert_eq!(r.len_hint(), Some(200_000));
        let mut seen = 0usize;
        let mut chunks = 0usize;
        while let Some(chunk) = r.next_chunk().unwrap() {
            assert_eq!(chunk, &t.insts()[seen..seen + chunk.len()]);
            seen += chunk.len();
            chunks += 1;
        }
        assert_eq!(seen, t.len());
        assert!(chunks >= 4, "expected multiple blocks, got {chunks}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn large_trace_roundtrip_is_compact() {
        let mut t = Trace::new(TraceMeta::new("big", 0));
        for i in 0..10_000u64 {
            t.push(RetiredInst::cond_branch(0x40 + (i % 64) * 4, i % 3 == 0, 0x80, Some(1), None));
        }
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        // The loopy branch stream must cost under a byte per record —
        // v2 spent 37.
        assert!(bytes.len() < 10_000, "{} bytes for 10k records", bytes.len());
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.len(), 10_000);
        assert_eq!(back.insts(), t.insts());
    }

    /// Rewrites v2 `bytes` as the v1 format: drop the trailer, patch the
    /// version field. This is exactly what pre-checksum branch-lab wrote.
    fn downgrade_to_v1(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes.truncate(bytes.len() - 8);
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        bytes
    }

    #[test]
    fn v1_files_without_checksum_still_load() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        let back = Trace::read_from(downgrade_to_v1(bytes).as_slice()).unwrap();
        assert_eq!(back.meta(), t.meta());
        assert_eq!(back.insts(), t.insts());
    }

    #[test]
    fn v1_trailing_garbage_is_rejected() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        let mut v1 = downgrade_to_v1(bytes);
        // A concatenated second trace (or any stray bytes) after the last
        // declared record must not be silently accepted.
        v1.push(0xAB);
        let err = Trace::read_from(v1.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("trailing bytes")), "{err:?}");
    }

    #[test]
    fn v2_trailing_garbage_is_rejected() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        bytes.extend_from_slice(b"junk");
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("trailing bytes")), "{err:?}");
    }

    #[test]
    fn v3_trailing_garbage_is_rejected() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        bytes.push(0);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("trailing bytes")), "{err:?}");
    }

    #[test]
    fn concatenated_traces_are_rejected() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let copy = bytes.clone();
        bytes.extend_from_slice(&copy);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("trailing bytes")), "{err:?}");
    }

    #[test]
    fn hostile_record_count_does_not_preallocate() {
        // A 29-byte header claiming u64::MAX records: decode must fail
        // with a structured error after bounded allocation, not attempt
        // a multi-GB Vec::with_capacity.
        for version in [1u16, 2, 3] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&version.to_le_bytes());
            bytes.extend_from_slice(&2u16.to_le_bytes());
            bytes.extend_from_slice(b"hi");
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&u64::MAX.to_le_bytes());
            let err = Trace::read_from(bytes.as_slice()).unwrap_err();
            // v3 treats u64::MAX as "count unknown" and then finds no
            // end marker; v1/v2 hit EOF reading the first record.
            assert!(matches!(err, ReadTraceError::Io(_)), "v{version}: {err:?}");
        }
    }

    #[test]
    fn bit_flip_in_v2_payload_fails_the_checksum() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        // Flip one bit in the first record's dst_value — a field whose
        // every value decodes fine, so only the checksum can catch it.
        let dst_value_off = 4 + 2 + 2 + t.meta().name.len() + 4 + 8 + 8;
        bytes[dst_value_off] ^= 0x40;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::ChecksumMismatch { .. }), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn corrupt_v2_trailer_fails_the_checksum() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to_v2(&mut bytes).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn every_v3_payload_bit_flip_is_detected() {
        let t = sample();
        let mut clean = Vec::new();
        t.write_to(&mut clean).unwrap();
        // Flip one bit at every byte position in turn: the per-block
        // checksum (or a framing/field check) must reject each mutant —
        // a flip must never produce a successfully-decoded wrong trace.
        for pos in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x04;
            if let Ok(back) = Trace::read_from(bytes.as_slice()) {
                // The only byte a flip may go unnoticed in is the header
                // count sentinel interplay — which still must decode to
                // the same records or fail. Metadata bytes are not
                // checksummed in v3 (each block guards itself), so a
                // name/input flip yields different metadata but
                // identical records.
                assert_eq!(back.insts(), t.insts(), "undetected payload flip at byte {pos}");
            }
        }
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let t = sample();
        let dir = scratch_dir("atomic");
        let path = dir.join("atomic.bptr");
        t.save(&path).unwrap();
        t.save(&path).unwrap(); // overwrite is atomic too
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["atomic.bptr".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
