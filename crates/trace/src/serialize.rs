//! Binary trace serialization.
//!
//! The paper's offline-training methodology (§V-B) rests on "collecting
//! multiple long-duration traces of an application" into a trace library.
//! This module gives [`Trace`] a compact, versioned binary format so trace
//! collections can be written once and re-analyzed many times.
//!
//! Format (little-endian): magic `BPTR`, version u16, metadata (name
//! length u16 + UTF-8 bytes, input u32), record count u64, then one
//! fixed-layout record per instruction.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::isa::{BranchKind, InstClass, Reg};
use crate::record::{BranchInfo, RetiredInst};
use crate::trace::{Trace, TraceMeta};

const MAGIC: &[u8; 4] = b"BPTR";
const VERSION: u16 = 1;
const NO_REG: u8 = 0xFF;

/// Errors produced when decoding a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not begin with the trace magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// A field held an invalid value (register, class, or branch kind).
    Corrupt(&'static str),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => f.write_str("not a branch-lab trace (bad magic)"),
            ReadTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace: invalid {what}"),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Errors produced when encoding a trace.
#[derive(Debug)]
pub enum WriteTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The workload name does not fit the format's u16 length field; the
    /// trace cannot be written without silently altering its metadata.
    NameTooLong(usize),
}

impl fmt::Display for WriteTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteTraceError::Io(e) => write!(f, "i/o error writing trace: {e}"),
            WriteTraceError::NameTooLong(len) => write!(
                f,
                "workload name is {len} bytes; the BPTR format caps names at {} bytes",
                u16::MAX
            ),
        }
    }
}

impl Error for WriteTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WriteTraceError::Io(e) => Some(e),
            WriteTraceError::NameTooLong(_) => None,
        }
    }
}

impl From<io::Error> for WriteTraceError {
    fn from(e: io::Error) -> Self {
        WriteTraceError::Io(e)
    }
}

fn encode_reg(r: Option<Reg>) -> u8 {
    r.map_or(NO_REG, |r| r.index() as u8)
}

fn decode_reg(b: u8) -> Result<Option<Reg>, ReadTraceError> {
    match b {
        NO_REG => Ok(None),
        i if (i as usize) < crate::isa::NUM_REGS => Ok(Some(Reg::new(i))),
        _ => Err(ReadTraceError::Corrupt("register")),
    }
}

fn class_code(c: InstClass) -> u8 {
    match c {
        InstClass::Alu => 0,
        InstClass::Mul => 1,
        InstClass::Load => 2,
        InstClass::Store => 3,
        InstClass::Branch => 4,
        InstClass::Nop => 5,
    }
}

fn decode_class(b: u8) -> Result<InstClass, ReadTraceError> {
    Ok(match b {
        0 => InstClass::Alu,
        1 => InstClass::Mul,
        2 => InstClass::Load,
        3 => InstClass::Store,
        4 => InstClass::Branch,
        5 => InstClass::Nop,
        _ => return Err(ReadTraceError::Corrupt("instruction class")),
    })
}

fn kind_code(k: BranchKind) -> u8 {
    match k {
        BranchKind::Conditional => 1,
        BranchKind::DirectJump => 2,
        BranchKind::IndirectJump => 3,
        BranchKind::Call => 4,
        BranchKind::Return => 5,
    }
}

fn decode_kind(b: u8) -> Result<BranchKind, ReadTraceError> {
    Ok(match b {
        1 => BranchKind::Conditional,
        2 => BranchKind::DirectJump,
        3 => BranchKind::IndirectJump,
        4 => BranchKind::Call,
        5 => BranchKind::Return,
        _ => return Err(ReadTraceError::Corrupt("branch kind")),
    })
}

impl Trace {
    /// Serializes the trace to `writer` in the `BPTR` v1 format.
    ///
    /// A `&mut` reference can be passed for `writer` (e.g. `&mut file`).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer, and returns
    /// [`WriteTraceError::NameTooLong`] when the workload name exceeds the
    /// format's u16 length field (truncating it would make a `save`/`load`
    /// round trip silently alter [`TraceMeta`]).
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<(), WriteTraceError> {
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        let name = self.meta().name.as_bytes();
        let name_len =
            u16::try_from(name.len()).map_err(|_| WriteTraceError::NameTooLong(name.len()))?;
        writer.write_all(&name_len.to_le_bytes())?;
        writer.write_all(name)?;
        writer.write_all(&self.meta().input.to_le_bytes())?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        let mut buf = [0u8; 37];
        for inst in self.iter() {
            buf[0..8].copy_from_slice(&inst.ip.to_le_bytes());
            buf[8..16].copy_from_slice(&inst.dst_value.to_le_bytes());
            buf[16..24].copy_from_slice(&inst.mem_addr.to_le_bytes());
            buf[24] = class_code(inst.class);
            buf[25] = encode_reg(inst.src1);
            buf[26] = encode_reg(inst.src2);
            buf[27] = encode_reg(inst.dst);
            match inst.branch {
                Some(b) => {
                    buf[28] = kind_code(b.kind) | (u8::from(b.taken) << 3);
                    buf[29..37].copy_from_slice(&b.target.to_le_bytes());
                }
                None => {
                    buf[28] = 0;
                    buf[29..37].fill(0);
                }
            }
            writer.write_all(&buf)?;
        }
        Ok(())
    }

    /// Deserializes a trace previously written with [`Trace::write_to`].
    ///
    /// A `&mut` reference can be passed for `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, bad magic, unsupported
    /// version, or corrupt field values.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_trace::{RetiredInst, Trace, TraceMeta};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut t = Trace::new(TraceMeta::new("demo", 3));
    /// t.push(RetiredInst::cond_branch(0x40, true, 0x80, Some(1), None));
    /// let mut bytes = Vec::new();
    /// t.write_to(&mut bytes)?;
    /// let back = Trace::read_from(bytes.as_slice())?;
    /// assert_eq!(back.meta().name, "demo");
    /// assert_eq!(back.insts(), t.insts());
    /// # Ok(())
    /// # }
    /// ```
    pub fn read_from<R: Read>(mut reader: R) -> Result<Trace, ReadTraceError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTraceError::BadMagic);
        }
        let mut u16b = [0u8; 2];
        reader.read_exact(&mut u16b)?;
        let version = u16::from_le_bytes(u16b);
        if version != VERSION {
            return Err(ReadTraceError::UnsupportedVersion(version));
        }
        reader.read_exact(&mut u16b)?;
        let name_len = u16::from_le_bytes(u16b) as usize;
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| ReadTraceError::Corrupt("name"))?;
        let mut u32b = [0u8; 4];
        reader.read_exact(&mut u32b)?;
        let input = u32::from_le_bytes(u32b);
        let mut u64b = [0u8; 8];
        reader.read_exact(&mut u64b)?;
        let count = u64::from_le_bytes(u64b);

        let mut trace = Trace::with_capacity(
            TraceMeta::new(name, input),
            usize::try_from(count).unwrap_or(0).min(1 << 28),
        );
        let mut buf = [0u8; 37];
        for _ in 0..count {
            reader.read_exact(&mut buf)?;
            let branch = match buf[28] {
                0 => None,
                code => {
                    let kind = decode_kind(code & 0x7)?;
                    let taken = code & 0x8 != 0;
                    if !taken && kind != BranchKind::Conditional {
                        return Err(ReadTraceError::Corrupt("unconditional not-taken"));
                    }
                    Some(BranchInfo {
                        kind,
                        taken,
                        target: u64::from_le_bytes(buf[29..37].try_into().expect("8 bytes")),
                    })
                }
            };
            trace.push(RetiredInst {
                ip: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
                dst_value: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
                mem_addr: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
                class: decode_class(buf[24])?,
                src1: decode_reg(buf[25])?,
                src2: decode_reg(buf[26])?,
                dst: decode_reg(buf[27])?,
                branch,
            });
        }
        Ok(trace)
    }

    /// Writes the trace to a file at `path` (see [`Trace::write_to`]).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors, plus
    /// [`WriteTraceError::NameTooLong`] for oversized workload names.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), WriteTraceError> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Reads a trace from a file at `path` (see [`Trace::read_from`]).
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on open/read/decode failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace, ReadTraceError> {
        let file = std::fs::File::open(path)?;
        Trace::read_from(io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(TraceMeta::new("roundtrip", 7));
        t.push(RetiredInst::op(0x10, InstClass::Alu, Some(Reg::new(1)), None, Some(Reg::new(2)), 42));
        t.push(RetiredInst::mem(0x14, InstClass::Load, 0x800, Some(Reg::new(2)), None, Some(Reg::new(3)), 9));
        t.push(RetiredInst::cond_branch(0x18, false, 0x40, Some(3), Some(4)));
        t.push(RetiredInst::uncond_branch(0x1c, BranchKind::Call, 0x100));
        t.push(RetiredInst::uncond_branch(0x20, BranchKind::Return, 0x20));
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.meta(), t.meta());
        assert_eq!(back.insts(), t.insts());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Trace::read_from(&b"NOPE0000"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        bytes[4] = 99; // version low byte
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Io(_)));
    }

    #[test]
    fn corrupt_register_is_rejected() {
        let mut bytes = Vec::new();
        sample().write_to(&mut bytes).unwrap();
        // First record's src1 byte: header is 4+2+2+9+4+8 = 29 bytes
        // ("roundtrip" = 9 chars), record starts at 29, src1 at +25.
        bytes[29 + 25] = 200;
        let err = Trace::read_from(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Corrupt("register")));
    }

    #[test]
    fn file_save_load_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("bp_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bptr");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.insts(), t.insts());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn large_trace_roundtrip() {
        let mut t = Trace::new(TraceMeta::new("big", 0));
        for i in 0..10_000u64 {
            t.push(RetiredInst::cond_branch(0x40 + (i % 64) * 4, i % 3 == 0, 0x80, Some(1), None));
        }
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        assert_eq!(bytes.len(), 4 + 2 + 2 + 3 + 4 + 8 + 37 * 10_000);
        let back = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(back.len(), 10_000);
        assert_eq!(back.insts(), t.insts());
    }
}
