//! Streamed per-interval feature extraction for SimPoint-style sampling.
//!
//! The paper's workloads are 10B-instruction traces; clustering their
//! phases must not require materializing a `Vec<RetiredInst>`. This
//! module computes one [`IntervalProfile`] per fixed-length interval
//! (basic-block-vector counts plus branch/instruction totals) directly
//! off any [`TraceReader`](crate::TraceReader), chunk by chunk, so peak
//! memory is `intervals × dims` counters regardless of trace length.
//!
//! Interval boundaries follow the same rule as [`Slices`](crate::Slices):
//! full intervals first, and a ragged final interval is kept only when it
//! covers at least half the configured length. Together with the exact
//! integer accumulation in [`IntervalProfile::normalized_bbv`], this
//! makes streamed profiles bit-identical to `bp_analysis::bbv` computed
//! over materialized slices — the parity the property tests pin.

use crate::record::RetiredInst;
use crate::serialize::ReadTraceError;
use crate::TraceReader;

/// The multiplicative hash spreading a branch IP into a BBV bucket.
///
/// This is the single definition of the bucket function; the analysis
/// layer's `bbv()` and the streamed extractor below both call it, so the
/// two feature paths cannot drift apart.
#[must_use]
pub fn bbv_bucket(ip: u64, dims: usize) -> usize {
    let h = (ip >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize % dims
}

/// Per-interval features: BBV bucket counts plus branch and instruction
/// totals, accumulated as exact integers.
///
/// Counts stay `u64` so profiles of any realistic interval length are
/// exact; [`IntervalProfile::normalized_bbv`] divides once at the end,
/// which (for counts below 2^53) is bit-identical to the
/// increment-then-normalize float path used by in-memory BBVs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalProfile {
    /// Conditional-branch count per BBV bucket.
    pub bbv: Vec<u64>,
    /// Dynamic conditional branches in the interval.
    pub branches: u64,
    /// Instructions in the interval (equals the interval length except
    /// for a kept ragged tail).
    pub insts: u64,
}

impl IntervalProfile {
    fn new(dims: usize) -> Self {
        IntervalProfile { bbv: vec![0; dims], branches: 0, insts: 0 }
    }

    /// The normalized branch-frequency vector of this interval — each
    /// bucket's share of the interval's conditional branches (all zeros
    /// for a branch-free interval).
    #[must_use]
    pub fn normalized_bbv(&self) -> Vec<f64> {
        let total = self.branches as f64;
        self.bbv
            .iter()
            .map(|&c| {
                // Exactly `c as f64 / total` == repeated `+= 1.0` then
                // `/= total`: both operands are exact integers in f64.
                if self.branches == 0 { 0.0 } else { c as f64 / total }
            })
            .collect()
    }
}

/// Streams `reader` to exhaustion, computing one [`IntervalProfile`] per
/// `interval_len`-instruction window with `dims` BBV buckets.
///
/// Chunk boundaries carry no meaning: any chunking of the same record
/// sequence produces identical profiles. A trailing partial interval is
/// kept only if it covers at least half of `interval_len`, matching
/// [`Slices`](crate::Slices) so per-interval statistics stay comparable.
///
/// # Errors
///
/// Propagates any [`ReadTraceError`] from the underlying stream.
///
/// # Panics
///
/// Panics if `interval_len` or `dims` is zero.
pub fn profile_intervals<R: TraceReader>(
    mut reader: R,
    interval_len: usize,
    dims: usize,
) -> Result<Vec<IntervalProfile>, ReadTraceError> {
    assert!(interval_len > 0, "interval length must be positive");
    assert!(dims > 0, "dims must be positive");
    let mut profiles = Vec::new();
    let mut current = IntervalProfile::new(dims);
    while let Some(chunk) = reader.next_chunk()? {
        let mut rest: &[RetiredInst] = chunk;
        while !rest.is_empty() {
            let room = interval_len - current.insts as usize;
            let (head, tail) = rest.split_at(room.min(rest.len()));
            for inst in head {
                if inst.is_conditional_branch() {
                    current.bbv[bbv_bucket(inst.ip, dims)] += 1;
                    current.branches += 1;
                }
            }
            current.insts += head.len() as u64;
            if current.insts as usize == interval_len {
                profiles.push(std::mem::replace(&mut current, IntervalProfile::new(dims)));
            }
            rest = tail;
        }
    }
    // Ragged tail: same keep-rule as `Slices`.
    if current.insts > 0 && current.insts as usize * 2 >= interval_len {
        profiles.push(current);
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Trace, TraceMeta};

    fn branchy(len: usize) -> Trace {
        let mut t = Trace::new(TraceMeta::new("interval", 0));
        for i in 0..len {
            t.push(RetiredInst::cond_branch(
                0x40 + (i as u64 % 53) * 4,
                i % 3 != 0,
                0x800,
                Some(1),
                None,
            ));
        }
        t
    }

    #[test]
    fn profiles_follow_slice_tail_rule() {
        let t = branchy(130);
        // 130 insts at interval 50: two full + one kept 30-inst tail.
        let p = profile_intervals(t.reader(), 50, 8).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].insts, 50);
        assert_eq!(p[2].insts, 30);
        // 120 insts at interval 50: the 20-inst tail is dropped.
        let p = profile_intervals(branchy(120).reader(), 50, 8).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn branch_totals_match_bucket_sums() {
        let t = branchy(500);
        for p in profile_intervals(t.reader(), 100, 16).unwrap() {
            assert_eq!(p.bbv.iter().sum::<u64>(), p.branches);
            assert_eq!(p.branches, p.insts); // every record is a branch
        }
    }

    #[test]
    fn normalized_bbv_sums_to_one() {
        let t = branchy(200);
        let p = profile_intervals(t.reader(), 200, 32).unwrap();
        let sum: f64 = p[0].normalized_bbv().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_normalizes_to_zero() {
        let mut t = Trace::new(TraceMeta::new("quiet", 0));
        for i in 0..64 {
            t.push(RetiredInst::op(0x1000 + i * 4, crate::InstClass::Alu, None, None, None, 7));
        }
        let p = profile_intervals(t.reader(), 64, 8).unwrap();
        assert_eq!(p[0].branches, 0);
        assert!(p[0].normalized_bbv().iter().all(|&x| x == 0.0));
    }
}
