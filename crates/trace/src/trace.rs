//! In-memory traces of retired instructions.

use std::fmt;
use std::ops::Index;

use crate::isa::BranchKind;
use crate::record::RetiredInst;
use crate::slice::{SliceConfig, Slices};

/// Metadata describing how a trace was produced.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceMeta {
    /// Human-readable workload name, e.g. `"641.leela_s"`.
    pub name: String,
    /// Application-input index (the paper traces each benchmark over
    /// multiple inputs; see Table I's "# App. Inputs").
    pub input: u32,
}

impl TraceMeta {
    /// Creates metadata for a named workload and input index.
    #[must_use]
    pub fn new(name: impl Into<String>, input: u32) -> Self {
        TraceMeta {
            name: name.into(),
            input,
        }
    }
}

impl fmt::Display for TraceMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name, self.input)
    }
}

/// An in-memory sequence of retired instructions plus metadata.
///
/// # Examples
///
/// ```
/// use bp_trace::{RetiredInst, SliceConfig, Trace, TraceMeta};
///
/// let mut t = Trace::new(TraceMeta::new("demo", 0));
/// for i in 0..10 {
///     t.push(RetiredInst::cond_branch(0x40 + i, i % 2 == 0, 0x100, None, None));
/// }
/// assert_eq!(t.len(), 10);
/// assert_eq!(t.slices(SliceConfig::new(4)).count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    meta: TraceMeta,
    insts: Vec<RetiredInst>,
}

impl Default for TraceMeta {
    fn default() -> Self {
        TraceMeta::new("unnamed", 0)
    }
}

impl Trace {
    /// Creates an empty trace with the given metadata.
    #[must_use]
    pub fn new(meta: TraceMeta) -> Self {
        Trace {
            meta,
            insts: Vec::new(),
        }
    }

    /// Creates an empty trace with capacity reserved for `n` instructions.
    #[must_use]
    pub fn with_capacity(meta: TraceMeta, n: usize) -> Self {
        Trace {
            meta,
            insts: Vec::with_capacity(n),
        }
    }

    /// The trace metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Appends a retired instruction.
    pub fn push(&mut self, inst: RetiredInst) {
        self.insts.push(inst);
    }

    /// Number of retired instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the trace contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All retired instructions, in retirement order.
    #[must_use]
    pub fn insts(&self) -> &[RetiredInst] {
        &self.insts
    }

    /// Iterates over retired instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, RetiredInst> {
        self.insts.iter()
    }

    /// Iterates over conditional branches with their trace positions.
    pub fn conditional_branches(&self) -> ConditionalBranches<'_> {
        ConditionalBranches {
            inner: self.insts.iter().enumerate(),
        }
    }

    /// Iterates over fixed-length instruction slices (the paper's
    /// 30M-instruction slices, scaled by [`SliceConfig`]). A trailing
    /// partial slice shorter than half the slice length is dropped so
    /// per-slice statistics stay comparable.
    #[must_use]
    pub fn slices(&self, config: SliceConfig) -> Slices<'_> {
        Slices::new(&self.insts, config)
    }

    /// Count of dynamic conditional branches.
    #[must_use]
    pub fn conditional_branch_count(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| i.is_conditional_branch())
            .count()
    }
}

impl Index<usize> for Trace {
    type Output = RetiredInst;

    fn index(&self, index: usize) -> &RetiredInst {
        &self.insts[index]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a RetiredInst;
    type IntoIter = std::slice::Iter<'a, RetiredInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl Extend<RetiredInst> for Trace {
    fn extend<T: IntoIterator<Item = RetiredInst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

/// A conditional branch observed in a trace, with its position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchView<'a> {
    /// Index of the branch within the trace's instruction sequence.
    pub index: usize,
    /// Static branch IP.
    pub ip: u64,
    /// Resolved direction.
    pub taken: bool,
    /// Taken target.
    pub target: u64,
    /// The full underlying record.
    pub inst: &'a RetiredInst,
}

/// Iterator over conditional branches of a trace; see
/// [`Trace::conditional_branches`].
#[derive(Clone, Debug)]
pub struct ConditionalBranches<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, RetiredInst>>,
}

impl<'a> Iterator for ConditionalBranches<'a> {
    type Item = BranchView<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        for (index, inst) in self.inner.by_ref() {
            if let Some(info) = inst.branch {
                if info.kind == BranchKind::Conditional {
                    return Some(BranchView {
                        index,
                        ip: inst.ip,
                        taken: info.taken,
                        target: info.target,
                        inst,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::InstClass;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(TraceMeta::new("t", 1));
        t.push(RetiredInst::op(0x1, InstClass::Alu, None, None, None, 0));
        t.push(RetiredInst::cond_branch(0x2, true, 0x10, Some(1), None));
        t.push(RetiredInst::uncond_branch(0x3, BranchKind::Call, 0x100));
        t.push(RetiredInst::cond_branch(0x4, false, 0x20, None, None));
        t
    }

    #[test]
    fn conditional_branches_filters_and_positions() {
        let t = sample_trace();
        let brs: Vec<_> = t.conditional_branches().collect();
        assert_eq!(brs.len(), 2);
        assert_eq!(brs[0].index, 1);
        assert_eq!(brs[0].ip, 0x2);
        assert!(brs[0].taken);
        assert_eq!(brs[1].index, 3);
        assert!(!brs[1].taken);
        assert_eq!(t.conditional_branch_count(), 2);
    }

    #[test]
    fn extend_and_index() {
        let mut t = Trace::new(TraceMeta::default());
        t.extend(sample_trace().iter().copied());
        assert_eq!(t.len(), 4);
        assert_eq!(t[1].ip, 0x2);
        assert_eq!(t.meta().to_string(), "unnamed#0");
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new(TraceMeta::default());
        assert!(t.is_empty());
        assert_eq!(t.conditional_branches().count(), 0);
        assert_eq!(t.slices(SliceConfig::new(100)).count(), 0);
    }
}
