//! Trace substrate for `branch-lab`.
//!
//! This crate defines the minimal RISC-like instruction set used by the
//! synthetic workload interpreter, the retired-instruction record format
//! that every other crate consumes, in-memory [`Trace`] containers, and
//! slice iteration matching the paper's 30M-instruction slicing methodology
//! (scaled down via [`SliceConfig`]).
//!
//! The record format intentionally carries *more* ground truth than a
//! hardware trace would: source/destination registers, the value written by
//! each instruction, and memory addresses. The paper's §IV-A dependency
//! analysis and Fig. 10 register-value study require exactly this
//! information.
//!
//! # Examples
//!
//! ```
//! use bp_trace::{InstClass, RetiredInst, Trace, TraceMeta};
//!
//! let mut trace = Trace::new(TraceMeta::new("demo", 0));
//! trace.push(RetiredInst::cond_branch(0x40, true, 0x80, Some(1), Some(2)));
//! assert_eq!(trace.conditional_branches().count(), 1);
//! assert_eq!(trace[0].class, InstClass::Branch);
//! ```

#![warn(missing_docs)]

mod codec_v3;
mod interval;
mod isa;
mod reader;
mod record;
mod serialize;
mod slice;
mod trace;

pub use codec_v3::{TraceWriter, BLOCK_RECORDS, MAX_BLOCK_PAYLOAD};
pub use interval::{bbv_bucket, profile_intervals, IntervalProfile};
pub use isa::{BranchKind, Cond, InstClass, Reg, NUM_REGS};
pub use reader::{BptrReader, SharedReader, SliceReader, TraceReader};
pub use record::{BranchInfo, RetiredInst};
pub use serialize::{ReadTraceError, WriteTraceError};
pub use slice::{SliceConfig, Slices};
pub use trace::{BranchView, ConditionalBranches, Trace, TraceMeta};
