//! Decode robustness against a checked-in corpus of damaged `BPTR` files.
//!
//! Every file under `tests/corpus/` is a deliberately broken trace —
//! truncated, bit-flipped, or carrying hostile header/frame values — in
//! each of the three format versions. Decoding any of them must yield a
//! structured [`ReadTraceError`]: never a panic, never a success, and
//! never an allocation anywhere near what a hostile length field claims.
//!
//! The corpus is generated deterministically by this file. To regenerate
//! after a deliberate format change:
//!
//! ```text
//! BRANCH_LAB_UPDATE_GOLDEN=1 cargo test -p bp-trace --test decode_robustness
//! ```

use std::path::PathBuf;

use bp_trace::{BranchKind, InstClass, ReadTraceError, Reg, RetiredInst, Trace, TraceMeta};

/// Records in the corpus base trace; small enough that the fat v1/v2
/// mutants stay a few tens of KB in the repository.
const BASE_RECORDS: u64 = 600;

/// Workload name baked into every corpus file; offsets below depend on
/// its length.
const BASE_NAME: &str = "corpus";

/// Header length for `BASE_NAME`: magic + version + name_len + name +
/// input + count.
const HEADER_LEN: usize = 4 + 2 + 2 + BASE_NAME.len() + 4 + 8;
const COUNT_OFF: usize = HEADER_LEN - 8;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic mixed base trace every mutant is derived from.
fn base_trace() -> Trace {
    let mut t = Trace::new(TraceMeta::new(BASE_NAME, 2));
    let mut state = 0x9e37_79b9u64;
    for i in 0..BASE_RECORDS {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let ip = 0x1000 + (i % 41) * 4;
        match state % 5 {
            0 => t.push(RetiredInst::cond_branch(ip, state & 8 == 0, ip + 64, Some(1), None)),
            1 => t.push(RetiredInst::mem(
                ip,
                InstClass::Load,
                0x8000 + (state >> 7) % 512,
                None,
                None,
                Some(Reg::new((state % 16) as u8)),
                state >> 32,
            )),
            2 => t.push(RetiredInst::uncond_branch(ip, BranchKind::Call, ip + 0x200)),
            _ => t.push(RetiredInst::op(
                ip,
                InstClass::Alu,
                Some(Reg::new((state % 16) as u8)),
                None,
                Some(Reg::new(((state >> 4) % 16) as u8)),
                state >> 40,
            )),
        }
    }
    t
}

fn v3_bytes() -> Vec<u8> {
    let mut b = Vec::new();
    base_trace().write_to(&mut b).expect("v3 encode");
    b
}

fn v2_bytes() -> Vec<u8> {
    let mut b = Vec::new();
    base_trace().write_to_v2(&mut b).expect("v2 encode");
    b
}

fn v1_bytes() -> Vec<u8> {
    let mut b = v2_bytes();
    b.truncate(b.len() - 8); // drop the checksum trailer
    b[4..6].copy_from_slice(&1u16.to_le_bytes());
    b
}

/// Patches the header record count to `lie`.
fn with_count(mut b: Vec<u8>, lie: u64) -> Vec<u8> {
    b[COUNT_OFF..COUNT_OFF + 8].copy_from_slice(&lie.to_le_bytes());
    b
}

/// Rewrites the first v3 block's payload byte at `off` to `val` and fixes
/// the block trailer so the *field* check (not the checksum) is what
/// rejects it.
fn v3_patch_first_payload(mut b: Vec<u8>, off: usize, val: u8) -> Vec<u8> {
    let frame_off = HEADER_LEN;
    let payload_len =
        u32::from_le_bytes(b[frame_off + 4..frame_off + 8].try_into().unwrap()) as usize;
    let payload_off = frame_off + 8;
    b[payload_off + off] = val;
    let digest = fnv1a64(&b[frame_off..payload_off + payload_len]);
    b[payload_off + payload_len..payload_off + payload_len + 8]
        .copy_from_slice(&digest.to_le_bytes());
    b
}

/// The full corpus: file name → deliberately damaged bytes.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let v1 = v1_bytes();
    let v2 = v2_bytes();
    let v3 = v3_bytes();
    let v3_first_payload_len = {
        let off = HEADER_LEN + 4;
        u32::from_le_bytes(v3[off..off + 4].try_into().unwrap()) as usize
    };

    let mut files: Vec<(&'static str, Vec<u8>)> = Vec::new();

    // --- v1: fat records, no checksum ---
    files.push(("v1-truncated-mid-record.bptr", v1[..HEADER_LEN + 37 * 100 + 11].to_vec()));
    files.push(("v1-hostile-count.bptr", with_count(v1.clone(), u64::MAX)));
    files.push(("v1-trailing-garbage.bptr", {
        let mut b = v1.clone();
        b.extend_from_slice(b"stowaway");
        b
    }));
    files.push(("v1-bad-register.bptr", {
        let mut b = v1.clone();
        b[HEADER_LEN + 25] = 200; // first record's src1
        b
    }));

    // --- v2: fat records + whole-file checksum trailer ---
    files.push(("v2-truncated-at-trailer.bptr", v2[..v2.len() - 8].to_vec()));
    files.push(("v2-bitflip-payload.bptr", {
        let mut b = v2.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x20;
        b
    }));
    files.push(("v2-bitflip-trailer.bptr", {
        let mut b = v2.clone();
        let last = b.len() - 1;
        b[last] ^= 0xFF;
        b
    }));
    files.push(("v2-hostile-count.bptr", with_count(v2.clone(), u64::MAX / 37)));
    files.push(("v2-trailing-garbage.bptr", {
        let mut b = v2.clone();
        b.push(0);
        b
    }));

    // --- v3: blocked codec, per-block trailers ---
    files.push(("v3-truncated-mid-block.bptr", v3[..HEADER_LEN + 8 + 40].to_vec()));
    files.push((
        "v3-missing-end-marker.bptr",
        v3[..HEADER_LEN + 8 + v3_first_payload_len + 8].to_vec(),
    ));
    files.push(("v3-bitflip-payload.bptr", {
        let mut b = v3.clone();
        b[HEADER_LEN + 8 + 17] ^= 0x08;
        b
    }));
    files.push(("v3-bitflip-frame.bptr", {
        let mut b = v3.clone();
        b[HEADER_LEN + 1] ^= 0x01; // n_records, caught by the block trailer
        b
    }));
    files.push(("v3-hostile-count.bptr", with_count(v3.clone(), 7)));
    files.push(("v3-hostile-nrecords.bptr", {
        let mut b = v3.clone();
        b[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        b
    }));
    files.push(("v3-hostile-payload-len.bptr", {
        let mut b = v3.clone();
        b[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        b
    }));
    // First payload byte is the dictionary-size varint (< 128 entries).
    files.push(("v3-zero-dict.bptr", v3_patch_first_payload(v3.clone(), 0, 0)));
    files.push(("v3-trailing-garbage.bptr", {
        let mut b = v3.clone();
        b.push(0xAA);
        b
    }));

    // --- header-level hostility, version-independent ---
    files.push(("bad-magic.bptr", {
        let mut b = v3.clone();
        b[0] = b'X';
        b
    }));
    files.push(("future-version.bptr", {
        let mut b = v3.clone();
        b[4..6].copy_from_slice(&9u16.to_le_bytes());
        b
    }));
    files.push(("nonutf8-name.bptr", {
        let mut b = v3.clone();
        b[8] = 0xFF; // first name byte
        b
    }));
    files.push(("name-len-overflow.bptr", {
        let mut b = v3[..16].to_vec();
        b[6..8].copy_from_slice(&u16::MAX.to_le_bytes());
        b
    }));
    files.push(("empty-file.bptr", Vec::new()));
    files.push(("header-only.bptr", v3[..10].to_vec()));

    files
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Peak resident set size of this process, from `/proc/self/status`
/// (`VmHWM`). Returns 0 where unavailable — the over-allocation guard
/// then passes trivially rather than failing on exotic platforms.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The corpus on disk must match what this file generates — or be
/// rewritten when `BRANCH_LAB_UPDATE_GOLDEN=1`, mirroring the golden
/// fixture workflow.
#[test]
fn corpus_files_are_in_sync() {
    let dir = corpus_dir();
    let update = std::env::var("BRANCH_LAB_UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    if update {
        std::fs::create_dir_all(&dir).expect("create corpus dir");
    }
    for (name, bytes) in corpus() {
        let path = dir.join(name);
        if update {
            std::fs::write(&path, &bytes).expect("write corpus file");
            continue;
        }
        let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing corpus file {name}: {e}; regenerate with \
                 BRANCH_LAB_UPDATE_GOLDEN=1 cargo test -p bp-trace --test decode_robustness"
            )
        });
        assert_eq!(
            on_disk, bytes,
            "corpus file {name} out of sync; regenerate with BRANCH_LAB_UPDATE_GOLDEN=1"
        );
    }
}

/// Every corpus file decodes to a structured error — no panic, no
/// success, and no allocation remotely sized by its hostile length
/// fields (guarded via the process's peak-RSS high-water mark).
#[test]
fn every_corpus_file_fails_structurally() {
    let dir = corpus_dir();
    let before_kb = peak_rss_kb();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir (regenerate if missing)") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "bptr") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let err = match Trace::load(&path) {
            Err(e) => e,
            Ok(t) => panic!("{name}: decoded successfully ({} records)", t.len()),
        };
        // Structured, displayable, classified.
        let msg = err.to_string();
        assert!(!msg.is_empty(), "{name}: empty error message");
        match err {
            ReadTraceError::Io(_)
            | ReadTraceError::BadMagic
            | ReadTraceError::UnsupportedVersion(_)
            | ReadTraceError::Corrupt(_)
            | ReadTraceError::ChecksumMismatch { .. } => {}
        }
    }
    assert_eq!(seen, corpus().len(), "unexpected corpus population in {}", dir.display());
    // Hostile counts in the corpus claim up to u64::MAX records (would be
    // hundreds of GB materialized). Decode must stay within a paranoid
    // constant of the trace-free baseline.
    let after_kb = peak_rss_kb();
    assert!(
        after_kb - before_kb < 256 * 1024,
        "decoding the corpus grew peak RSS by {} kB — hostile length honored?",
        after_kb - before_kb
    );
}

/// The mutants must be damaged versions of a loadable base: the clean
/// encodings themselves round-trip.
#[test]
fn base_encodings_are_loadable() {
    let t = base_trace();
    for bytes in [v1_bytes(), v2_bytes(), v3_bytes()] {
        let back = Trace::read_from(bytes.as_slice()).expect("clean base must load");
        assert_eq!(back.insts(), t.insts());
    }
}
