//! `bp-perf` — the pinned replay-performance suite and regression gate.
//!
//! Every figure in `EXPERIMENTS.md` re-drives millions of trace records
//! through TAGE-SC-L and the scoreboard, so replay throughput is the
//! resource every study spends. This binary measures it reproducibly:
//!
//! * `predictor/tage-sc-l-{8,64}kb` — predictor-only replay
//!   (predict+update per conditional branch, no pipeline);
//! * `trace/{encode,decode}-v3` — BPTR v3 codec throughput on the pinned
//!   SPECint-like trace (streaming block writer, block-wise reader);
//! * `pipeline/scoreboard` — scoreboard-only replay over a precomputed
//!   misprediction stream;
//! * `end_to_end/tage-sc-l-8kb[-lcf]` — the full study loop
//!   (`bp_pipeline::run`): predictor replay + timing simulation, on a
//!   SPECint-like and an LCF-like trace;
//! * `sweep/storage-8pt` — one workload of the Fig. 7 storage sweep on
//!   the single-pass engine (`sweep_flags` + one prepared `SweepReplay`
//!   driving all eight lanes at every pipeline scale), with
//!   `sweep/storage-8pt-per-config` keeping the per-config shape it
//!   replaced so the speedup stays pinned;
//! * `sweep/hetero-grid` — the heterogeneous grid study's inner loop:
//!   all sixteen `PredictorSpec::hetero_grid` lanes trained in one
//!   lockstep walk, then replayed at every pipeline scale (96 sims) from
//!   one prepared trace, with `sweep/hetero-grid-per-config` keeping the
//!   solo-predictor/scalar-replay shape for the speedup ratio;
//! * `sweep/interleave-2trace` — pure replay throughput: two prepared
//!   traces' 16-lane chunk cursors round-robined through
//!   `simulate_interleaved` (flags and preparation outside the timed
//!   region);
//! * `sample/cluster` — the sampled-replay planning pass: streamed
//!   per-interval BBV profiling plus SimPoint medoid selection;
//! * `sample/replay-weighted` — the sampled-replay execution pass:
//!   warmed segment preparation, the functional predictor-warming walk,
//!   and the weighted reconstruction, from a fixed plan.
//!
//! Default mode records `BENCH_<date>.json` in the current directory
//! (schema `bp-perf/v1`, see `bp_bench::perf`); `--check-baseline`
//! compares against a checked-in report instead and exits nonzero on a
//! regression beyond the threshold. `PERFORMANCE.md` documents the cost
//! model behind the numbers and the baseline-refresh workflow.
//!
//! ```console
//! $ cargo run --release -p bp-bench --bin bp-perf            # record
//! $ cargo run --release -p bp-bench --bin bp-perf -- \
//!       --check-baseline --threshold 0.4                     # gate
//! ```
//!
//! Traces honour `BRANCH_LAB_TRACE_DIR`, so CI reuses its shared cache.

use std::process::ExitCode;

use bp_bench::perf::{self, PerfReport};
use bp_pipeline::{simulate, simulate_interleaved, InterleaveGroup, PipelineConfig, SweepReplay};
use bp_predictors::{
    misprediction_flags, sweep_flags, DirectionPredictor, PredictorSpec, TageScL, TageSclConfig,
};
use bp_trace::{BptrReader, TraceReader};
use bp_workloads::{lcf_suite, specint_suite};

/// Pinned trace length: large enough that per-branch costs dominate
/// setup, small enough that a full suite run stays in seconds.
const TRACE_LEN: usize = 1_000_000;

struct Options {
    samples: u32,
    warmup: u32,
    check_baseline: bool,
    baseline: Option<String>,
    threshold: f64,
    out: Option<String>,
    date: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bp-perf [--samples N] [--warmup N] [--out FILE] [--date YYYY-MM-DD]\n\
         \x20              [--check-baseline] [--baseline FILE] [--threshold FRAC]\n\
         \n\
         Default: run the pinned suite and write BENCH_<date>.json.\n\
         --check-baseline: compare against the newest BENCH_*.json (or --baseline FILE)\n\
         and exit nonzero if any benchmark is more than FRAC slower (default 0.4)."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        samples: 7,
        warmup: 1,
        check_baseline: false,
        baseline: None,
        threshold: 0.4,
        out: None,
        date: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--samples" => opts.samples = value("--samples").parse().unwrap_or_else(|_| usage()),
            "--warmup" => opts.warmup = value("--warmup").parse().unwrap_or_else(|_| usage()),
            "--check-baseline" => opts.check_baseline = true,
            "--baseline" => opts.baseline = Some(value("--baseline")),
            "--threshold" => {
                opts.threshold = value("--threshold").parse().unwrap_or_else(|_| usage());
            }
            "--out" => opts.out = Some(value("--out")),
            "--date" => opts.date = Some(value("--date")),
            _ => usage(),
        }
    }
    opts
}

/// The newest (lexically greatest, i.e. latest-dated) `BENCH_*.json` in
/// the current directory.
fn default_baseline() -> Option<String> {
    let mut candidates: Vec<String> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    candidates.sort();
    candidates.pop()
}

fn run_suite(opts: &Options) -> PerfReport {
    let (samples, warmup) = (opts.samples, opts.warmup);
    let cfg = PipelineConfig::skylake();

    // SPECint-like branchy workload (leela-like) and a memory-bound
    // LCF-like workload: the two ends of the replay cost spectrum.
    let spec_trace = specint_suite()[6].cached_trace(0, TRACE_LEN);
    let lcf_trace = lcf_suite()[1].cached_trace(0, TRACE_LEN);
    let stream: Vec<(u64, bool)> = spec_trace
        .conditional_branches()
        .map(|b| (b.ip, b.taken))
        .collect();
    let spec_branches = spec_trace.conditional_branch_count() as u64;
    let lcf_branches = lcf_trace.conditional_branch_count() as u64;
    // A fixed misprediction stream for the scoreboard-only benchmark.
    let flags = misprediction_flags(&mut TageScL::kb8(), &spec_trace);

    let mut measurements = Vec::new();
    let nbr = stream.len() as u64;
    for kb in [8usize, 64] {
        measurements.push(perf::measure(
            &format!("predictor/tage-sc-l-{kb}kb"),
            nbr,
            nbr,
            warmup,
            samples,
            || {
                let mut p = TageScL::new(TageSclConfig::storage_kb(kb));
                let mut wrong = 0u64;
                for &(ip, taken) in &stream {
                    let pred = bp_predictors::Predictor::predict(&mut p, ip);
                    bp_predictors::Predictor::update(&mut p, ip, taken, pred);
                    wrong += u64::from(pred != taken);
                }
                wrong
            },
        ));
    }
    // v3 codec throughput: encode the pinned trace to memory, then
    // stream-decode it back block-by-block through the same
    // `TraceReader` path every disk-backed study drains. These pin the
    // decode cost model in PERFORMANCE.md.
    let mut v3_bytes = Vec::new();
    spec_trace.write_to(&mut v3_bytes).expect("v3 encode");
    measurements.push(perf::measure(
        "trace/encode-v3",
        spec_trace.len() as u64,
        spec_branches,
        warmup,
        samples,
        || {
            let mut out = Vec::with_capacity(v3_bytes.len());
            spec_trace.write_to(&mut out).expect("v3 encode");
            out.len() as u64
        },
    ));
    measurements.push(perf::measure(
        "trace/decode-v3",
        spec_trace.len() as u64,
        spec_branches,
        warmup,
        samples,
        || {
            let mut reader = BptrReader::new(v3_bytes.as_slice()).expect("v3 header");
            let mut n = 0u64;
            while let Some(chunk) = reader.next_chunk().expect("v3 decode") {
                n += chunk.len() as u64;
            }
            n
        },
    ));
    measurements.push(perf::measure(
        "pipeline/scoreboard",
        spec_trace.len() as u64,
        spec_branches,
        warmup,
        samples,
        || simulate(&spec_trace, &flags, &cfg).cycles,
    ));
    measurements.push(perf::measure(
        "end_to_end/tage-sc-l-8kb",
        spec_trace.len() as u64,
        spec_branches,
        warmup,
        samples,
        || bp_pipeline::run(&spec_trace, &mut TageScL::kb8(), &cfg).cycles,
    ));
    measurements.push(perf::measure(
        "end_to_end/tage-sc-l-8kb-lcf",
        lcf_trace.len() as u64,
        lcf_branches,
        warmup,
        samples,
        || bp_pipeline::run(&lcf_trace, &mut TageScL::kb8(), &cfg).cycles,
    ));

    // One workload's share of the Fig. 7 storage sweep, on the LCF trace
    // the study actually runs: six TAGE-SC-L storage points plus the
    // 8KB-baseline and perfect lanes, replayed at every pipeline scale.
    // The first entry is the production path (one lockstep predictor
    // pass, one prepared `SweepReplay` stepping all eight lanes); the
    // second keeps the per-config shape it replaced (one predictor pass
    // and one scalar replay per lane), so the single-pass speedup is
    // itself baseline-gated. Both count the same logical records, so
    // their rec/s ratio is the speedup.
    let sweep_sims =
        (TageSclConfig::STORAGE_POINTS_KB.len() as u64 + 2) * PipelineConfig::SCALES.len() as u64;
    measurements.push(perf::measure(
        "sweep/storage-8pt",
        lcf_trace.len() as u64 * sweep_sims,
        lcf_branches * sweep_sims,
        warmup,
        samples,
        || {
            let mut predictors: Vec<Box<dyn DirectionPredictor>> = TageSclConfig::STORAGE_POINTS_KB
                .iter()
                .map(|&kb| {
                    Box::new(TageScL::new(TageSclConfig::storage_kb(kb)))
                        as Box<dyn DirectionPredictor>
                })
                .collect();
            let per_storage = sweep_flags(&mut predictors, &lcf_trace);
            let perfect = vec![false; lcf_trace.conditional_branch_count()];
            let mut lanes: Vec<&[bool]> = Vec::with_capacity(per_storage.len() + 2);
            lanes.push(&per_storage[0]);
            lanes.push(&perfect);
            lanes.extend(per_storage.iter().map(Vec::as_slice));
            let sweep = SweepReplay::new(&lcf_trace, &cfg);
            let mut cycles = 0u64;
            for scale in PipelineConfig::SCALES {
                for stats in sweep.simulate_many(&lanes, &cfg.scaled(scale)) {
                    cycles += stats.cycles;
                }
            }
            cycles
        },
    ));
    measurements.push(perf::measure(
        "sweep/storage-8pt-per-config",
        lcf_trace.len() as u64 * sweep_sims,
        lcf_branches * sweep_sims,
        warmup,
        samples,
        || {
            let per_storage: Vec<Vec<bool>> = TageSclConfig::STORAGE_POINTS_KB
                .iter()
                .map(|&kb| {
                    misprediction_flags(&mut TageScL::new(TageSclConfig::storage_kb(kb)), &lcf_trace)
                })
                .collect();
            let perfect = vec![false; lcf_trace.conditional_branch_count()];
            let mut lanes: Vec<&[bool]> = Vec::with_capacity(per_storage.len() + 2);
            lanes.push(&per_storage[0]);
            lanes.push(&perfect);
            lanes.extend(per_storage.iter().map(Vec::as_slice));
            let mut cycles = 0u64;
            for scale in PipelineConfig::SCALES {
                let scaled = cfg.scaled(scale);
                for lane in &lanes {
                    cycles += simulate(&lcf_trace, lane, &scaled).cycles;
                }
            }
            cycles
        },
    ));

    // The heterogeneous grid's inner loop: sixteen mixed predictor specs
    // (TAGE-SC-L storage points, ablations, classical baselines, bounds)
    // trained as lanes in one lockstep walk, then one prepared trace
    // replayed as a 16-wide lane chunk at every pipeline scale — 96
    // simulations from two passes over the trace. The per-config twin
    // keeps the shape this replaced (one solo training walk per spec,
    // one scalar replay per cell) so the grid speedup is baseline-gated.
    let grid_specs = PredictorSpec::hetero_grid();
    let grid_sims = grid_specs.len() as u64 * PipelineConfig::SCALES.len() as u64;
    measurements.push(perf::measure(
        "sweep/hetero-grid",
        lcf_trace.len() as u64 * grid_sims,
        lcf_branches * grid_sims,
        warmup,
        samples,
        || {
            let mut predictors = PredictorSpec::build_all(&grid_specs);
            let per_spec = sweep_flags(&mut predictors, &lcf_trace);
            let lanes: Vec<&[bool]> = per_spec.iter().map(Vec::as_slice).collect();
            let sweep = SweepReplay::new(&lcf_trace, &cfg);
            let mut cycles = 0u64;
            for scale in PipelineConfig::SCALES {
                for stats in sweep.simulate_many(&lanes, &cfg.scaled(scale)) {
                    cycles += stats.cycles;
                }
            }
            cycles
        },
    ));
    measurements.push(perf::measure(
        "sweep/hetero-grid-per-config",
        lcf_trace.len() as u64 * grid_sims,
        lcf_branches * grid_sims,
        warmup,
        samples,
        || {
            let per_spec: Vec<Vec<bool>> = grid_specs
                .iter()
                .map(|s| misprediction_flags(s.build().as_mut(), &lcf_trace))
                .collect();
            let mut cycles = 0u64;
            for scale in PipelineConfig::SCALES {
                let scaled = cfg.scaled(scale);
                for lane in &per_spec {
                    cycles += simulate(&lcf_trace, lane, &scaled).cycles;
                }
            }
            cycles
        },
    ));

    // Pure replay: both pinned traces' 16-lane chunk cursors interleaved
    // in 8K-instruction slices. Training and preparation stay outside
    // the timed region, so this isolates the lane-vector replay loop —
    // the aggregate lane-records/s ceiling every sweep study shares.
    let spec_grid_flags: Vec<Vec<bool>> = {
        let mut predictors = PredictorSpec::build_all(&grid_specs);
        sweep_flags(&mut predictors, &spec_trace)
    };
    let lcf_grid_flags: Vec<Vec<bool>> = {
        let mut predictors = PredictorSpec::build_all(&grid_specs);
        sweep_flags(&mut predictors, &lcf_trace)
    };
    let spec_lanes: Vec<&[bool]> = spec_grid_flags.iter().map(Vec::as_slice).collect();
    let lcf_lanes: Vec<&[bool]> = lcf_grid_flags.iter().map(Vec::as_slice).collect();
    let spec_sweep = SweepReplay::new(&spec_trace, &cfg);
    let lcf_sweep = SweepReplay::new(&lcf_trace, &cfg);
    let lanes_per_group = grid_specs.len() as u64;
    measurements.push(perf::measure(
        "sweep/interleave-2trace",
        (spec_trace.len() as u64 + lcf_trace.len() as u64) * lanes_per_group,
        (spec_branches + lcf_branches) * lanes_per_group,
        warmup,
        samples,
        || {
            let groups = [
                InterleaveGroup::new(&spec_sweep, &spec_lanes, &cfg),
                InterleaveGroup::new(&lcf_sweep, &lcf_lanes, &cfg),
            ];
            simulate_interleaved(&groups, 8192)
                .iter()
                .flatten()
                .map(|s| s.cycles)
                .sum::<u64>()
        },
    ));

    // Sampled replay, split at its natural seam: planning (streamed
    // interval profiling + medoid selection — pure analysis, no replay)
    // and execution (segment preparation with functional cache warming,
    // the whole-stream predictor walk, weighted reconstruction). Both
    // walk every record of the pinned trace, so rec/s compares directly
    // with the full-replay benchmarks above: the execution entry's win
    // over `end_to_end/tage-sc-l-8kb` is the sampling payoff.
    let phase_cfg = bp_analysis::PhaseConfig { max_phases: 4, ..bp_analysis::PhaseConfig::default() };
    let sample_interval = TRACE_LEN / 20;
    // The planning pass alone finishes in single-digit milliseconds —
    // too short for a stable median against CPU frequency jitter — so
    // each sample runs it several times and declares the records to
    // match.
    let cluster_reps = 8u64;
    measurements.push(perf::measure(
        "sample/cluster",
        spec_trace.len() as u64 * cluster_reps,
        spec_branches * cluster_reps,
        warmup,
        samples,
        || {
            let mut sum = 0u64;
            for _ in 0..cluster_reps {
                let profiles =
                    bp_trace::profile_intervals(spec_trace.reader(), sample_interval, phase_cfg.dims)
                        .expect("in-memory reader cannot fail");
                let simpoints = bp_analysis::simpoints_from_profiles(&profiles, &phase_cfg);
                sum += simpoints.representatives.iter().map(|r| r.interval as u64 + 1).sum::<u64>();
            }
            sum
        },
    ));
    let sample_plan = {
        let profiles = bp_trace::profile_intervals(spec_trace.reader(), sample_interval, phase_cfg.dims)
            .expect("in-memory reader cannot fail");
        let simpoints = bp_analysis::simpoints_from_profiles(&profiles, &phase_cfg);
        bp_pipeline::SamplePlan {
            interval_len: sample_interval,
            warmup: sample_interval / 5,
            segments: simpoints
                .representatives
                .iter()
                .map(|r| bp_pipeline::SampleSegment {
                    interval: r.interval,
                    weight: r.weight,
                    spread: r.spread,
                })
                .collect(),
        }
    };
    measurements.push(perf::measure(
        "sample/replay-weighted",
        spec_trace.len() as u64,
        spec_branches,
        warmup,
        samples,
        || {
            let sampled = bp_pipeline::SampledReplay::prepare(spec_trace.reader(), &cfg, &sample_plan)
                .expect("in-memory reader cannot fail");
            let lanes = sampled
                .warmed_lanes(spec_trace.reader(), &mut TageScL::kb8())
                .expect("in-memory reader cannot fail");
            let lane_refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
            let est = sampled.simulate_weighted(&lane_refs, &cfg);
            est.est_branches as u64
        },
    ));

    PerfReport {
        date: opts.date.clone().unwrap_or_else(perf::utc_date_today),
        samples,
        warmup,
        peak_rss_kb: perf::peak_rss_kb(),
        measurements,
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let report = run_suite(&opts);

    if opts.check_baseline {
        let Some(path) = opts.baseline.clone().or_else(default_baseline) else {
            eprintln!("bp-perf: no baseline given and no BENCH_*.json found in .");
            return ExitCode::from(2);
        };
        let raw = match std::fs::read_to_string(&path) {
            Ok(raw) => raw,
            Err(err) => {
                eprintln!("bp-perf: cannot read baseline {path}: {err}");
                return ExitCode::from(2);
            }
        };
        let baseline = match PerfReport::parse(&raw) {
            Ok(baseline) => baseline,
            Err(err) => {
                eprintln!("bp-perf: bad baseline {path}: {err}");
                return ExitCode::from(2);
            }
        };
        let checks = perf::check_against_baseline(&report, &baseline, opts.threshold);
        println!(
            "== bp-perf vs baseline {path} ({} allowed regression) ==",
            format_args!("{:.0}%", opts.threshold * 100.0)
        );
        let mut failed = false;
        for c in &checks {
            println!(
                "{:<32} {:>12} -> {:>12} rec/s  ({:>5.2}x)  {}",
                c.name,
                c.baseline_rps,
                c.current_rps,
                c.ratio,
                if c.pass { "ok" } else { "REGRESSION" }
            );
            failed |= !c.pass;
        }
        if failed {
            println!("bp-perf: regression detected (threshold {:.2})", opts.threshold);
            return ExitCode::FAILURE;
        }
        println!("bp-perf: all benchmarks within threshold");
        return ExitCode::SUCCESS;
    }

    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", report.date));
    let payload = format!("{}\n", report.to_json());
    if let Err(err) = std::fs::write(&path, payload) {
        eprintln!("bp-perf: cannot write {path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("bp-perf: wrote {path}");
    ExitCode::SUCCESS
}
