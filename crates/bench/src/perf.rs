//! Machinery behind the `bp-perf` regression runner.
//!
//! `bp-perf` (see `src/bin/bp_perf.rs`) executes a pinned suite of replay
//! benchmarks and emits a deterministic `BENCH_<date>.json` report —
//! records/sec, ns/branch, peak RSS — rendered through the same canonical
//! JSON machinery (`bp_metrics::json`) as the run manifests, so reports
//! diff cleanly and sort stably. This module holds the measurement loop,
//! the report schema, and the baseline comparison used by
//! `bp-perf --check-baseline` / the `ci.sh` perf leg; the binary only
//! parses arguments and defines the suite.
//!
//! The report schema (`bp-perf/v1`):
//!
//! ```json
//! {
//!   "benchmarks": {
//!     "end_to_end/tage-sc-l-8kb": {
//!       "branches": 210158,
//!       "median_ns": 26441000,
//!       "min_ns": 26242000,
//!       "ns_per_branch": 125.81,
//!       "records": 1000000,
//!       "records_per_sec": 37820203
//!     }
//!   },
//!   "date": "2026-08-05",
//!   "peak_rss_kb": 181204,
//!   "samples": 7,
//!   "schema": "bp-perf/v1",
//!   "warmup": 1
//! }
//! ```
//!
//! Timing fields obviously vary run to run; everything else — key order,
//! number formatting, benchmark set — is fixed, which is what lets a
//! checked-in report serve as a regression baseline
//! (see `PERFORMANCE.md`).

use std::collections::BTreeMap;
use std::time::Instant;

use bp_metrics::json::{self, Value};

/// Schema tag written into every report.
pub const SCHEMA: &str = "bp-perf/v1";

/// One measured benchmark: iteration size and wall-time statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measurement {
    /// Stable benchmark id, e.g. `end_to_end/tage-sc-l-8kb`.
    pub name: String,
    /// Trace records processed per iteration (instructions for pipeline
    /// and end-to-end benchmarks, branches for predictor-only ones).
    pub records: u64,
    /// Dynamic conditional branches replayed per iteration.
    pub branches: u64,
    /// Median wall time of one iteration, nanoseconds.
    pub median_ns: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
}

impl Measurement {
    /// Throughput in records per second, from the median sample.
    #[must_use]
    pub fn records_per_sec(&self) -> u64 {
        if self.median_ns == 0 {
            return 0;
        }
        // records * 1e9 / median_ns, in u128 to avoid overflow.
        u64::try_from(u128::from(self.records) * 1_000_000_000 / u128::from(self.median_ns))
            .unwrap_or(u64::MAX)
    }

    /// Median cost of one conditional branch, nanoseconds.
    #[must_use]
    pub fn ns_per_branch(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        self.median_ns as f64 / self.branches as f64
    }
}

/// Times `f` (`warmup` untimed runs, then `samples` timed ones) and
/// returns the resulting [`Measurement`]. Prints one stable
/// `name: ...` progress line to stderr so long suites show liveness
/// without polluting the machine-readable stdout/report.
pub fn measure<R>(
    name: &str,
    records: u64,
    branches: u64,
    warmup: u32,
    samples: u32,
    mut f: impl FnMut() -> R,
) -> Measurement {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    times.sort_unstable();
    let m = Measurement {
        name: name.to_string(),
        records,
        branches,
        median_ns: times[times.len() / 2],
        min_ns: times[0],
    };
    eprintln!(
        "{name}: {:.2} Mrec/s  {:.1} ns/branch  (median {:.1} ms over {} samples)",
        m.records_per_sec() as f64 / 1e6,
        m.ns_per_branch(),
        m.median_ns as f64 / 1e6,
        samples.max(1),
    );
    m
}

/// A full `bp-perf` report: the pinned suite's measurements plus run
/// metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfReport {
    /// UTC date the report was recorded (`YYYY-MM-DD`).
    pub date: String,
    /// Timed samples per benchmark.
    pub samples: u32,
    /// Untimed warm-up iterations per benchmark.
    pub warmup: u32,
    /// Peak resident set size of the process, in kilobytes (0 when the
    /// platform does not expose it).
    pub peak_rss_kb: u64,
    /// The suite's measurements, in execution order.
    pub measurements: Vec<Measurement>,
}

impl PerfReport {
    /// Renders the canonical JSON document (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut benches = BTreeMap::new();
        for m in &self.measurements {
            let mut entry = BTreeMap::new();
            entry.insert("records".to_string(), Value::uint(m.records));
            entry.insert("branches".to_string(), Value::uint(m.branches));
            entry.insert("median_ns".to_string(), Value::uint(m.median_ns));
            entry.insert("min_ns".to_string(), Value::uint(m.min_ns));
            entry.insert(
                "records_per_sec".to_string(),
                Value::uint(m.records_per_sec()),
            );
            entry.insert(
                "ns_per_branch".to_string(),
                Value::Num(format!("{:.2}", m.ns_per_branch())),
            );
            benches.insert(m.name.clone(), Value::Obj(entry));
        }
        let mut map = BTreeMap::new();
        map.insert("schema".to_string(), Value::Str(SCHEMA.to_string()));
        map.insert("date".to_string(), Value::Str(self.date.clone()));
        map.insert("samples".to_string(), Value::uint(u64::from(self.samples)));
        map.insert("warmup".to_string(), Value::uint(u64::from(self.warmup)));
        map.insert("peak_rss_kb".to_string(), Value::uint(self.peak_rss_kb));
        map.insert("benchmarks".to_string(), Value::Obj(benches));
        Value::Obj(map).to_json()
    }

    /// Parses a report previously written by [`PerfReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the document is not valid
    /// JSON or not a `bp-perf/v1` report.
    pub fn parse(raw: &str) -> Result<PerfReport, String> {
        let value = json::parse(raw).map_err(|e| format!("invalid JSON: {e}"))?;
        let map = value.as_obj().ok_or("report root must be an object")?;
        let schema = map.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?}, expected {SCHEMA:?}"));
        }
        let get_u64 = |obj: &BTreeMap<String, Value>, key: &str| {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let mut measurements = Vec::new();
        let benches = map
            .get("benchmarks")
            .and_then(Value::as_obj)
            .ok_or("missing benchmarks object")?;
        for (name, entry) in benches {
            let obj = entry
                .as_obj()
                .ok_or_else(|| format!("benchmark {name:?} must be an object"))?;
            measurements.push(Measurement {
                name: name.clone(),
                records: get_u64(obj, "records")?,
                branches: get_u64(obj, "branches")?,
                median_ns: get_u64(obj, "median_ns")?,
                min_ns: get_u64(obj, "min_ns")?,
            });
        }
        Ok(PerfReport {
            date: map
                .get("date")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            samples: u32::try_from(get_u64(map, "samples")?).unwrap_or(0),
            warmup: u32::try_from(get_u64(map, "warmup")?).unwrap_or(0),
            peak_rss_kb: get_u64(map, "peak_rss_kb")?,
            measurements,
        })
    }
}

/// Outcome of comparing one benchmark against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineCheck {
    /// Benchmark id.
    pub name: String,
    /// Baseline throughput, records/sec.
    pub baseline_rps: u64,
    /// Current throughput, records/sec (0 when the benchmark is missing
    /// from the current run).
    pub current_rps: u64,
    /// `current / baseline` (1.0 means unchanged, below 1.0 is slower).
    pub ratio: f64,
    /// Whether the benchmark stayed within the allowed regression.
    pub pass: bool,
}

/// Compares `current` against `baseline`: every benchmark present in the
/// baseline must reach `baseline_rps * (1 - allowed_regression)` records
/// per second. Benchmarks missing from `current` fail; benchmarks only in
/// `current` (newly added) are ignored, so a baseline refresh is not
/// required just to add coverage.
#[must_use]
pub fn check_against_baseline(
    current: &PerfReport,
    baseline: &PerfReport,
    allowed_regression: f64,
) -> Vec<BaselineCheck> {
    let floor_scale = (1.0 - allowed_regression).max(0.0);
    baseline
        .measurements
        .iter()
        .map(|base| {
            let baseline_rps = base.records_per_sec();
            let current_rps = current
                .measurements
                .iter()
                .find(|m| m.name == base.name)
                .map_or(0, Measurement::records_per_sec);
            let ratio = if baseline_rps == 0 {
                1.0
            } else {
                current_rps as f64 / baseline_rps as f64
            };
            BaselineCheck {
                name: base.name.clone(),
                baseline_rps,
                current_rps,
                ratio,
                pass: current_rps as f64 >= baseline_rps as f64 * floor_scale,
            }
        })
        .collect()
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`VmHWM`). Returns 0 where that interface does
/// not exist.
#[must_use]
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let rest = line.strip_prefix("VmHWM:")?;
                rest.trim().trim_end_matches("kB").trim().parse().ok()
            })
        })
        .unwrap_or(0)
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// time crate: civil-from-days per Howard Hinnant's algorithm).
#[must_use]
pub fn utc_date_today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = i64::try_from(secs / 86_400).unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to a `(year, month, day)` civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = u32::try_from(doy - (153 * mp + 2) / 5 + 1).unwrap_or(1);
    let m = u32::try_from(if mp < 10 { mp + 3 } else { mp - 9 }).unwrap_or(1);
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            date: "2026-08-05".to_string(),
            samples: 7,
            warmup: 1,
            peak_rss_kb: 4321,
            measurements: vec![
                Measurement {
                    name: "end_to_end/tage-sc-l-8kb".to_string(),
                    records: 1_000_000,
                    branches: 200_000,
                    median_ns: 20_000_000,
                    min_ns: 19_000_000,
                },
                Measurement {
                    name: "pipeline/scoreboard".to_string(),
                    records: 1_000_000,
                    branches: 200_000,
                    median_ns: 10_000_000,
                    min_ns: 9_500_000,
                },
            ],
        }
    }

    #[test]
    fn throughput_math() {
        let m = &sample_report().measurements[0];
        assert_eq!(m.records_per_sec(), 50_000_000);
        assert!((m.ns_per_branch() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let rendered = report.to_json();
        let parsed = PerfReport::parse(&rendered).unwrap();
        assert_eq!(parsed, report);
        // Canonical: re-rendering reproduces the bytes.
        assert_eq!(parsed.to_json(), rendered);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let err = PerfReport::parse("{\"schema\": \"other/v9\"}").unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn baseline_check_flags_regressions_only() {
        let baseline = sample_report();
        let mut current = sample_report();
        // 10% slower on the first benchmark, faster on the second.
        current.measurements[0].median_ns = 22_223_000;
        current.measurements[1].median_ns = 5_000_000;
        let strict = check_against_baseline(&current, &baseline, 0.05);
        assert!(!strict[0].pass && strict[1].pass);
        let generous = check_against_baseline(&current, &baseline, 0.25);
        assert!(generous.iter().all(|c| c.pass));
        assert!(strict[0].ratio < 0.95 && strict[1].ratio > 1.9);
    }

    #[test]
    fn missing_benchmark_fails_check() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.measurements.remove(1);
        let checks = check_against_baseline(&current, &baseline, 0.25);
        let missing = checks.iter().find(|c| c.name == "pipeline/scoreboard");
        assert!(missing.is_some_and(|c| !c.pass && c.current_rps == 0));
    }

    #[test]
    fn extra_benchmark_in_current_is_ignored() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.measurements.push(Measurement {
            name: "new/one".to_string(),
            records: 1,
            branches: 1,
            median_ns: 1,
            min_ns: 1,
        });
        assert_eq!(check_against_baseline(&current, &baseline, 0.1).len(), 2);
    }

    #[test]
    fn civil_date_conversion() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2026-08-05 is 20670 days after the epoch.
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
    }

    #[test]
    fn measure_counts_and_orders() {
        let m = measure("self/test", 1000, 100, 0, 3, || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert_eq!(m.records, 1000);
        assert!(m.min_ns <= m.median_ns);
    }
}
