//! A minimal, dependency-free benchmark harness for branch-lab.
//!
//! The build environment is fully offline, so instead of criterion the
//! bench targets use this small fixed-format harness: one warm-up call,
//! a configured number of timed samples, and a one-line report with the
//! median/min wall time plus element throughput when available. Output
//! lines are stable (`group/name: ...`) so before/after numbers can be
//! diffed or grepped by tooling.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of related benchmarks, mirroring the criterion API shape
/// the benches were originally written against.
pub struct BenchGroup {
    name: String,
    elements: Option<u64>,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group; benchmark lines are printed as `name/bench: ...`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_owned(),
            elements: None,
            samples: 10,
        }
    }

    /// Declares that each iteration processes `elements` items, enabling
    /// throughput reporting.
    #[must_use]
    pub fn throughput(mut self, elements: u64) -> Self {
        self.elements = Some(elements);
        self
    }

    /// Number of timed samples per benchmark (default 10).
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f` and prints a report line, returning the median duration.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        match self.elements {
            Some(n) if median > Duration::ZERO => {
                let rate = n as f64 / median.as_secs_f64() / 1e6;
                println!(
                    "{}/{}: median {:?}  min {:?}  ({rate:.2} Melem/s)",
                    self.name, name, median, min
                );
            }
            _ => println!("{}/{}: median {:?}  min {:?}", self.name, name, median, min),
        }
        median
    }
}

pub mod perf;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_a_sane_median() {
        let g = BenchGroup::new("self-test").samples(3).throughput(1000);
        let d = g.bench("noop-loop", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(d < Duration::from_secs(1));
    }
}
