//! Criterion benchmarks for branch-lab (see benches/).
