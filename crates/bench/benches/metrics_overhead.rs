//! Overhead of the `bp-metrics` layer on the replay hot path.
//!
//! Two comparisons:
//!
//! * a counter micro-benchmark — the per-`add` cost of a disabled handle
//!   (one predictable branch) vs an enabled one (one relaxed
//!   `fetch_add`);
//! * the full replay path (TAGE-SC-L prediction + pipeline simulation)
//!   with metrics disabled vs force-enabled, which bounds the cost of
//!   every instrumentation site the replay crosses.
//!
//! The process starts with `BRANCH_LAB_METRICS` unset, measures the
//! disabled configuration, then flips the registry on via
//! [`bp_metrics::force_enable`] (a one-way switch, hence the ordering)
//! and re-measures with **freshly constructed** predictors so their
//! counter handles resolve in the enabled mode. The disabled-vs-baseline
//! number (the ISSUE's <2% budget) is established separately by timing an
//! uninstrumented build; this bench tracks that the disabled path stays
//! branch-cheap and that even full counting is affordable.

use std::hint::black_box;

use bp_bench::BenchGroup;
use bp_metrics::Counter;
use bp_pipeline::{simulate, PipelineConfig};
use bp_predictors::{misprediction_flags, TageScL};
use bp_workloads::specint_suite;

fn main() {
    assert!(
        !bp_metrics::enabled(),
        "run without BRANCH_LAB_METRICS: the bench flips the mode itself"
    );
    let spec = &specint_suite()[1]; // mcf-like: branch-heavy
    let trace = spec.cached_trace(0, 200_000);
    let cfg = PipelineConfig::skylake();
    let replay = || {
        let mut bpu = TageScL::kb8();
        let flags = misprediction_flags(&mut bpu, &trace);
        simulate(&trace, &flags, &cfg).cycles
    };

    const ADDS: u64 = 10_000_000;
    let counters = BenchGroup::new("counter").samples(10).throughput(ADDS);
    let disabled_handle = Counter::get("bench.disabled");
    counters.bench("add-disabled", || {
        for i in 0..ADDS {
            black_box(disabled_handle).add(black_box(i) & 1);
        }
    });

    let group = BenchGroup::new("metrics-overhead").samples(10);
    let disabled = group.bench("replay-disabled", replay);

    // One-way switch: everything below runs with the registry live.
    bp_metrics::force_enable();
    let enabled_handle = Counter::get("bench.enabled");
    counters.bench("add-enabled", || {
        for i in 0..ADDS {
            black_box(enabled_handle).add(black_box(i) & 1);
        }
    });
    let enabled = group.bench("replay-enabled", replay);

    println!(
        "metrics-overhead: enabled/disabled = {:.4}x ({:+.2}% with full counting on)",
        enabled.as_secs_f64() / disabled.as_secs_f64(),
        (enabled.as_secs_f64() / disabled.as_secs_f64() - 1.0) * 100.0
    );
}
