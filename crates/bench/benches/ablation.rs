//! Ablation benches for the design choices called out in DESIGN.md:
//! predictor-component cost (TAGE vs TAGE-L vs TAGE-SC-L), history-length
//! limits, and float vs 2-bit CNN inference. Accuracy-side ablations live
//! in `cargo run -p bp-experiments --bin ablation`.

use bp_bench::BenchGroup;
use bp_helpers::{CnnNet, HistoryEncoder};
use bp_predictors::{Predictor, TageConfig, TageScL, TageSclConfig};
use bp_workloads::specint_suite;

fn main() {
    let spec = &specint_suite()[6];
    let stream: Vec<(u64, bool)> = spec
        .trace(0, 150_000)
        .conditional_branches()
        .map(|b| (b.ip, b.taken))
        .collect();

    let replay = |mut p: TageScL| {
        let mut wrong = 0u64;
        for &(ip, taken) in &stream {
            let pred = p.predict(ip);
            p.update(ip, taken, pred);
            wrong += u64::from(pred != taken);
        }
        wrong
    };

    let group = BenchGroup::new("ablation-components").throughput(stream.len() as u64);
    let configs = [
        ("tage-only", TageSclConfig::tage_only(8)),
        ("tage-l", TageSclConfig::tage_l(8)),
        ("tage-sc-l", TageSclConfig::storage_kb(8)),
    ];
    for (name, cfg) in &configs {
        group.bench(name, || replay(TageScL::new(cfg.clone())));
    }

    // History-length limit at fixed storage.
    let group = BenchGroup::new("ablation-history-limit").throughput(stream.len() as u64);
    for max_hist in [500usize, 1000, 3000] {
        group.bench(&max_hist.to_string(), || {
            let mut cfg = TageSclConfig::storage_kb(8);
            cfg.tage = TageConfig { max_hist, ..cfg.tage };
            replay(TageScL::new(cfg))
        });
    }

    // Float vs 2-bit CNN inference.
    let mut net = CnnNet::new(12, 64, 4);
    let window: Vec<u16> = (0..32)
        .map(|i| HistoryEncoder::bucket_of(0x400 + i * 4, i % 3 == 0, 64))
        .collect();
    for _ in 0..200 {
        net.train_step(&window, true, 0.05);
    }
    let quant = net.quantize();

    let group = BenchGroup::new("ablation-cnn-precision").samples(20);
    group.bench("f32-forward", || net.forward(&window).score);
    group.bench("2bit-forward", || quant.forward(&window).score);
}
