//! Ablation benches for the design choices called out in DESIGN.md:
//! predictor-component cost (TAGE vs TAGE-L vs TAGE-SC-L), history-length
//! limits, and float vs 2-bit CNN inference. Accuracy-side ablations live
//! in `cargo run -p bp-experiments --bin ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use bp_helpers::{CnnNet, HistoryEncoder};
use bp_predictors::{Predictor, TageConfig, TageScL, TageSclConfig};
use bp_workloads::specint_suite;

fn bench_component_cost(c: &mut Criterion) {
    let spec = &specint_suite()[6];
    let stream: Vec<(u64, bool)> = spec
        .trace(0, 150_000)
        .conditional_branches()
        .map(|b| (b.ip, b.taken))
        .collect();

    let mut group = c.benchmark_group("ablation-components");
    group
        .throughput(Throughput::Elements(stream.len() as u64))
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let configs = [
        ("tage-only", TageSclConfig::tage_only(8)),
        ("tage-l", TageSclConfig::tage_l(8)),
        ("tage-sc-l", TageSclConfig::storage_kb(8)),
    ];
    for (name, cfg) in configs {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut p = TageScL::new(cfg.clone());
                let mut wrong = 0u64;
                for &(ip, taken) in &stream {
                    let pred = p.predict(ip);
                    p.update(ip, taken, pred);
                    wrong += u64::from(pred != taken);
                }
                wrong
            });
        });
    }
    group.finish();

    // History-length limit at fixed storage.
    let mut group = c.benchmark_group("ablation-history-limit");
    group
        .throughput(Throughput::Elements(stream.len() as u64))
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for max_hist in [500usize, 1000, 3000] {
        group.bench_function(BenchmarkId::from_parameter(max_hist), |b| {
            b.iter(|| {
                let mut cfg = TageSclConfig::storage_kb(8);
                cfg.tage = TageConfig {
                    max_hist,
                    ..cfg.tage
                };
                let mut p = TageScL::new(cfg);
                let mut wrong = 0u64;
                for &(ip, taken) in &stream {
                    let pred = p.predict(ip);
                    p.update(ip, taken, pred);
                    wrong += u64::from(pred != taken);
                }
                wrong
            });
        });
    }
    group.finish();
}

fn bench_cnn_precision(c: &mut Criterion) {
    let mut net = CnnNet::new(12, 64, 4);
    let window: Vec<u16> = (0..32)
        .map(|i| HistoryEncoder::bucket_of(0x400 + i * 4, i % 3 == 0, 64))
        .collect();
    for _ in 0..200 {
        net.train_step(&window, true, 0.05);
    }
    let quant = net.quantize();

    let mut group = c.benchmark_group("ablation-cnn-precision");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("f32-forward", |b| b.iter(|| net.forward(&window).score));
    group.bench_function("2bit-forward", |b| b.iter(|| quant.forward(&window).score));
    group.finish();
}

criterion_group!(benches, bench_component_cost, bench_cnn_precision);
criterion_main!(benches);
