//! Predictor lookup+update throughput over a realistic branch stream.

use bp_bench::BenchGroup;
use bp_predictors::{
    Bimodal, GShare, Perceptron, Ppm, PpmConfig, Predictor, TageScL, TageSclConfig, TwoLevelLocal,
};
use bp_workloads::specint_suite;

fn branch_stream(len: usize) -> Vec<(u64, bool)> {
    let spec = &specint_suite()[6]; // leela-like: branchy
    let trace = spec.trace(0, len);
    trace
        .conditional_branches()
        .map(|b| (b.ip, b.taken))
        .collect()
}

fn main() {
    let stream = branch_stream(200_000);
    let group = BenchGroup::new("predictors").throughput(stream.len() as u64);

    let run = |name: &str, make: &dyn Fn() -> Box<dyn Predictor>| {
        group.bench(name, || {
            let mut p = make();
            let mut wrong = 0u64;
            for &(ip, taken) in &stream {
                let pred = p.predict(ip);
                p.update(ip, taken, pred);
                wrong += u64::from(pred != taken);
            }
            wrong
        });
    };

    run("bimodal", &|| Box::new(Bimodal::new(12)));
    run("gshare", &|| Box::new(GShare::new(13, 16)));
    run("two-level-local", &|| Box::new(TwoLevelLocal::new(11, 10)));
    run("perceptron", &|| Box::new(Perceptron::new(10, 32)));
    run("ppm", &|| Box::new(Ppm::new(PpmConfig::default())));
    run("tage-sc-l-8kb", &|| Box::new(TageScL::kb8()));
    run("tage-sc-l-64kb", &|| Box::new(TageScL::kb64()));
    run("tage-sc-l-1024kb", &|| {
        Box::new(TageScL::new(TageSclConfig::storage_kb(1024)))
    });
}
