//! Predictor lookup+update throughput over a realistic branch stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use bp_predictors::{
    Bimodal, GShare, Perceptron, Ppm, PpmConfig, Predictor, TageScL, TageSclConfig, TwoLevelLocal,
};
use bp_workloads::specint_suite;

fn branch_stream(len: usize) -> Vec<(u64, bool)> {
    let spec = &specint_suite()[6]; // leela-like: branchy
    let trace = spec.trace(0, len);
    trace
        .conditional_branches()
        .map(|b| (b.ip, b.taken))
        .collect()
}

fn bench_predictors(c: &mut Criterion) {
    let stream = branch_stream(200_000);
    let mut group = c.benchmark_group("predictors");
    group
        .throughput(Throughput::Elements(stream.len() as u64))
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let run = |group: &mut criterion::BenchmarkGroup<'_, _>, name: &str, make: &dyn Fn() -> Box<dyn Predictor>| {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut p = make();
                let mut wrong = 0u64;
                for &(ip, taken) in &stream {
                    let pred = p.predict(ip);
                    p.update(ip, taken, pred);
                    wrong += u64::from(pred != taken);
                }
                wrong
            });
        });
    };

    run(&mut group, "bimodal", &|| Box::new(Bimodal::new(12)));
    run(&mut group, "gshare", &|| Box::new(GShare::new(13, 16)));
    run(&mut group, "two-level-local", &|| {
        Box::new(TwoLevelLocal::new(11, 10))
    });
    run(&mut group, "perceptron", &|| Box::new(Perceptron::new(10, 32)));
    run(&mut group, "ppm", &|| Box::new(Ppm::new(PpmConfig::default())));
    run(&mut group, "tage-sc-l-8kb", &|| Box::new(TageScL::kb8()));
    run(&mut group, "tage-sc-l-64kb", &|| Box::new(TageScL::kb64()));
    run(&mut group, "tage-sc-l-1024kb", &|| {
        Box::new(TageScL::new(TageSclConfig::storage_kb(1024)))
    });
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
