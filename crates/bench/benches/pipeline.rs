//! Workload interpretation and pipeline-simulation throughput.

use bp_bench::BenchGroup;
use bp_pipeline::{simulate, PipelineConfig};
use bp_predictors::{misprediction_flags, TageScL};
use bp_workloads::{lcf_suite, specint_suite};

fn main() {
    let len = 200_000usize;
    let group = BenchGroup::new("interpreter").throughput(len as u64);
    for spec in [&specint_suite()[1], &lcf_suite()[1]] {
        let program = spec.program();
        group.bench(&spec.name, || spec.trace_with(&program, 0, len).len());
    }

    let spec = &specint_suite()[0];
    let trace = spec.trace(0, len);
    let flags = misprediction_flags(&mut TageScL::kb8(), &trace);
    let group = BenchGroup::new("scoreboard").throughput(trace.len() as u64);
    for scale in [1u32, 8, 32] {
        let cfg = PipelineConfig::skylake().scaled(scale);
        group.bench(&format!("{scale}x"), || simulate(&trace, &flags, &cfg).cycles);
    }
}
