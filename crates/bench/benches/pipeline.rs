//! Workload interpretation and pipeline-simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use bp_pipeline::{simulate, PipelineConfig};
use bp_predictors::{misprediction_flags, TageScL};
use bp_workloads::{lcf_suite, specint_suite};

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for spec in [&specint_suite()[1], &lcf_suite()[1]] {
        let program = spec.program();
        let len = 200_000usize;
        group.throughput(Throughput::Elements(len as u64));
        group.bench_function(BenchmarkId::from_parameter(&spec.name), |b| {
            b.iter(|| spec.trace_with(&program, 0, len).len());
        });
    }
    group.finish();
}

fn bench_scoreboard(c: &mut Criterion) {
    let spec = &specint_suite()[0];
    let trace = spec.trace(0, 200_000);
    let flags = misprediction_flags(&mut TageScL::kb8(), &trace);
    let mut group = c.benchmark_group("scoreboard");
    group
        .throughput(Throughput::Elements(trace.len() as u64))
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for scale in [1u32, 8, 32] {
        let cfg = PipelineConfig::skylake().scaled(scale);
        group.bench_function(BenchmarkId::from_parameter(format!("{scale}x")), |b| {
            b.iter(|| simulate(&trace, &flags, &cfg).cycles);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_scoreboard);
criterion_main!(benches);
