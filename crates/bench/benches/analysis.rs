//! Analysis-pipeline throughput: profiling, H2P screening, dependency
//! graphs, phase clustering, and CNN inference.

use bp_analysis::{
    cluster_slices, BranchProfile, DependencyAnalysis, H2pCriteria, PhaseConfig,
    RecurrenceAnalysis,
};
use bp_bench::BenchGroup;
use bp_helpers::{train_helper, TrainerConfig};
use bp_predictors::TageScL;
use bp_trace::SliceConfig;
use bp_workloads::specint_suite;

fn main() {
    let spec = &specint_suite()[1];
    let trace = spec.trace(0, 150_000);
    let slice = SliceConfig::new(30_000);

    let group = BenchGroup::new("analysis").throughput(trace.len() as u64);
    group.bench("profile+screen", || {
        let mut bpu = TageScL::kb8();
        let criteria = H2pCriteria::paper();
        let mut n = 0usize;
        for s in trace.slices(slice) {
            let p = BranchProfile::collect(&mut bpu, s);
            n += criteria.screen(&p, slice).len();
        }
        n
    });

    group.bench("phase-clustering", || {
        cluster_slices(&trace, SliceConfig::new(15_000), PhaseConfig::default()).num_phases
    });

    group.bench("recurrence", || RecurrenceAnalysis::compute(&trace).len());

    // Dependency analysis for one hot branch.
    let hot_ip = {
        let mut counts = std::collections::HashMap::new();
        for br in trace.conditional_branches() {
            *counts.entry(br.ip).or_insert(0u64) += 1;
        }
        counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
    };
    let dep = DependencyAnalysis::new(&trace);
    group.bench("depgraph-one-h2p", || {
        dep.analyze(&trace, hot_ip, 5_000, 128).executions
    });

    // CNN helper inference throughput.
    let train = spec.trace(0, 60_000);
    let helper = train_helper(
        std::slice::from_ref(&train),
        hot_ip,
        &TrainerConfig {
            epochs: 1,
            ..TrainerConfig::default()
        },
    );
    let mut h = helper.clone();
    h.observe(0x40, true);
    group.bench("cnn-helper-predict", || h.predict());
}
