//! Before/after numbers for the shared trace store and the parallel
//! experiment engine: trace generation vs a store hit, and the Fig. 1
//! scaling study run serially vs across all cores.

use bp_bench::BenchGroup;
use bp_core::{scaling_study_with, thread_count, DatasetConfig, Engine};
use bp_workloads::{specint_suite, TraceStore};

fn main() {
    let specs = specint_suite();
    let cfg = DatasetConfig::quick();

    // Trace store: interpreter run vs memoized hit.
    let spec = &specs[1];
    let store = TraceStore::new();
    let group = BenchGroup::new("trace-store").samples(5);
    group.bench("generate", || spec.trace(0, cfg.trace_len).len());
    let _ = store.get(spec, 0, cfg.trace_len);
    group.bench("hit", || store.get(spec, 0, cfg.trace_len).len());

    // Experiment engine: serial vs parallel scaling study. Warm the shared
    // store first so both sides measure the engine, not trace generation.
    let _ = scaling_study_with(Engine::with_threads(1), &specs, &cfg);
    let threads = thread_count();
    let group = BenchGroup::new("scaling-study").samples(3);
    let serial = group.bench("serial", || {
        scaling_study_with(Engine::with_threads(1), &specs, &cfg).series.len()
    });
    let parallel = group.bench(&format!("parallel-{threads}t"), || {
        scaling_study_with(Engine::from_env(), &specs, &cfg).series.len()
    });
    println!(
        "scaling-study: {:.2}x speedup on {threads} threads",
        serial.as_secs_f64() / parallel.as_secs_f64()
    );
}
