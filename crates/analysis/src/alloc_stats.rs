//! TAGE table-allocation statistics (§IV-A).
//!
//! The paper instruments TAGE-SC-L's allocation mechanism and finds that
//! H2P branches thrash the tagged tables: the median H2P triggers ~13K
//! allocations over ~4K unique entries, while the median non-H2P branch
//! allocates ~4 entries — storage is wasted on patterns that never
//! stabilize. This module combines [`bp_predictors::AllocationTracker`]
//! data with an H2P set to reproduce those statistics.

use std::collections::HashSet;

use bp_predictors::AllocationTracker;

/// Summary of allocation behaviour split by H2P membership.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AllocStats {
    /// Median allocations per H2P branch.
    pub h2p_median_allocations: u64,
    /// Median unique `(table, entry)` slots per H2P branch.
    pub h2p_median_unique_entries: u64,
    /// Median allocations per non-H2P branch.
    pub other_median_allocations: u64,
    /// Median unique slots per non-H2P branch.
    pub other_median_unique_entries: u64,
    /// Mean share of all allocations attributable to each H2P branch.
    pub h2p_mean_allocation_share: f64,
    /// Mean share per non-H2P branch.
    pub other_mean_allocation_share: f64,
    /// Number of H2P branches with any allocations.
    pub h2p_count: usize,
    /// Number of non-H2P branches with any allocations.
    pub other_count: usize,
}

fn median(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        0
    } else {
        values.sort_unstable();
        values[values.len() / 2]
    }
}

/// Computes §IV-A allocation statistics from tracker data and an H2P set.
///
/// # Examples
///
/// ```
/// use bp_analysis::{compute_alloc_stats, BranchProfile};
/// use bp_predictors::TageScL;
/// use bp_workloads::specint_suite;
///
/// let trace = specint_suite()[6].trace(0, 40_000); // leela-like
/// let mut bpu = TageScL::kb8();
/// bpu.enable_instrumentation();
/// let _profile = BranchProfile::collect(&mut bpu, trace.insts());
/// let h2ps = std::collections::HashSet::new(); // (none marked here)
/// let stats = compute_alloc_stats(bpu.tracker().unwrap(), &h2ps);
/// assert!(stats.other_count > 0);
/// ```
#[must_use]
pub fn compute_alloc_stats(tracker: &AllocationTracker, h2ps: &HashSet<u64>) -> AllocStats {
    let total = tracker.total_allocations().max(1);
    let mut h2p_allocs = Vec::new();
    let mut h2p_unique = Vec::new();
    let mut other_allocs = Vec::new();
    let mut other_unique = Vec::new();
    let mut h2p_share = 0.0f64;
    let mut other_share = 0.0f64;
    for ip in tracker.ips() {
        let a = tracker.allocations(ip);
        let u = tracker.unique_entries(ip) as u64;
        let share = a as f64 / total as f64;
        if h2ps.contains(&ip) {
            h2p_allocs.push(a);
            h2p_unique.push(u);
            h2p_share += share;
        } else {
            other_allocs.push(a);
            other_unique.push(u);
            other_share += share;
        }
    }
    let h2p_count = h2p_allocs.len();
    let other_count = other_allocs.len();
    AllocStats {
        h2p_median_allocations: median(&mut h2p_allocs),
        h2p_median_unique_entries: median(&mut h2p_unique),
        other_median_allocations: median(&mut other_allocs),
        other_median_unique_entries: median(&mut other_unique),
        h2p_mean_allocation_share: if h2p_count == 0 {
            0.0
        } else {
            h2p_share / h2p_count as f64
        },
        other_mean_allocation_share: if other_count == 0 {
            0.0
        } else {
            other_share / other_count as f64
        },
        h2p_count,
        other_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::{Predictor, Tage, TageConfig};

    /// Drives a TAGE with one random (H2P-like) and several predictable
    /// branches, then checks the split statistics.
    #[test]
    fn h2p_branches_dominate_allocations() {
        let mut tage = Tage::new(TageConfig::default());
        tage.enable_instrumentation();
        let mut state = 3u64;
        for i in 0..30_000u64 {
            // Random branch at 0x100.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (state >> 33) & 1 == 1;
            let p = tage.predict(0x100);
            tage.update(0x100, t, p);
            // Predictable branches at 0x200..0x240.
            let ip = 0x200 + (i % 16) * 4;
            let t2 = i % 2 == 0;
            let p2 = tage.predict(ip);
            tage.update(ip, t2, p2);
        }
        let mut h2ps = HashSet::new();
        h2ps.insert(0x100u64);
        let stats = compute_alloc_stats(tage.tracker().unwrap(), &h2ps);
        assert_eq!(stats.h2p_count, 1);
        assert!(
            stats.h2p_median_allocations > 10 * stats.other_median_allocations.max(1),
            "H2P should allocate far more: {stats:?}"
        );
        assert!(stats.h2p_mean_allocation_share > stats.other_mean_allocation_share);
        // Allocations exceed unique entries: slots are being recycled and
        // re-allocated for the same branch (the paper's observation).
        assert!(stats.h2p_median_allocations >= stats.h2p_median_unique_entries);
    }

    #[test]
    fn empty_tracker_yields_zeros() {
        let mut tage = Tage::new(TageConfig::default());
        tage.enable_instrumentation();
        let stats = compute_alloc_stats(tage.tracker().unwrap(), &HashSet::new());
        assert_eq!(stats, AllocStats::default());
    }
}
