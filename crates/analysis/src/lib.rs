//! Misprediction characterization analyses for `branch-lab`.
//!
//! Implements the paper's measurement pipeline:
//!
//! * [`BranchProfile`] — per-IP accuracy/execution statistics (§III);
//! * [`H2pCriteria`] — hard-to-predict branch screening with
//!   slice-scale-aware thresholds (§III-A);
//! * [`rank_heavy_hitters`] — cumulative misprediction coverage (Fig. 2);
//! * [`BinSpec`]/[`Histogram`] — the rare-branch distributions (Fig. 3);
//! * [`accuracy_spread`] — accuracy spread vs execution count (Fig. 4);
//! * [`cluster_slices`] — SimPoint-style phase clustering (Table I);
//! * [`simpoint`] — representative selection (medoids + weights) for
//!   sampled replay;
//! * [`DependencyAnalysis`] — operand dependency branches and their
//!   history-position distributions (§IV-A, Table III, Fig. 6);
//! * [`compute_alloc_stats`] — TAGE allocation thrashing (§IV-A);
//! * [`RecurrenceAnalysis`] — median recurrence intervals (Fig. 9);
//! * [`RegValueAnalysis`] — register-value distributions (Fig. 10).

#![warn(missing_docs)]

mod accuracy_spread;
mod alloc_stats;
mod depgraph;
mod h2p;
mod heavy_hitters;
mod histograms;
mod phase;
mod profile;
mod recurrence;
mod regvals;
pub mod simpoint;

pub use accuracy_spread::{
    accuracy_spread, accuracy_spread_from_points, spread_points, SpreadBin, SpreadPoint,
};
pub use alloc_stats::{compute_alloc_stats, AllocStats};
pub use depgraph::{DepBranchReport, DependencyAnalysis, DEFAULT_WINDOW};
pub use h2p::{paper_equivalent, H2pCriteria};
pub use heavy_hitters::{rank_heavy_hitters, top_n_fraction, HeavyHitter};
pub use histograms::{BinSpec, Histogram};
pub use phase::{bbv, cluster_slices, kmeans, kmeans_with, KmeansScratch, PhaseConfig, PhaseLabels};
pub use simpoint::{select_simpoints, simpoints_from_profiles, Representative, SimPoints};
pub use profile::{BranchProfile, IpStats};
pub use recurrence::RecurrenceAnalysis;
pub use regvals::{RegValueAnalysis, RegValueDist, PAPER_TRACKED_REGS};
