//! Hard-to-predict (H2P) branch screening — the paper's §III-A criteria.
//!
//! Within each slice, a branch is H2P when it (1) has less than 99%
//! prediction accuracy, (2) executes at least 15,000 times, and
//! (3) generates at least 1,000 mispredictions — counts defined at the
//! paper's 30M-instruction slice length and scaled proportionally here.

use std::collections::HashSet;

use bp_trace::SliceConfig;

use crate::profile::BranchProfile;

/// The screening thresholds, expressed at the paper's 30M-instruction
/// slice scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct H2pCriteria {
    /// Accuracy must be strictly below this (paper: 0.99).
    pub max_accuracy: f64,
    /// Minimum executions per 30M-instruction slice (paper: 15,000).
    pub min_execs_paper: u64,
    /// Minimum mispredictions per 30M-instruction slice (paper: 1,000).
    pub min_mispredicts_paper: u64,
}

impl H2pCriteria {
    /// The paper's §III-A values.
    #[must_use]
    pub fn paper() -> Self {
        H2pCriteria {
            max_accuracy: 0.99,
            min_execs_paper: 15_000,
            min_mispredicts_paper: 1_000,
        }
    }

    /// Minimum executions at the given slice length.
    #[must_use]
    pub fn min_execs(&self, slice: SliceConfig) -> u64 {
        scaled_threshold(self.min_execs_paper, slice)
    }

    /// Minimum mispredictions at the given slice length.
    #[must_use]
    pub fn min_mispredicts(&self, slice: SliceConfig) -> u64 {
        scaled_threshold(self.min_mispredicts_paper, slice)
    }

    /// Screens a per-slice profile, returning the H2P branch IPs (sorted
    /// for determinism).
    #[must_use]
    pub fn screen(&self, profile: &BranchProfile, slice: SliceConfig) -> Vec<u64> {
        let min_execs = self.min_execs(slice);
        let min_miss = self.min_mispredicts(slice);
        let mut ips: Vec<u64> = profile
            .iter()
            .filter(|(_, s)| {
                s.accuracy() < self.max_accuracy
                    && s.execs >= min_execs
                    && s.mispredicts >= min_miss
            })
            .map(|(ip, _)| ip)
            .collect();
        ips.sort_unstable();
        ips
    }

    /// Screens and returns a set, for membership tests.
    #[must_use]
    pub fn screen_set(&self, profile: &BranchProfile, slice: SliceConfig) -> HashSet<u64> {
        self.screen(profile, slice).into_iter().collect()
    }
}

impl Default for H2pCriteria {
    fn default() -> Self {
        Self::paper()
    }
}

/// Scales a count threshold defined at the paper's 30M slice to `slice`,
/// rounding up and never below 1.
fn scaled_threshold(paper_value: u64, slice: SliceConfig) -> u64 {
    let scaled = (paper_value as f64 * slice.paper_scale()).ceil() as u64;
    scaled.max(1)
}

/// Converts an observed count to its 30M-instruction "paper-equivalent",
/// used so histogram bins and Fig. 8 exec-count thresholds can keep the
/// paper's axis labels at any trace scale.
#[must_use]
pub fn paper_equivalent(count: u64, window_len: u64) -> f64 {
    if window_len == 0 {
        0.0
    } else {
        count as f64 * SliceConfig::PAPER_LEN as f64 / window_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::AlwaysTaken;
    use bp_trace::RetiredInst;

    fn profile_from(spec: &[(u64, u64, u64)]) -> BranchProfile {
        // (ip, taken_count, not_taken_count) under AlwaysTaken: mispredicts
        // equal the not-taken count.
        let mut insts = Vec::new();
        for &(ip, t, nt) in spec {
            for _ in 0..t {
                insts.push(RetiredInst::cond_branch(ip, true, 0, None, None));
            }
            for _ in 0..nt {
                insts.push(RetiredInst::cond_branch(ip, false, 0, None, None));
            }
        }
        BranchProfile::collect(&mut AlwaysTaken, &insts)
    }

    #[test]
    fn thresholds_scale_with_slice_length() {
        let c = H2pCriteria::paper();
        let paper_slice = SliceConfig::new(SliceConfig::PAPER_LEN);
        assert_eq!(c.min_execs(paper_slice), 15_000);
        assert_eq!(c.min_mispredicts(paper_slice), 1_000);
        let small = SliceConfig::new(300_000); // 1/100 of 30M
        assert_eq!(c.min_execs(small), 150);
        assert_eq!(c.min_mispredicts(small), 10);
        let tiny = SliceConfig::new(100);
        assert_eq!(c.min_mispredicts(tiny), 1); // floor at 1
    }

    #[test]
    fn screen_applies_all_three_criteria() {
        let slice = SliceConfig::new(300_000); // min execs 150, min miss 10
        // A: enough execs, enough mispredicts, low accuracy -> H2P.
        // B: high accuracy (99.5%) -> excluded.
        // C: too few execs -> excluded.
        // D: enough execs but too few mispredicts -> excluded.
        let p = profile_from(&[
            (0xA, 150, 50),
            (0xB, 995, 5),
            (0xC, 10, 40),
            (0xD, 400, 4),
        ]);
        let h2ps = H2pCriteria::paper().screen(&p, slice);
        assert_eq!(h2ps, vec![0xA]);
    }

    #[test]
    fn boundary_accuracy_is_excluded() {
        let slice = SliceConfig::new(300_000);
        // Exactly 99.0% accuracy must NOT pass the "< 99%" test.
        let p = profile_from(&[(0xE, 990, 10)]);
        assert!(H2pCriteria::paper().screen(&p, slice).is_empty());
    }

    #[test]
    fn paper_equivalent_scaling() {
        assert!((paper_equivalent(10, 2_000_000) - 150.0).abs() < 1e-9);
        assert!((paper_equivalent(0, 100) - 0.0).abs() < 1e-12);
        assert_eq!(paper_equivalent(5, 0), 0.0);
    }

    #[test]
    fn screen_set_matches_screen() {
        let slice = SliceConfig::new(300_000);
        let p = profile_from(&[(0xA, 150, 50), (0xB, 150, 60)]);
        let v = H2pCriteria::paper().screen(&p, slice);
        let s = H2pCriteria::paper().screen_set(&p, slice);
        assert_eq!(v.len(), s.len());
        assert!(v.iter().all(|ip| s.contains(ip)));
    }
}
