//! Histogram binning matching the paper's figure axes.
//!
//! Fig. 3 plots distributions of dynamic mispredictions, dynamic
//! executions, and prediction accuracy over static branch IPs; Fig. 9 the
//! median recurrence interval. All count axes use the paper's bin labels;
//! observed counts are converted to 30M-instruction "paper equivalents"
//! (see [`crate::paper_equivalent`]) so the labels remain meaningful at
//! any trace scale.

/// A labeled histogram over static branch IPs, storing the *fraction* of
/// IPs per bin (the paper plots log-scale fractions).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    labels: Vec<String>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        Histogram {
            labels,
            counts: vec![0; n],
            total: 0,
        }
    }

    fn add(&mut self, bin: usize) {
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Bin labels, in order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw count per bin.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of the population per bin (zeros when empty).
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| {
                if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                }
            })
            .collect()
    }

    /// Total population size.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction in the bin with the given label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not exist.
    #[must_use]
    pub fn fraction_of(&self, label: &str) -> f64 {
        let i = self
            .labels
            .iter()
            .position(|l| l == label)
            .unwrap_or_else(|| panic!("no bin labeled {label}"));
        self.fractions()[i]
    }
}

/// Bin edges (upper bounds, exclusive) with human labels, mirroring the
/// paper's x-axes.
#[derive(Clone, Debug)]
pub struct BinSpec {
    uppers: Vec<f64>,
    labels: Vec<String>,
}

impl BinSpec {
    /// Builds a bin spec from `(upper_bound, label)` pairs; values at or
    /// above the last bound land in the final overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[(f64, &str)], overflow_label: &str) -> Self {
        assert!(!bounds.is_empty(), "need at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0].0 < w[1].0),
            "bounds must be strictly increasing"
        );
        let mut uppers: Vec<f64> = bounds.iter().map(|b| b.0).collect();
        let mut labels: Vec<String> = bounds.iter().map(|b| b.1.to_owned()).collect();
        uppers.push(f64::INFINITY);
        labels.push(overflow_label.to_owned());
        BinSpec { uppers, labels }
    }

    /// Fig. 3 (left): dynamic mispredictions per static branch.
    #[must_use]
    pub fn mispredictions() -> Self {
        BinSpec::new(
            &[
                (1.0, "0-1"),
                (10.0, "1-10"),
                (50.0, "10-50"),
                (100.0, "50-100"),
                (500.0, "100-500"),
                (1_000.0, "500-1K"),
            ],
            "1K-5K",
        )
    }

    /// Fig. 3 (middle): dynamic executions per static branch.
    #[must_use]
    pub fn executions() -> Self {
        BinSpec::new(
            &[
                (100.0, "0-100"),
                (1_000.0, "100-1K"),
                (10_000.0, "1K-10K"),
                (100_000.0, "10K-100K"),
            ],
            "100K-1M",
        )
    }

    /// Fig. 3 (right): prediction accuracy per static branch.
    #[must_use]
    pub fn accuracy() -> Self {
        BinSpec::new(
            &[
                (0.10, "0.00-0.10"),
                (0.20, "0.10-0.20"),
                (0.30, "0.20-0.30"),
                (0.40, "0.30-0.40"),
                (0.50, "0.40-0.50"),
                (0.60, "0.50-0.60"),
                (0.70, "0.60-0.70"),
                (0.80, "0.70-0.80"),
                (0.90, "0.80-0.90"),
                (0.99, "0.90-0.99"),
            ],
            "0.99-1",
        )
    }

    /// Fig. 9: median recurrence interval (instructions).
    #[must_use]
    pub fn recurrence_interval() -> Self {
        BinSpec::new(
            &[
                (1.0, "0-1"),
                (100.0, "1-100"),
                (1_000.0, "100-1K"),
                (10_000.0, "1K-10K"),
                (100_000.0, "10K-100K"),
                (1_000_000.0, "100K-1M"),
                (2_000_000.0, "1M-2M"),
                (4_000_000.0, "2M-4M"),
                (8_000_000.0, "4M-8M"),
                (16_000_000.0, "8M-16M"),
            ],
            "16M-32M",
        )
    }

    /// Number of bins (including overflow).
    #[must_use]
    pub fn len(&self) -> usize {
        self.uppers.len()
    }

    /// True if the spec has no bins (never true for built-ins).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uppers.is_empty()
    }

    fn bin_of(&self, value: f64) -> usize {
        self.uppers
            .iter()
            .position(|&u| value < u)
            .unwrap_or(self.uppers.len() - 1)
    }

    /// Builds a histogram over `values`.
    #[must_use]
    pub fn histogram(&self, values: impl Iterator<Item = f64>) -> Histogram {
        let mut h = Histogram::new(self.labels.clone());
        for v in values {
            h.add(self.bin_of(v));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let spec = BinSpec::executions();
        let h = spec.histogram([0.0, 50.0, 99.9, 100.0, 999.0, 5e5, 1e9].into_iter());
        assert_eq!(h.total(), 7);
        assert_eq!(h.counts()[0], 3); // 0, 50, 99.9
        assert_eq!(h.counts()[1], 2); // 100, 999
        assert_eq!(h.counts()[4], 2); // 5e5 and the out-of-range 1e9
    }

    #[test]
    fn fractions_sum_to_one() {
        let spec = BinSpec::accuracy();
        let h = spec.histogram((0..100).map(|i| i as f64 / 100.0));
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_edge_cases() {
        let spec = BinSpec::accuracy();
        let h = spec.histogram([0.99, 1.0, 0.989].into_iter());
        assert_eq!(h.fraction_of("0.99-1"), 2.0 / 3.0);
        assert!((h.fraction_of("0.90-0.99") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let spec = BinSpec::mispredictions();
        let h = spec.histogram(std::iter::empty());
        assert_eq!(h.total(), 0);
        assert!(h.fractions().iter().all(|&f| f == 0.0));
    }

    #[test]
    #[should_panic(expected = "no bin labeled")]
    fn unknown_label_panics() {
        let spec = BinSpec::mispredictions();
        let h = spec.histogram(std::iter::empty());
        let _ = h.fraction_of("nope");
    }

    #[test]
    fn recurrence_bins_cover_paper_axis() {
        let spec = BinSpec::recurrence_interval();
        assert_eq!(spec.len(), 11);
        let h = spec.histogram([5e5, 3e6, 2.5e7].into_iter());
        assert_eq!(h.fraction_of("100K-1M"), 1.0 / 3.0);
        assert_eq!(h.fraction_of("2M-4M"), 1.0 / 3.0);
        assert_eq!(h.fraction_of("16M-32M"), 1.0 / 3.0);
    }
}
