//! Fig. 4: rare branches have a wide spread in prediction accuracy.
//!
//! (a) scatters per-branch dynamic execution count against accuracy;
//! (b) bins branches by execution count (bin width 100 at paper scale) and
//! reports the standard deviation of accuracy within each bin.

use crate::h2p::paper_equivalent;
use crate::profile::BranchProfile;

/// One scatter point of Fig. 4a.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadPoint {
    /// Static branch IP.
    pub ip: u64,
    /// Dynamic executions, in 30M-instruction paper equivalents.
    pub execs_equivalent: f64,
    /// Prediction accuracy.
    pub accuracy: f64,
}

/// One bin of Fig. 4b.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadBin {
    /// Inclusive lower bound of the bin (paper-equivalent executions).
    pub lo: f64,
    /// Number of branches in the bin.
    pub n: usize,
    /// Mean accuracy in the bin.
    pub mean: f64,
    /// Standard deviation of accuracy in the bin.
    pub stddev: f64,
}

/// Extracts the Fig. 4a scatter from a profile.
#[must_use]
pub fn spread_points(profile: &BranchProfile) -> Vec<SpreadPoint> {
    let window = profile.instructions;
    let mut pts: Vec<SpreadPoint> = profile
        .iter()
        .map(|(ip, s)| SpreadPoint {
            ip,
            execs_equivalent: paper_equivalent(s.execs, window),
            accuracy: s.accuracy(),
        })
        .collect();
    pts.sort_by_key(|a| a.ip);
    pts
}

/// Bins Fig. 4a points by execution count and computes the per-bin
/// standard deviation of accuracy (Fig. 4b). `bin_width` is in
/// paper-equivalent executions (the paper uses 100); `max_execs` bounds
/// the binned range (the paper plots up to ~15,000).
///
/// # Panics
///
/// Panics if `bin_width` is not positive.
///
/// # Examples
///
/// ```
/// use bp_analysis::{accuracy_spread, BranchProfile};
/// use bp_predictors::TageScL;
/// use bp_workloads::lcf_suite;
///
/// let trace = lcf_suite()[1].trace(0, 30_000);
/// let profile = BranchProfile::collect(&mut TageScL::kb8(), trace.insts());
/// let bins = accuracy_spread(&profile, 100.0, 15_000.0);
/// assert!(!bins.is_empty());
/// ```
#[must_use]
pub fn accuracy_spread(profile: &BranchProfile, bin_width: f64, max_execs: f64) -> Vec<SpreadBin> {
    accuracy_spread_from_points(&spread_points(profile), bin_width, max_execs)
}

/// Bins an arbitrary set of Fig. 4a points (e.g. pooled across several
/// applications, as the paper does for the LCF dataset).
///
/// # Panics
///
/// Panics if `bin_width` is not positive.
#[must_use]
pub fn accuracy_spread_from_points(
    points: &[SpreadPoint],
    bin_width: f64,
    max_execs: f64,
) -> Vec<SpreadBin> {
    assert!(bin_width > 0.0, "bin width must be positive");
    let nbins = (max_execs / bin_width).ceil() as usize;
    let mut sums = vec![(0usize, 0.0f64, 0.0f64); nbins]; // (n, sum, sum_sq)
    for p in points {
        let bin = (p.execs_equivalent / bin_width) as usize;
        if bin < nbins {
            let (n, s, s2) = &mut sums[bin];
            *n += 1;
            *s += p.accuracy;
            *s2 += p.accuracy * p.accuracy;
        }
    }
    sums.into_iter()
        .enumerate()
        .filter(|(_, (n, _, _))| *n > 0)
        .map(|(i, (n, s, s2))| {
            let mean = s / n as f64;
            let var = (s2 / n as f64 - mean * mean).max(0.0);
            SpreadBin {
                lo: i as f64 * bin_width,
                n,
                mean,
                stddev: var.sqrt(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::AlwaysTaken;
    use bp_trace::RetiredInst;

    /// Builds a profile where IP `ip` executes `n` times with `t` taken.
    fn profile(spec: &[(u64, u64, u64)], pad_instructions: u64) -> BranchProfile {
        let mut insts = Vec::new();
        for &(ip, taken, not_taken) in spec {
            for _ in 0..taken {
                insts.push(RetiredInst::cond_branch(ip, true, 0, None, None));
            }
            for _ in 0..not_taken {
                insts.push(RetiredInst::cond_branch(ip, false, 0, None, None));
            }
        }
        let mut p = BranchProfile::collect(&mut AlwaysTaken, &insts);
        p.instructions += pad_instructions;
        p
    }

    #[test]
    fn points_report_paper_equivalents() {
        // Window of 3M instructions => scale x10.
        let p = profile(&[(0x1, 5, 5)], 3_000_000 - 10);
        let pts = spread_points(&p);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].execs_equivalent - 100.0).abs() < 1e-6);
        assert!((pts[0].accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn low_exec_bins_have_higher_spread() {
        // Rare branches with wildly different accuracies; frequent branches
        // all accurate.
        let mut spec = Vec::new();
        for i in 0..20u64 {
            // Rare: 4 execs each, accuracy alternating 0 or 1.
            if i % 2 == 0 {
                spec.push((0x100 + i, 4, 0)); // all taken: acc 1.0
            } else {
                spec.push((0x100 + i, 0, 4)); // all not-taken: acc 0.0
            }
        }
        for i in 0..10u64 {
            spec.push((0x900 + i, 600, 0)); // frequent, acc 1.0
        }
        let total: u64 = spec.iter().map(|s| s.1 + s.2).sum();
        let p = profile(&spec, 30_000_000 - total);
        let bins = accuracy_spread(&p, 100.0, 15_000.0);
        let first = bins.iter().find(|b| b.lo == 0.0).unwrap();
        let later = bins.iter().find(|b| b.lo >= 500.0).unwrap();
        assert!(
            first.stddev > 0.4,
            "rare bin stddev {} should be large",
            first.stddev
        );
        assert!(
            later.stddev < 0.05,
            "frequent bin stddev {} should be small",
            later.stddev
        );
    }

    #[test]
    fn out_of_range_execs_are_ignored() {
        let p = profile(&[(0x1, 1000, 0)], 0);
        // Window = 1000 instructions -> equivalent execs = 30M >> max.
        let bins = accuracy_spread(&p, 100.0, 15_000.0);
        assert!(bins.is_empty());
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_width_panics() {
        let p = BranchProfile::new();
        let _ = accuracy_spread(&p, 0.0, 100.0);
    }
}
