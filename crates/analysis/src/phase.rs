//! SimPoint-style phase clustering (Sherwood et al.), used by Table I's
//! "Avg # Phases", by phase-conditioned helper predictors (§V-B), and —
//! through [`crate::simpoint`] — by the sampled-replay path.
//!
//! Each slice is summarized by a basic-block-vector (BBV) analogue — a
//! normalized frequency vector of branch IPs hashed into a fixed number of
//! dimensions — and slices are clustered with deterministic k-means using
//! farthest-first seeding. The number of phases is chosen by the elbow
//! criterion: the smallest k whose incremental distortion improvement
//! falls below a threshold. Feature extraction is streamed: slices become
//! [`bp_trace::IntervalProfile`]s computed block-wise off a
//! [`bp_trace::TraceReader`], so clustering a trace never materializes it.
//!
//! # Determinism contract
//!
//! Clustering is bit-reproducible across runs, platforms, and thread
//! counts. The contract, which [`kmeans`] and every consumer rely on:
//!
//! * **Seeding** is farthest-first starting from point 0. Each further
//!   seed maximizes the running minimum squared distance to the chosen
//!   seeds; among equally-far candidates the *highest* index wins
//!   (matching `Iterator::max_by`, which keeps the last maximum).
//! * **Assignment** scans centroids in index order and keeps the
//!   *lowest*-index centroid among equally-near ones (matching
//!   `Iterator::min_by`, which keeps the first minimum).
//! * **Comparisons** use `f64::total_cmp`, so ties and signed zeros
//!   order identically everywhere; accumulation order (points in slice
//!   order, coordinates in dimension order) is fixed, so floating-point
//!   sums are bit-stable.
//! * **Labels** from [`cluster_slices`] are renumbered densely in order
//!   of first appearance.
//!
//! The reusable scratch buffers ([`KmeansScratch`]) change none of this:
//! they hold the same intermediate values the per-iteration allocations
//! used to, in the same order.

use bp_trace::{profile_intervals, RetiredInst, SliceConfig, Trace};

/// Parameters for phase clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseConfig {
    /// BBV dimensionality (branch IPs are hashed into this many buckets).
    pub dims: usize,
    /// Maximum number of phases considered.
    pub max_phases: usize,
    /// Elbow threshold: stop adding clusters when relative distortion
    /// improvement drops below this.
    pub improvement_threshold: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            dims: 64,
            max_phases: 16,
            improvement_threshold: 0.05,
        }
    }
}

/// Result of clustering a trace's slices into phases.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseLabels {
    /// Phase id per slice, in slice order.
    pub labels: Vec<usize>,
    /// Number of distinct phases found.
    pub num_phases: usize,
}

/// Computes the normalized branch-frequency vector of one slice.
///
/// The bucket function is [`bp_trace::bbv_bucket`] — the same one the
/// streamed [`bp_trace::profile_intervals`] extractor uses, so in-memory
/// and streamed features are bit-identical by construction.
#[must_use]
pub fn bbv(insts: &[RetiredInst], dims: usize) -> Vec<f64> {
    assert!(dims > 0, "dims must be positive");
    let mut v = vec![0.0f64; dims];
    let mut total = 0.0f64;
    for inst in insts {
        if inst.is_conditional_branch() {
            v[bp_trace::bbv_bucket(inst.ip, dims)] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for x in &mut v {
            *x /= total;
        }
    }
    v
}

pub(crate) fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Reusable buffers for [`kmeans_with`]: centroids, the farthest-first
/// running minimum distances, and the per-iteration accumulation sums.
///
/// One scratch serves any number of clusterings (the elbow loop reuses
/// it across every trial k); buffers grow to the largest problem seen
/// and are overwritten, never reallocated, on reuse.
#[derive(Default)]
pub struct KmeansScratch {
    /// Flattened `k × dims` centroid matrix.
    centroids: Vec<f64>,
    /// Per-point minimum squared distance to the seeds chosen so far.
    min_dist: Vec<f64>,
    /// Flattened `k × dims` coordinate sums for the update step.
    sums: Vec<f64>,
    /// Per-cluster member counts for the update step.
    counts: Vec<usize>,
}

impl KmeansScratch {
    /// An empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        KmeansScratch::default()
    }
}

/// Deterministic k-means with farthest-first initialization. Returns the
/// per-point labels and the final distortion (sum of squared distances to
/// assigned centroids).
///
/// Allocates fresh scratch; hot paths (the elbow loop, sampled-replay
/// planning) should hold a [`KmeansScratch`] and call [`kmeans_with`].
/// See the module docs for the determinism contract.
///
/// # Panics
///
/// Panics if `k` is zero or greater than the number of points, or points
/// have inconsistent dimensionality.
#[must_use]
pub fn kmeans(points: &[Vec<f64>], k: usize, iters: usize) -> (Vec<usize>, f64) {
    kmeans_with(points, k, iters, &mut KmeansScratch::new())
}

/// [`kmeans`] against caller-owned scratch buffers: bit-identical
/// results, no per-iteration allocation.
///
/// # Panics
///
/// Panics if `k` is zero or greater than the number of points, or points
/// have inconsistent dimensionality.
#[must_use]
pub fn kmeans_with(
    points: &[Vec<f64>],
    k: usize,
    iters: usize,
    scratch: &mut KmeansScratch,
) -> (Vec<usize>, f64) {
    assert!(k >= 1 && k <= points.len(), "k must be in 1..=#points");
    let dims = points[0].len();
    assert!(points.iter().all(|p| p.len() == dims), "dim mismatch");

    // Farthest-first seeding from point 0. `min_dist` carries each
    // point's distance to its nearest chosen seed, updated incrementally
    // — the same running minimum the fold over all seeds produced.
    scratch.centroids.clear();
    scratch.centroids.extend_from_slice(&points[0]);
    scratch.min_dist.clear();
    scratch.min_dist.extend(points.iter().map(|p| dist2(p, &points[0])));
    let mut seeds = 1;
    while seeds < k {
        let mut far = (0usize, f64::NEG_INFINITY);
        for (i, &d) in scratch.min_dist.iter().enumerate() {
            // `!= Less` keeps the last maximum, as `max_by` did.
            if d.total_cmp(&far.1) != std::cmp::Ordering::Less {
                far = (i, d);
            }
        }
        scratch.centroids.extend_from_slice(&points[far.0]);
        seeds += 1;
        let new = &scratch.centroids[(seeds - 1) * dims..seeds * dims];
        for (slot, p) in scratch.min_dist.iter_mut().zip(points) {
            *slot = slot.min(dist2(p, new));
        }
    }

    let mut labels = vec![0usize; points.len()];
    scratch.sums.clear();
    scratch.sums.resize(k * dims, 0.0);
    scratch.counts.clear();
    scratch.counts.resize(k, 0);
    for _ in 0..iters {
        // Assign: first-minimum centroid in index order.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = dist2(p, &scratch.centroids[..dims]);
            for c in 1..k {
                let d = dist2(p, &scratch.centroids[c * dims..(c + 1) * dims]);
                if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
                    best = c;
                    best_d = d;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update: accumulate in point order, coordinate order.
        scratch.sums.iter_mut().for_each(|s| *s = 0.0);
        scratch.counts.iter_mut().for_each(|c| *c = 0);
        for (p, &l) in points.iter().zip(&labels) {
            scratch.counts[l] += 1;
            for (s, x) in scratch.sums[l * dims..(l + 1) * dims].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if scratch.counts[c] > 0 {
                let sums = &scratch.sums[c * dims..(c + 1) * dims];
                for (ci, s) in scratch.centroids[c * dims..(c + 1) * dims].iter_mut().zip(sums) {
                    *ci = s / scratch.counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let distortion = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| dist2(p, &scratch.centroids[l * dims..(l + 1) * dims]))
        .sum();
    (labels, distortion)
}

/// Clusters the slices of `trace` into phases.
///
/// Features are extracted by the streamed profiler
/// ([`bp_trace::profile_intervals`]) over the trace's reader; the phase
/// count and labels are selected by [`crate::simpoint::elbow_labels`].
/// Output is bit-identical to the historical materialized-slice path.
///
/// # Examples
///
/// ```
/// use bp_analysis::{cluster_slices, PhaseConfig};
/// use bp_trace::SliceConfig;
/// use bp_workloads::specint_suite;
///
/// let spec = &specint_suite()[0];
/// let trace = spec.trace(0, 200_000);
/// let phases = cluster_slices(&trace, SliceConfig::new(20_000), PhaseConfig::default());
/// assert_eq!(phases.labels.len(), 10);
/// assert!(phases.num_phases >= 1);
/// ```
#[must_use]
pub fn cluster_slices(trace: &Trace, slice: SliceConfig, config: PhaseConfig) -> PhaseLabels {
    let profiles = profile_intervals(trace.reader(), slice.len(), config.dims)
        .expect("in-memory reader cannot fail");
    let points: Vec<Vec<f64>> = profiles.iter().map(bp_trace::IntervalProfile::normalized_bbv).collect();
    let (labels, num_phases) = crate::simpoint::elbow_labels(&points, &config);
    PhaseLabels { labels, num_phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbv_is_normalized() {
        let insts: Vec<RetiredInst> = (0..50)
            .map(|i| RetiredInst::cond_branch(0x100 + (i % 5) * 4, true, 0, None, None))
            .collect();
        let v = bbv(&insts, 16);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bbv_empty_slice_is_zero() {
        let v = bbv(&[], 8);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + i as f64 * 0.01, 0.0]);
        }
        let (labels, distortion) = kmeans(&pts, 2, 50);
        // Even indices in one cluster, odd in the other.
        let l0 = labels[0];
        assert!(labels.iter().step_by(2).all(|&l| l == l0));
        assert!(labels.iter().skip(1).step_by(2).all(|&l| l != l0));
        assert!(distortion < 1.0);
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&pts, 3, 30);
        let b = kmeans(&pts, 3, 30);
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch driven through ascending k must reproduce the
        // fresh-scratch result exactly — the elbow loop depends on it.
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 11) as f64 * 0.3, (i % 5) as f64, (i % 3) as f64 * 2.0])
            .collect();
        let mut scratch = KmeansScratch::new();
        for k in 1..=6 {
            let reused = kmeans_with(&pts, k, 25, &mut scratch);
            let fresh = kmeans(&pts, k, 25);
            assert_eq!(reused.0, fresh.0, "k={k}");
            assert_eq!(reused.1.to_bits(), fresh.1.to_bits(), "k={k}");
        }
    }

    #[test]
    fn elbow_finds_synthetic_phase_count() {
        // 3 well-separated, internally-tight blobs of 8 points each.
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..8 {
                pts.push(vec![c as f64 * 100.0 + (i % 2) as f64 * 0.001, c as f64 * 50.0]);
            }
        }
        // Emulate cluster_slices' selection loop directly.
        let cfg = PhaseConfig::default();
        let base = kmeans(&pts, 1, 20).1;
        let mut prev = base;
        let mut chosen = 1;
        for k in 2..=6 {
            let (_, d) = kmeans(&pts, k, 20);
            let imp = (prev - d) / base.max(1e-12);
            if imp < cfg.improvement_threshold {
                break;
            }
            prev = d;
            chosen = k;
        }
        assert_eq!(chosen, 3);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn kmeans_rejects_bad_k() {
        let _ = kmeans(&[vec![0.0]], 2, 5);
    }
}
