//! SimPoint-style phase clustering (Sherwood et al.), used by Table I's
//! "Avg # Phases" and by phase-conditioned helper predictors (§V-B).
//!
//! Each slice is summarized by a basic-block-vector (BBV) analogue — a
//! normalized frequency vector of branch IPs hashed into a fixed number of
//! dimensions — and slices are clustered with deterministic k-means using
//! farthest-first seeding. The number of phases is chosen by the elbow
//! criterion: the smallest k whose incremental distortion improvement
//! falls below a threshold.

use bp_trace::{RetiredInst, SliceConfig, Trace};

/// Parameters for phase clustering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseConfig {
    /// BBV dimensionality (branch IPs are hashed into this many buckets).
    pub dims: usize,
    /// Maximum number of phases considered.
    pub max_phases: usize,
    /// Elbow threshold: stop adding clusters when relative distortion
    /// improvement drops below this.
    pub improvement_threshold: f64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            dims: 64,
            max_phases: 16,
            improvement_threshold: 0.05,
        }
    }
}

/// Result of clustering a trace's slices into phases.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseLabels {
    /// Phase id per slice, in slice order.
    pub labels: Vec<usize>,
    /// Number of distinct phases found.
    pub num_phases: usize,
}

/// Computes the normalized branch-frequency vector of one slice.
#[must_use]
pub fn bbv(insts: &[RetiredInst], dims: usize) -> Vec<f64> {
    assert!(dims > 0, "dims must be positive");
    let mut v = vec![0.0f64; dims];
    let mut total = 0.0f64;
    for inst in insts {
        if inst.is_conditional_branch() {
            // Multiplicative hash of the IP into a bucket.
            let h = (inst.ip >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            v[(h >> 32) as usize % dims] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for x in &mut v {
            *x /= total;
        }
    }
    v
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic k-means with farthest-first initialization. Returns the
/// per-point labels and the final distortion (sum of squared distances to
/// assigned centroids).
///
/// # Panics
///
/// Panics if `k` is zero or greater than the number of points, or points
/// have inconsistent dimensionality.
#[must_use]
pub fn kmeans(points: &[Vec<f64>], k: usize, iters: usize) -> (Vec<usize>, f64) {
    assert!(k >= 1 && k <= points.len(), "k must be in 1..=#points");
    let dims = points[0].len();
    assert!(points.iter().all(|p| p.len() == dims), "dim mismatch");

    // Farthest-first seeding from point 0 (deterministic).
    let mut centroids: Vec<Vec<f64>> = vec![points[0].clone()];
    while centroids.len() < k {
        let (far_idx, _) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty points");
        centroids.push(points[far_idx].clone());
    }

    let mut labels = vec![0usize; points.len()];
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist2(p, &centroids[a]).total_cmp(&dist2(p, &centroids[b])))
                .expect("k >= 1");
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, x) in sums[l].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (ci, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *ci = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let distortion = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| dist2(p, &centroids[l]))
        .sum();
    (labels, distortion)
}

/// Clusters the slices of `trace` into phases.
///
/// # Examples
///
/// ```
/// use bp_analysis::{cluster_slices, PhaseConfig};
/// use bp_trace::SliceConfig;
/// use bp_workloads::specint_suite;
///
/// let spec = &specint_suite()[0];
/// let trace = spec.trace(0, 200_000);
/// let phases = cluster_slices(&trace, SliceConfig::new(20_000), PhaseConfig::default());
/// assert_eq!(phases.labels.len(), 10);
/// assert!(phases.num_phases >= 1);
/// ```
#[must_use]
pub fn cluster_slices(trace: &Trace, slice: SliceConfig, config: PhaseConfig) -> PhaseLabels {
    let points: Vec<Vec<f64>> = trace.slices(slice).map(|s| bbv(s, config.dims)).collect();
    if points.is_empty() {
        return PhaseLabels {
            labels: Vec::new(),
            num_phases: 0,
        };
    }
    let kmax = config.max_phases.min(points.len());
    let mut best = kmeans(&points, 1, 20);
    let base_distortion = best.1;
    let mut prev_distortion = best.1;
    for k in 2..=kmax {
        let trial = kmeans(&points, k, 20);
        // Scree test: improvement is measured against the k=1 distortion,
        // so self-similar micro-structure inside tight clusters does not
        // keep splitting forever.
        let improvement = if base_distortion > 0.0 {
            (prev_distortion - trial.1) / base_distortion
        } else {
            0.0
        };
        if improvement < config.improvement_threshold {
            break;
        }
        prev_distortion = trial.1;
        best = trial;
    }
    // Renumber labels densely in order of first appearance.
    let mut remap = std::collections::HashMap::new();
    let mut labels = Vec::with_capacity(best.0.len());
    for l in best.0 {
        let next = remap.len();
        labels.push(*remap.entry(l).or_insert(next));
    }
    PhaseLabels {
        labels,
        num_phases: remap.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbv_is_normalized() {
        let insts: Vec<RetiredInst> = (0..50)
            .map(|i| RetiredInst::cond_branch(0x100 + (i % 5) * 4, true, 0, None, None))
            .collect();
        let v = bbv(&insts, 16);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bbv_empty_slice_is_zero() {
        let v = bbv(&[], 8);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + i as f64 * 0.01, 0.0]);
        }
        let (labels, distortion) = kmeans(&pts, 2, 50);
        // Even indices in one cluster, odd in the other.
        let l0 = labels[0];
        assert!(labels.iter().step_by(2).all(|&l| l == l0));
        assert!(labels.iter().skip(1).step_by(2).all(|&l| l != l0));
        assert!(distortion < 1.0);
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&pts, 3, 30);
        let b = kmeans(&pts, 3, 30);
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    #[test]
    fn elbow_finds_synthetic_phase_count() {
        // 3 well-separated, internally-tight blobs of 8 points each.
        let mut pts = Vec::new();
        for c in 0..3 {
            for i in 0..8 {
                pts.push(vec![c as f64 * 100.0 + (i % 2) as f64 * 0.001, c as f64 * 50.0]);
            }
        }
        // Emulate cluster_slices' selection loop directly.
        let cfg = PhaseConfig::default();
        let base = kmeans(&pts, 1, 20).1;
        let mut prev = base;
        let mut chosen = 1;
        for k in 2..=6 {
            let (_, d) = kmeans(&pts, k, 20);
            let imp = (prev - d) / base.max(1e-12);
            if imp < cfg.improvement_threshold {
                break;
            }
            prev = d;
            chosen = k;
        }
        assert_eq!(chosen, 3);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn kmeans_rejects_bad_k() {
        let _ = kmeans(&[vec![0.0]], 2, 5);
    }
}
