//! SimPoint representative selection: elbow-selected clustering plus
//! medoid-per-cluster extraction (Sherwood et al., "Automatically
//! Characterizing Large Scale Program Behavior").
//!
//! The phase studies ([`crate::cluster_slices`]) and the sampled-replay
//! planner both consume this module: the former takes the elbow-selected
//! labels, the latter additionally takes one *representative* interval
//! per cluster (the medoid — the member minimizing total squared
//! distance to its cluster) plus the cluster weights that turn
//! per-representative measurements back into whole-trace estimates.
//!
//! Everything here inherits the determinism contract documented in the
//! `phase` module; the only additional rule is medoid tie-breaking,
//! where the lowest interval index wins.

use bp_trace::IntervalProfile;

use crate::phase::{dist2, kmeans_with, KmeansScratch, PhaseConfig};

/// One cluster's representative interval and its reconstruction weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Representative {
    /// Index of the representative interval in the interval sequence.
    pub interval: usize,
    /// Dense cluster id (order of first appearance, as in
    /// [`crate::PhaseLabels`]).
    pub cluster: usize,
    /// Number of intervals in the cluster.
    pub cluster_size: usize,
    /// The cluster's share of all intervals (weights sum to 1).
    pub weight: f64,
    /// Mean Euclidean BBV distance from cluster members to the medoid —
    /// a dispersion measure the error bars scale with.
    pub spread: f64,
}

/// Elbow-selected clustering plus one [`Representative`] per cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct SimPoints {
    /// Dense cluster id per interval, in interval order.
    pub labels: Vec<usize>,
    /// Number of clusters (phases) selected.
    pub num_phases: usize,
    /// One representative per cluster, indexed by cluster id.
    pub representatives: Vec<Representative>,
}

impl SimPoints {
    /// Total intervals clustered.
    #[must_use]
    pub fn num_intervals(&self) -> usize {
        self.labels.len()
    }
}

/// Elbow-criterion phase selection over BBV points: deterministic
/// k-means at ascending k, stopping when the relative distortion
/// improvement (measured against the k=1 distortion) falls below
/// [`PhaseConfig::improvement_threshold`]. Returns dense labels (first
/// appearance order) and the phase count.
///
/// This is the selection loop [`crate::cluster_slices`] has always run;
/// it lives here so phase studies and sampled replay share one
/// implementation (and one [`KmeansScratch`] across the trial ks).
#[must_use]
pub fn elbow_labels(points: &[Vec<f64>], config: &PhaseConfig) -> (Vec<usize>, usize) {
    if points.is_empty() {
        return (Vec::new(), 0);
    }
    let kmax = config.max_phases.min(points.len());
    let mut scratch = KmeansScratch::new();
    let mut best = kmeans_with(points, 1, 20, &mut scratch);
    let base_distortion = best.1;
    let mut prev_distortion = best.1;
    for k in 2..=kmax {
        let trial = kmeans_with(points, k, 20, &mut scratch);
        // Scree test: improvement is measured against the k=1 distortion,
        // so self-similar micro-structure inside tight clusters does not
        // keep splitting forever.
        let improvement = if base_distortion > 0.0 {
            (prev_distortion - trial.1) / base_distortion
        } else {
            0.0
        };
        if improvement < config.improvement_threshold {
            break;
        }
        prev_distortion = trial.1;
        best = trial;
    }
    // Renumber labels densely in order of first appearance.
    let mut remap = std::collections::HashMap::new();
    let mut labels = Vec::with_capacity(best.0.len());
    for l in best.0 {
        let next = remap.len();
        labels.push(*remap.entry(l).or_insert(next));
    }
    let num = remap.len();
    (labels, num)
}

/// Clusters BBV points and selects one medoid representative per
/// cluster.
///
/// The medoid is the member minimizing the sum of squared distances to
/// every member of its cluster; among ties the lowest interval index
/// wins. Weights are `cluster_size / num_intervals`, so a weighted sum
/// of per-representative measurements estimates the whole-trace value.
#[must_use]
pub fn select_simpoints(points: &[Vec<f64>], config: &PhaseConfig) -> SimPoints {
    let (labels, num_phases) = elbow_labels(points, config);
    let mut representatives = Vec::with_capacity(num_phases);
    for cluster in 0..num_phases {
        let members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == cluster)
            .map(|(i, _)| i)
            .collect();
        let mut medoid = (members[0], f64::INFINITY);
        for &candidate in &members {
            let total: f64 = members.iter().map(|&m| dist2(&points[candidate], &points[m])).sum();
            if total.total_cmp(&medoid.1) == std::cmp::Ordering::Less {
                medoid = (candidate, total);
            }
        }
        let spread = members
            .iter()
            .map(|&m| dist2(&points[medoid.0], &points[m]).sqrt())
            .sum::<f64>()
            / members.len() as f64;
        representatives.push(Representative {
            interval: medoid.0,
            cluster,
            cluster_size: members.len(),
            weight: members.len() as f64 / labels.len() as f64,
            spread,
        });
    }
    SimPoints { labels, num_phases, representatives }
}

/// [`select_simpoints`] over streamed interval profiles, the shape the
/// sampled-replay planner uses: normalize each profile's BBV counts and
/// cluster. Bit-identical to materializing the intervals and calling
/// [`crate::bbv`] on each.
#[must_use]
pub fn simpoints_from_profiles(profiles: &[IntervalProfile], config: &PhaseConfig) -> SimPoints {
    let points: Vec<Vec<f64>> = profiles.iter().map(IntervalProfile::normalized_bbv).collect();
    select_simpoints(&points, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Three tight, well-separated blobs with distinct sizes so the
        // weights are distinguishable: 4 + 8 + 12 points.
        let mut pts = Vec::new();
        for (c, n) in [(0usize, 4usize), (1, 8), (2, 12)] {
            for i in 0..n {
                pts.push(vec![c as f64 * 10.0 + (i % 2) as f64 * 0.01, c as f64 * 5.0]);
            }
        }
        pts
    }

    #[test]
    fn representatives_cover_every_cluster_with_unit_weight() {
        let sp = select_simpoints(&blobs(), &PhaseConfig::default());
        assert_eq!(sp.num_phases, 3);
        assert_eq!(sp.representatives.len(), 3);
        let total: f64 = sp.representatives.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(
            sp.representatives.iter().map(|r| r.cluster_size).sum::<usize>(),
            sp.num_intervals()
        );
        // Each representative belongs to the cluster it represents.
        for rep in &sp.representatives {
            assert_eq!(sp.labels[rep.interval], rep.cluster);
        }
    }

    #[test]
    fn medoid_is_a_member_minimizing_total_distance() {
        let sp = select_simpoints(&blobs(), &PhaseConfig::default());
        let points = blobs();
        for rep in &sp.representatives {
            let members: Vec<usize> = sp
                .labels
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l == rep.cluster)
                .map(|(i, _)| i)
                .collect();
            let cost = |c: usize| -> f64 {
                members.iter().map(|&m| dist2(&points[c], &points[m])).sum()
            };
            let best = cost(rep.interval);
            for &m in &members {
                assert!(best <= cost(m) + 1e-12);
            }
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let a = select_simpoints(&blobs(), &PhaseConfig::default());
        let b = select_simpoints(&blobs(), &PhaseConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_no_phases() {
        let sp = select_simpoints(&[], &PhaseConfig::default());
        assert_eq!(sp.num_phases, 0);
        assert!(sp.representatives.is_empty());
    }

    #[test]
    fn single_cluster_spread_reflects_dispersion() {
        let tight: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 1e-6]).collect();
        let loose: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 1e-2]).collect();
        // Force a single cluster: the elbow test is scale-invariant, so
        // only the spread should differ between the two sets.
        let cfg = PhaseConfig { max_phases: 1, ..PhaseConfig::default() };
        let t = select_simpoints(&tight, &cfg);
        let l = select_simpoints(&loose, &cfg);
        assert_eq!(t.num_phases, 1);
        assert_eq!(l.num_phases, 1);
        assert!(l.representatives[0].spread > t.representatives[0].spread);
    }
}
