//! Operand dependency-graph analysis (§IV-A, Table III, Fig. 6).
//!
//! For every dynamic execution of an H2P branch, the paper computes the
//! operand dependency graph over the prior 5,000 instructions — linking
//! instructions through register and memory read/write chains — and
//! identifies *dependency branches*: earlier conditional branches that
//! read a value also read when computing the H2P's condition. The
//! distribution of those branches' global-history positions shows the
//! position instability that defeats exact pattern matching.

use std::collections::HashMap;

use bp_trace::{Trace, NUM_REGS};

/// How far back (in instructions) the dependency graph extends; the paper
/// uses 5,000.
pub const DEFAULT_WINDOW: usize = 5_000;

/// Aggregated dependency-branch statistics for one H2P (Table III row +
/// Fig. 6 panel).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DepBranchReport {
    /// `(dependency branch IP, history position) -> occurrences`. The
    /// history position is the number of conditional branches between the
    /// dependency branch and the H2P, i.e. its age in global history as
    /// the BPU sees it.
    pub occurrences: HashMap<(u64, usize), u64>,
    /// Dynamic H2P executions analyzed.
    pub executions: u64,
}

impl DepBranchReport {
    /// Number of distinct dependency-branch IPs (Table III "Dep.
    /// Branches").
    #[must_use]
    pub fn dep_branch_count(&self) -> usize {
        let mut ips: Vec<u64> = self.occurrences.keys().map(|&(ip, _)| ip).collect();
        ips.sort_unstable();
        ips.dedup();
        ips.len()
    }

    /// Minimum observed history position (Table III "Min Hist Pos").
    #[must_use]
    pub fn min_position(&self) -> Option<usize> {
        self.occurrences.keys().map(|&(_, p)| p).min()
    }

    /// Maximum observed history position (Table III "Max Hist Pos").
    #[must_use]
    pub fn max_position(&self) -> Option<usize> {
        self.occurrences.keys().map(|&(_, p)| p).max()
    }

    /// Number of distinct history positions a given dependency branch was
    /// observed at — the Fig. 6 instability measure.
    #[must_use]
    pub fn positions_of(&self, dep_ip: u64) -> usize {
        self.occurrences
            .keys()
            .filter(|&&(ip, _)| ip == dep_ip)
            .count()
    }
}

/// Dependency analysis over one trace.
///
/// Builds producer links (which instruction wrote each value read) in one
/// forward pass, then answers per-H2P queries by walking the dataflow
/// graph backwards within the window.
///
/// # Examples
///
/// ```
/// use bp_analysis::DependencyAnalysis;
/// use bp_workloads::specint_suite;
///
/// let spec = &specint_suite()[1]; // mcf-like: H2P-rich
/// let trace = spec.trace(0, 30_000);
/// let dep = DependencyAnalysis::new(&trace);
/// // Analyze the most-executed conditional branch.
/// let mut counts = std::collections::HashMap::new();
/// for b in trace.conditional_branches() {
///     *counts.entry(b.ip).or_insert(0u64) += 1;
/// }
/// let (&ip, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
/// let report = dep.analyze(&trace, ip, 5_000, 256);
/// assert!(report.executions > 0);
/// ```
#[derive(Clone, Debug)]
pub struct DependencyAnalysis {
    /// For each instruction, the indices of the instructions that produced
    /// its register/memory inputs (`usize::MAX` = no producer in trace).
    producers: Vec<[usize; 2]>,
    /// Memory producer for loads (index of the producing store).
    mem_producers: Vec<usize>,
    /// Conditional-branch ordinal per instruction index (how many
    /// conditional branches retired strictly before it).
    branch_ordinal: Vec<u32>,
}

const NONE: usize = usize::MAX;

impl DependencyAnalysis {
    /// Preprocesses `trace` for dependency queries.
    #[must_use]
    pub fn new(trace: &Trace) -> Self {
        let n = trace.len();
        let mut producers = vec![[NONE, NONE]; n];
        let mut mem_producers = vec![NONE; n];
        let mut branch_ordinal = vec![0u32; n];
        let mut last_reg_writer = [NONE; NUM_REGS];
        let mut last_mem_writer: HashMap<u64, usize> = HashMap::new();
        let mut ord = 0u32;
        for (i, inst) in trace.iter().enumerate() {
            branch_ordinal[i] = ord;
            if inst.is_conditional_branch() {
                ord += 1;
            }
            if let Some(r) = inst.src1 {
                producers[i][0] = last_reg_writer[r.index()];
            }
            if let Some(r) = inst.src2 {
                producers[i][1] = last_reg_writer[r.index()];
            }
            match inst.class {
                bp_trace::InstClass::Load => {
                    if let Some(&w) = last_mem_writer.get(&inst.mem_addr) {
                        mem_producers[i] = w;
                    }
                }
                bp_trace::InstClass::Store => {
                    last_mem_writer.insert(inst.mem_addr, i);
                }
                _ => {}
            }
            if let Some(r) = inst.dst {
                last_reg_writer[r.index()] = i;
            }
        }
        DependencyAnalysis {
            producers,
            mem_producers,
            branch_ordinal,
        }
    }

    /// Walks the dependency graph backwards from instruction `root`,
    /// collecting the producer-closure within `window` instructions, then
    /// scans the window's conditional branches for dependency branches.
    fn analyze_execution(
        &self,
        trace: &Trace,
        root: usize,
        window: usize,
        max_nodes: usize,
        report: &mut DepBranchReport,
    ) {
        let lo = root.saturating_sub(window);
        // Closure of producer indices feeding the root's condition.
        let mut in_closure: HashMap<usize, ()> = HashMap::new();
        let mut stack: Vec<usize> = self.producers[root]
            .iter()
            .copied()
            .filter(|&p| p != NONE && p >= lo)
            .collect();
        while let Some(p) = stack.pop() {
            if in_closure.len() >= max_nodes {
                break;
            }
            if in_closure.insert(p, ()).is_some() {
                continue;
            }
            for q in self.producers[p]
                .iter()
                .copied()
                .chain(std::iter::once(self.mem_producers[p]))
            {
                if q != NONE && q >= lo && !in_closure.contains_key(&q) {
                    stack.push(q);
                }
            }
        }
        // A conditional branch in the window is a dependency branch when
        // its own backward slice reaches a value also read when computing
        // the H2P's condition. We chase each branch's producers a bounded
        // number of hops and test membership in the root closure.
        let root_ord = self.branch_ordinal[root];
        for (j, inst) in trace.insts()[lo..root].iter().enumerate() {
            let idx = lo + j;
            if !inst.is_conditional_branch() {
                continue;
            }
            if self.reaches_closure(idx, lo, &in_closure) {
                // History position: 1 = the branch immediately before.
                let pos = (root_ord - self.branch_ordinal[idx]) as usize;
                *report.occurrences.entry((inst.ip, pos)).or_default() += 1;
            }
        }
    }

    /// Bounded backward BFS from `start`'s operands: true when any
    /// ancestor within the hop/node budget belongs to `closure`.
    fn reaches_closure(
        &self,
        start: usize,
        lo: usize,
        closure: &HashMap<usize, ()>,
    ) -> bool {
        const MAX_NODES: usize = 48;
        let mut stack: Vec<usize> = self.producers[start]
            .iter()
            .copied()
            .filter(|&p| p != NONE && p >= lo)
            .collect();
        let mut seen = 0usize;
        let mut visited: Vec<usize> = Vec::with_capacity(MAX_NODES);
        while let Some(p) = stack.pop() {
            if closure.contains_key(&p) {
                return true;
            }
            if seen >= MAX_NODES || visited.contains(&p) {
                continue;
            }
            visited.push(p);
            seen += 1;
            for q in self.producers[p]
                .iter()
                .copied()
                .chain(std::iter::once(self.mem_producers[p]))
            {
                if q != NONE && q >= lo {
                    stack.push(q);
                }
            }
        }
        false
    }

    /// Analyzes every dynamic execution of `h2p_ip` in `trace`.
    ///
    /// `window` is the lookback in instructions (the paper: 5,000);
    /// `max_nodes` caps the closure size per execution for bounded cost.
    #[must_use]
    pub fn analyze(
        &self,
        trace: &Trace,
        h2p_ip: u64,
        window: usize,
        max_nodes: usize,
    ) -> DepBranchReport {
        let mut report = DepBranchReport::default();
        for br in trace.conditional_branches() {
            if br.ip == h2p_ip {
                report.executions += 1;
                self.analyze_execution(trace, br.index, window, max_nodes, &mut report);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{InstClass, Reg, RetiredInst, TraceMeta};

    /// Builds: D branches on r1; noise branch on r9; H2P branches on r2
    /// where r2 = r1 | r31 — so D is a dependency branch and noise is not.
    fn dependency_trace(gap_noise: usize) -> (Trace, u64, u64, u64) {
        let mut t = Trace::new(TraceMeta::new("dep", 0));
        let d_ip = 0x100;
        let noise_ip = 0x200;
        let h2p_ip = 0x300;
        for lap in 0..20u64 {
            // r1 = lap (fresh value each lap).
            t.push(RetiredInst::op(
                0x50,
                InstClass::Alu,
                None,
                None,
                Some(Reg::new(1)),
                lap,
            ));
            // D reads r1.
            t.push(RetiredInst::cond_branch(d_ip, lap % 2 == 0, 0, Some(1), None));
            // Noise branches read r9, which is written from r8 (unrelated).
            for k in 0..gap_noise as u64 {
                t.push(RetiredInst::op(
                    0x60,
                    InstClass::Alu,
                    Some(Reg::new(8)),
                    None,
                    Some(Reg::new(9)),
                    k,
                ));
                t.push(RetiredInst::cond_branch(noise_ip, k % 2 == 0, 0, Some(9), None));
            }
            // r2 = r1 (copy through an ALU op).
            t.push(RetiredInst::op(
                0x70,
                InstClass::Alu,
                Some(Reg::new(1)),
                None,
                Some(Reg::new(2)),
                lap,
            ));
            // H2P reads r2.
            t.push(RetiredInst::cond_branch(h2p_ip, lap % 2 == 0, 0, Some(2), None));
        }
        (t, d_ip, noise_ip, h2p_ip)
    }

    #[test]
    fn finds_the_dependency_branch() {
        let (t, d_ip, noise_ip, h2p_ip) = dependency_trace(3);
        let dep = DependencyAnalysis::new(&t);
        let r = dep.analyze(&t, h2p_ip, 1_000, 128);
        assert_eq!(r.executions, 20);
        let dep_ips: Vec<u64> = {
            let mut v: Vec<u64> = r.occurrences.keys().map(|&(ip, _)| ip).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert!(dep_ips.contains(&d_ip), "D must be found: {dep_ips:?}");
        assert!(
            !dep_ips.contains(&noise_ip),
            "noise must not be a dependency branch"
        );
    }

    #[test]
    fn history_position_reflects_gap() {
        // With 3 noise branches between D and the H2P, D sits at history
        // position 4 (noise at 1..3).
        let (t, d_ip, _, h2p_ip) = dependency_trace(3);
        let dep = DependencyAnalysis::new(&t);
        let r = dep.analyze(&t, h2p_ip, 1_000, 128);
        let positions: Vec<usize> = r
            .occurrences
            .keys()
            .filter(|&&(ip, _)| ip == d_ip)
            .map(|&(_, p)| p)
            .collect();
        assert!(positions.contains(&4), "positions {positions:?}");
    }

    #[test]
    fn variable_gap_spreads_positions() {
        // Interleave laps with different gaps by concatenating two traces'
        // worth of records at the same IPs.
        let (mut t, d_ip, _, h2p_ip) = dependency_trace(2);
        let (t2, _, _, _) = dependency_trace(5);
        t.extend(t2.iter().copied());
        let dep = DependencyAnalysis::new(&t);
        let r = dep.analyze(&t, h2p_ip, 1_000, 128);
        assert!(
            r.positions_of(d_ip) >= 2,
            "D should appear at multiple history positions"
        );
        assert!(r.min_position().unwrap() < r.max_position().unwrap());
    }

    #[test]
    fn window_limits_lookback() {
        let (t, _, _, h2p_ip) = dependency_trace(3);
        let dep = DependencyAnalysis::new(&t);
        // Window of 1 instruction: the producer copy (r2 = r1) is 1 back,
        // D is further; nothing should be found.
        let r = dep.analyze(&t, h2p_ip, 1, 128);
        assert_eq!(r.dep_branch_count(), 0);
    }

    #[test]
    fn memory_chains_are_followed() {
        // store r1 -> mem[8]; load mem[8] -> r3; H2P reads r3. D reads r1.
        let mut t = Trace::new(TraceMeta::new("mem", 0));
        for lap in 0..5u64 {
            t.push(RetiredInst::op(0x10, InstClass::Alu, None, None, Some(Reg::new(1)), lap));
            t.push(RetiredInst::cond_branch(0x20, true, 0, Some(1), None));
            t.push(RetiredInst::mem(
                0x30,
                InstClass::Store,
                64,
                Some(Reg::new(1)),
                None,
                None,
                lap,
            ));
            t.push(RetiredInst::mem(
                0x40,
                InstClass::Load,
                64,
                None,
                None,
                Some(Reg::new(3)),
                lap,
            ));
            t.push(RetiredInst::cond_branch(0x50, true, 0, Some(3), None));
        }
        let dep = DependencyAnalysis::new(&t);
        let r = dep.analyze(&t, 0x50, 100, 64);
        let found: Vec<u64> = {
            let mut v: Vec<u64> = r.occurrences.keys().map(|&(ip, _)| ip).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert!(found.contains(&0x20), "store/load chain must link D: {found:?}");
    }
}
