//! Branch recurrence intervals (Fig. 9).
//!
//! The recurrence interval of a static branch IP is the number of
//! instructions between two consecutive dynamic executions of it. The
//! distribution of per-IP *median* recurrence intervals reveals
//! phase-like behaviour on long timescales — an exploitable signal for
//! helper predictors (§V-B).

use std::collections::HashMap;

use bp_trace::Trace;

use crate::h2p::paper_equivalent;
use crate::histograms::{BinSpec, Histogram};

/// Per-IP median recurrence interval, in instructions.
#[derive(Clone, Debug, Default)]
pub struct RecurrenceAnalysis {
    /// `ip -> median interval` (instructions, at native trace scale).
    /// Singleton branches (one execution) get interval 0, matching the
    /// paper's first bin.
    medians: HashMap<u64, u64>,
}

impl RecurrenceAnalysis {
    /// Computes per-IP median recurrence intervals over `trace`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_analysis::RecurrenceAnalysis;
    /// use bp_workloads::lcf_suite;
    ///
    /// let trace = lcf_suite()[0].trace(0, 30_000);
    /// let rec = RecurrenceAnalysis::compute(&trace);
    /// assert!(rec.len() > 10);
    /// ```
    #[must_use]
    pub fn compute(trace: &Trace) -> Self {
        let mut last_seen: HashMap<u64, u64> = HashMap::new();
        let mut intervals: HashMap<u64, Vec<u64>> = HashMap::new();
        for br in trace.conditional_branches() {
            let pos = br.index as u64;
            if let Some(prev) = last_seen.insert(br.ip, pos) {
                intervals.entry(br.ip).or_default().push(pos - prev);
            } else {
                intervals.entry(br.ip).or_default();
            }
        }
        let medians = intervals
            .into_iter()
            .map(|(ip, mut v)| {
                if v.is_empty() {
                    (ip, 0)
                } else {
                    v.sort_unstable();
                    (ip, v[v.len() / 2])
                }
            })
            .collect();
        RecurrenceAnalysis { medians }
    }

    /// Median recurrence interval of one IP.
    #[must_use]
    pub fn median(&self, ip: u64) -> Option<u64> {
        self.medians.get(&ip).copied()
    }

    /// Number of static branch IPs tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.medians.len()
    }

    /// True when no branches were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.medians.is_empty()
    }

    /// The Fig. 9 histogram: fraction of static branch IPs per median
    /// recurrence interval bin. Intervals are converted to paper
    /// equivalents using `trace_len` so the bins carry the paper's labels.
    #[must_use]
    pub fn histogram(&self, trace_len: u64) -> Histogram {
        BinSpec::recurrence_interval().histogram(
            self.medians
                .values()
                .map(|&m| paper_equivalent(m, trace_len)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{RetiredInst, TraceMeta};

    fn trace_with_positions(spec: &[(u64, &[usize])], len: usize) -> Trace {
        // Build a trace of `len` nops, replacing the given positions with
        // conditional branches at each IP.
        let mut t = Trace::new(TraceMeta::new("rec", 0));
        let mut at: HashMap<usize, u64> = HashMap::new();
        for &(ip, positions) in spec {
            for &p in positions {
                at.insert(p, ip);
            }
        }
        for i in 0..len {
            match at.get(&i) {
                Some(&ip) => t.push(RetiredInst::cond_branch(ip, true, 0, None, None)),
                None => t.push(RetiredInst::op(
                    0x1,
                    bp_trace::InstClass::Nop,
                    None,
                    None,
                    None,
                    0,
                )),
            }
        }
        t
    }

    #[test]
    fn median_of_regular_branch() {
        let t = trace_with_positions(&[(0x10, &[0, 100, 200, 300])], 400);
        let r = RecurrenceAnalysis::compute(&t);
        assert_eq!(r.median(0x10), Some(100));
    }

    #[test]
    fn singleton_branch_has_zero_interval() {
        let t = trace_with_positions(&[(0x10, &[5])], 10);
        let r = RecurrenceAnalysis::compute(&t);
        assert_eq!(r.median(0x10), Some(0));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // Intervals 10, 10, 10, 500 -> median 10.
        let t = trace_with_positions(&[(0x10, &[0, 10, 20, 30, 530])], 600);
        let r = RecurrenceAnalysis::compute(&t);
        assert_eq!(r.median(0x10), Some(10));
    }

    #[test]
    fn histogram_scales_to_paper_units() {
        // Interval 100 in a 30,000-instruction trace -> x1000 scale ->
        // 100,000 paper-equivalent, landing in "10K-100K"? No: 100 * 1000
        // = 100_000, which is the lower edge of "100K-1M".
        let t = trace_with_positions(&[(0x10, &[0, 100, 200])], 30_000);
        let r = RecurrenceAnalysis::compute(&t);
        let h = r.histogram(30_000);
        assert!((h.fraction_of("100K-1M") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(TraceMeta::new("e", 0));
        let r = RecurrenceAnalysis::compute(&t);
        assert!(r.is_empty());
        assert_eq!(r.histogram(0).total(), 0);
    }
}
