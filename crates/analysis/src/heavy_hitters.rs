//! Heavy-hitter analysis (Fig. 2): the cumulative fraction of dynamic
//! mispredictions owned by the top-n H2P branches.

use crate::profile::BranchProfile;

/// One ranked heavy hitter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeavyHitter {
    /// Static branch IP.
    pub ip: u64,
    /// Dynamic executions (the paper's ranking key).
    pub execs: u64,
    /// Mispredictions attributed to this IP.
    pub mispredicts: u64,
    /// Cumulative fraction of *all* mispredictions covered by this hitter
    /// and every hitter ranked above it.
    pub cumulative_fraction: f64,
}

/// Ranks `candidates` (typically the screened H2P set) by dynamic
/// execution count, as in Fig. 2, and computes cumulative misprediction
/// coverage against the profile's total mispredictions.
///
/// # Examples
///
/// ```
/// use bp_analysis::{rank_heavy_hitters, BranchProfile};
/// use bp_predictors::AlwaysTaken;
/// use bp_trace::RetiredInst;
///
/// let mut insts = Vec::new();
/// for _ in 0..100 {
///     insts.push(RetiredInst::cond_branch(0x10, false, 0, None, None));
/// }
/// for _ in 0..10 {
///     insts.push(RetiredInst::cond_branch(0x20, false, 0, None, None));
/// }
/// let profile = BranchProfile::collect(&mut AlwaysTaken, &insts);
/// let ranked = rank_heavy_hitters(&profile, [0x10u64, 0x20].into_iter());
/// assert_eq!(ranked[0].ip, 0x10);
/// assert!((ranked[1].cumulative_fraction - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn rank_heavy_hitters(
    profile: &BranchProfile,
    candidates: impl Iterator<Item = u64>,
) -> Vec<HeavyHitter> {
    let total = profile.total_mispredicts();
    let mut hitters: Vec<HeavyHitter> = candidates
        .filter_map(|ip| {
            profile.get(ip).map(|s| HeavyHitter {
                ip,
                execs: s.execs,
                mispredicts: s.mispredicts,
                cumulative_fraction: 0.0,
            })
        })
        .collect();
    hitters.sort_by(|a, b| b.execs.cmp(&a.execs).then(a.ip.cmp(&b.ip)));
    let mut cum = 0u64;
    for h in &mut hitters {
        cum += h.mispredicts;
        h.cumulative_fraction = if total == 0 {
            0.0
        } else {
            cum as f64 / total as f64
        };
    }
    hitters
}

/// The fraction of all mispredictions covered by the top `n` hitters
/// (Fig. 2's headline: the top five account for 37% on average).
#[must_use]
pub fn top_n_fraction(hitters: &[HeavyHitter], n: usize) -> f64 {
    if hitters.is_empty() || n == 0 {
        0.0
    } else {
        hitters[n.min(hitters.len()) - 1].cumulative_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::AlwaysTaken;
    use bp_trace::RetiredInst;

    fn profile(spec: &[(u64, u64)]) -> BranchProfile {
        // Each (ip, n) contributes n never-taken branches, so AlwaysTaken
        // mispredicts all of them.
        let mut insts = Vec::new();
        for &(ip, n) in spec {
            for _ in 0..n {
                insts.push(RetiredInst::cond_branch(ip, false, 0, None, None));
            }
        }
        BranchProfile::collect(&mut AlwaysTaken, &insts)
    }

    #[test]
    fn ranking_is_by_execs_descending() {
        let p = profile(&[(0x1, 5), (0x2, 50), (0x3, 20)]);
        let r = rank_heavy_hitters(&p, [0x1u64, 0x2, 0x3].into_iter());
        let ips: Vec<u64> = r.iter().map(|h| h.ip).collect();
        assert_eq!(ips, vec![0x2, 0x3, 0x1]);
    }

    #[test]
    fn cumulative_fraction_is_monotone_to_one() {
        let p = profile(&[(0x1, 10), (0x2, 30), (0x3, 60)]);
        let r = rank_heavy_hitters(&p, [0x1u64, 0x2, 0x3].into_iter());
        assert!((r[0].cumulative_fraction - 0.6).abs() < 1e-12);
        assert!((r[1].cumulative_fraction - 0.9).abs() < 1e-12);
        assert!((r[2].cumulative_fraction - 1.0).abs() < 1e-12);
        assert!(r.windows(2).all(|w| w[0].cumulative_fraction <= w[1].cumulative_fraction));
    }

    #[test]
    fn candidates_outside_profile_are_dropped() {
        let p = profile(&[(0x1, 10)]);
        let r = rank_heavy_hitters(&p, [0x1u64, 0x999].into_iter());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn top_n_fraction_saturates() {
        let p = profile(&[(0x1, 10), (0x2, 30)]);
        let r = rank_heavy_hitters(&p, [0x1u64, 0x2].into_iter());
        assert!((top_n_fraction(&r, 1) - 0.75).abs() < 1e-12);
        assert!((top_n_fraction(&r, 5) - 1.0).abs() < 1e-12);
        assert_eq!(top_n_fraction(&r, 0), 0.0);
        assert_eq!(top_n_fraction(&[], 3), 0.0);
    }
}
