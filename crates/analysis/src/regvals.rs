//! Register-value distributions preceding H2P executions (Fig. 10).
//!
//! For each dynamic execution of a branch, the paper records the bottom
//! 32 bits of the most recent value written to each of 18 tracked
//! registers. The per-register value distributions show branch-specific,
//! recognizable structure — motivating register values as an additional
//! correlative input for offline-trained helper predictors (§V-B).

use std::collections::HashMap;

use bp_trace::Trace;

/// Number of registers the paper tracks.
pub const PAPER_TRACKED_REGS: usize = 18;

/// Value distribution for one tracked register.
#[derive(Clone, Debug, Default)]
pub struct RegValueDist {
    counts: HashMap<u32, u64>,
    total: u64,
}

impl RegValueDist {
    /// Number of distinct values observed.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The most frequent `(value, count)` pairs, descending.
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Shannon entropy of the distribution in bits — low entropy means
    /// recognizable structure a learned model can exploit.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

/// Fig. 10 for one branch: per-register distributions of the value written
/// immediately preceding each dynamic execution.
#[derive(Clone, Debug)]
pub struct RegValueAnalysis {
    dists: Vec<RegValueDist>,
    /// Dynamic executions sampled.
    pub executions: u64,
}

impl RegValueAnalysis {
    /// Collects the distributions for `branch_ip` over `trace`, tracking
    /// registers `0..tracked_regs`.
    ///
    /// # Panics
    ///
    /// Panics if `tracked_regs` is 0 or exceeds the ISA register count.
    ///
    /// # Examples
    ///
    /// ```
    /// use bp_analysis::{RegValueAnalysis, PAPER_TRACKED_REGS};
    /// use bp_workloads::specint_suite;
    ///
    /// let trace = specint_suite()[1].trace(0, 20_000);
    /// let ip = trace.conditional_branches().next().unwrap().ip;
    /// let rv = RegValueAnalysis::collect(&trace, ip, PAPER_TRACKED_REGS);
    /// assert!(rv.executions > 0);
    /// ```
    #[must_use]
    pub fn collect(trace: &Trace, branch_ip: u64, tracked_regs: usize) -> Self {
        assert!(
            (1..=bp_trace::NUM_REGS).contains(&tracked_regs),
            "tracked_regs out of range"
        );
        let mut dists = vec![RegValueDist::default(); tracked_regs];
        let mut last_value = vec![None::<u32>; tracked_regs];
        let mut executions = 0u64;
        for inst in trace.iter() {
            if inst.ip == branch_ip && inst.is_conditional_branch() {
                executions += 1;
                for (d, v) in dists.iter_mut().zip(&last_value) {
                    if let Some(v) = v {
                        *d.counts.entry(*v).or_default() += 1;
                        d.total += 1;
                    }
                }
            }
            if let Some(r) = inst.dst {
                if r.index() < tracked_regs {
                    last_value[r.index()] = Some(inst.dst_value as u32);
                }
            }
        }
        RegValueAnalysis { dists, executions }
    }

    /// Distribution for register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of the tracked range.
    #[must_use]
    pub fn register(&self, r: usize) -> &RegValueDist {
        &self.dists[r]
    }

    /// Number of registers tracked.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.dists.len()
    }

    /// Mean per-register entropy (bits) across registers with samples —
    /// a one-number summary of how much structure the distributions have.
    #[must_use]
    pub fn mean_entropy_bits(&self) -> f64 {
        let active: Vec<&RegValueDist> = self.dists.iter().filter(|d| d.total > 0).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().map(|d| d.entropy_bits()).sum::<f64>() / active.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{InstClass, Reg, RetiredInst, TraceMeta};

    fn trace_writing_then_branching() -> Trace {
        let mut t = Trace::new(TraceMeta::new("rv", 0));
        for lap in 0..10u64 {
            // r1 takes value lap % 3; r2 constant 7.
            t.push(RetiredInst::op(0x10, InstClass::Alu, None, None, Some(Reg::new(1)), lap % 3));
            t.push(RetiredInst::op(0x14, InstClass::Alu, None, None, Some(Reg::new(2)), 7));
            t.push(RetiredInst::cond_branch(0x20, true, 0, Some(1), None));
        }
        t
    }

    #[test]
    fn captures_last_written_values() {
        let t = trace_writing_then_branching();
        let rv = RegValueAnalysis::collect(&t, 0x20, 4);
        assert_eq!(rv.executions, 10);
        assert_eq!(rv.register(1).distinct(), 3); // 0, 1, 2
        assert_eq!(rv.register(2).distinct(), 1); // constant 7
        assert_eq!(rv.register(3).total(), 0); // never written
    }

    #[test]
    fn entropy_reflects_structure() {
        let t = trace_writing_then_branching();
        let rv = RegValueAnalysis::collect(&t, 0x20, 4);
        assert!(rv.register(2).entropy_bits() < 1e-9); // constant: 0 bits
        let e1 = rv.register(1).entropy_bits();
        assert!(e1 > 1.0 && e1 <= (3.0f64).log2() + 1e-9);
    }

    #[test]
    fn top_values_sorted_by_count() {
        let t = trace_writing_then_branching();
        let rv = RegValueAnalysis::collect(&t, 0x20, 4);
        let top = rv.register(1).top(2);
        assert_eq!(top.len(), 2);
        // Values 0 and 1 occur 4 and 3 times (laps 0,3,6,9 / 1,4,7).
        assert_eq!(top[0], (0, 4));
        assert_eq!(top[1], (1, 3));
    }

    #[test]
    fn values_before_first_write_are_skipped() {
        let mut t = Trace::new(TraceMeta::new("rv2", 0));
        t.push(RetiredInst::cond_branch(0x20, true, 0, None, None));
        t.push(RetiredInst::op(0x10, InstClass::Alu, None, None, Some(Reg::new(1)), 5));
        t.push(RetiredInst::cond_branch(0x20, true, 0, None, None));
        let rv = RegValueAnalysis::collect(&t, 0x20, 2);
        assert_eq!(rv.executions, 2);
        assert_eq!(rv.register(1).total(), 1); // only the second execution
    }

    #[test]
    fn mean_entropy_ignores_untouched_registers() {
        let t = trace_writing_then_branching();
        let rv = RegValueAnalysis::collect(&t, 0x20, 8);
        // Only r1 and r2 are active; mean is their average.
        let expect = (rv.register(1).entropy_bits() + rv.register(2).entropy_bits()) / 2.0;
        assert!((rv.mean_entropy_bits() - expect).abs() < 1e-12);
    }
}
