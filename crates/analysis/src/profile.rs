//! Per-branch prediction profiles — the raw material of every table in the
//! paper.

use std::collections::HashMap;

use bp_predictors::DirectionPredictor;
use bp_trace::RetiredInst;

/// Accumulated statistics for one static branch IP.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpStats {
    /// Dynamic executions.
    pub execs: u64,
    /// Mispredictions.
    pub mispredicts: u64,
    /// Taken outcomes.
    pub taken: u64,
}

impl IpStats {
    /// Prediction accuracy for this IP (1.0 when never executed).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.execs == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.execs as f64
        }
    }
}

/// Per-IP prediction statistics over an instruction window (a slice or a
/// whole trace).
///
/// # Examples
///
/// ```
/// use bp_analysis::BranchProfile;
/// use bp_predictors::TageScL;
/// use bp_workloads::specint_suite;
///
/// let trace = specint_suite()[1].trace(0, 20_000);
/// let mut bpu = TageScL::kb8();
/// let profile = BranchProfile::collect(&mut bpu, trace.insts());
/// assert!(profile.static_branch_count() > 10);
/// assert!(profile.accuracy() > 0.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BranchProfile {
    per_ip: HashMap<u64, IpStats>,
    /// Instructions covered by this profile.
    pub instructions: u64,
}

impl BranchProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `predictor` over the conditional branches of `insts`,
    /// accumulating per-IP statistics. The predictor's state persists
    /// across calls, so per-slice profiles reflect a continuously-trained
    /// BPU exactly as in the paper's methodology.
    pub fn collect(predictor: &mut dyn DirectionPredictor, insts: &[RetiredInst]) -> Self {
        let mut profile = BranchProfile::new();
        profile.accumulate(predictor, insts);
        profile
    }

    /// Adds the branches of `insts` to this profile (see
    /// [`BranchProfile::collect`]).
    pub fn accumulate(&mut self, predictor: &mut dyn DirectionPredictor, insts: &[RetiredInst]) {
        self.instructions += insts.len() as u64;
        for inst in insts {
            if let Some(taken) = inst.taken() {
                let pred = predictor.predict_and_train(inst.ip, taken);
                let e = self.per_ip.entry(inst.ip).or_default();
                e.execs += 1;
                e.taken += u64::from(taken);
                e.mispredicts += u64::from(pred != taken);
            }
        }
    }

    /// Merges another profile into this one (summing per-IP stats).
    pub fn merge(&mut self, other: &BranchProfile) {
        self.instructions += other.instructions;
        for (ip, s) in &other.per_ip {
            let e = self.per_ip.entry(*ip).or_default();
            e.execs += s.execs;
            e.mispredicts += s.mispredicts;
            e.taken += s.taken;
        }
    }

    /// Statistics for one IP, if it executed.
    #[must_use]
    pub fn get(&self, ip: u64) -> Option<&IpStats> {
        self.per_ip.get(&ip)
    }

    /// Iterates over `(ip, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &IpStats)> + '_ {
        self.per_ip.iter().map(|(ip, s)| (*ip, s))
    }

    /// Number of distinct static branch IPs observed.
    #[must_use]
    pub fn static_branch_count(&self) -> usize {
        self.per_ip.len()
    }

    /// Total dynamic conditional branches.
    #[must_use]
    pub fn total_execs(&self) -> u64 {
        self.per_ip.values().map(|s| s.execs).sum()
    }

    /// Total mispredictions.
    #[must_use]
    pub fn total_mispredicts(&self) -> u64 {
        self.per_ip.values().map(|s| s.mispredicts).sum()
    }

    /// Aggregate accuracy (1.0 when no branches executed).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let t = self.total_execs();
        if t == 0 {
            1.0
        } else {
            1.0 - self.total_mispredicts() as f64 / t as f64
        }
    }

    /// Aggregate accuracy with the given IPs excluded — Table I's
    /// "Avg. Acc. excl. H2Ps" column.
    #[must_use]
    pub fn accuracy_excluding(&self, excluded: &std::collections::HashSet<u64>) -> f64 {
        let mut execs = 0u64;
        let mut miss = 0u64;
        for (ip, s) in &self.per_ip {
            if !excluded.contains(ip) {
                execs += s.execs;
                miss += s.mispredicts;
            }
        }
        if execs == 0 {
            1.0
        } else {
            1.0 - miss as f64 / execs as f64
        }
    }

    /// Mean dynamic executions per static branch (Table II column).
    #[must_use]
    pub fn mean_execs_per_static_branch(&self) -> f64 {
        if self.per_ip.is_empty() {
            0.0
        } else {
            self.total_execs() as f64 / self.per_ip.len() as f64
        }
    }

    /// Mean per-branch accuracy, each static branch weighted equally
    /// (Table II's "Avg. Acc. per Static Branch").
    #[must_use]
    pub fn mean_accuracy_per_static_branch(&self) -> f64 {
        if self.per_ip.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.per_ip.values().map(IpStats::accuracy).sum();
        sum / self.per_ip.len() as f64
    }
}

impl<'a> IntoIterator for &'a BranchProfile {
    type Item = (&'a u64, &'a IpStats);
    type IntoIter = std::collections::hash_map::Iter<'a, u64, IpStats>;

    fn into_iter(self) -> Self::IntoIter {
        self.per_ip.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::{AlwaysTaken, PerfectPredictor};
    use bp_trace::RetiredInst;

    fn branches(spec: &[(u64, bool)]) -> Vec<RetiredInst> {
        spec.iter()
            .map(|&(ip, t)| RetiredInst::cond_branch(ip, t, 0, None, None))
            .collect()
    }

    #[test]
    fn collects_per_ip_counts() {
        let insts = branches(&[(0x10, true), (0x10, false), (0x20, true)]);
        let p = BranchProfile::collect(&mut PerfectPredictor, &insts);
        assert_eq!(p.static_branch_count(), 2);
        assert_eq!(p.get(0x10).unwrap().execs, 2);
        assert_eq!(p.get(0x10).unwrap().taken, 1);
        assert_eq!(p.total_mispredicts(), 0);
        assert!((p.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mispredictions_attributed_to_ips() {
        let insts = branches(&[(0x10, false), (0x10, false), (0x20, true)]);
        let p = BranchProfile::collect(&mut AlwaysTaken, &insts);
        assert_eq!(p.get(0x10).unwrap().mispredicts, 2);
        assert_eq!(p.get(0x20).unwrap().mispredicts, 0);
        assert!((p.get(0x10).unwrap().accuracy() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_excluding_removes_bad_ips() {
        let insts = branches(&[(0x10, false), (0x10, false), (0x20, true), (0x20, true)]);
        let p = BranchProfile::collect(&mut AlwaysTaken, &insts);
        let mut excl = std::collections::HashSet::new();
        excl.insert(0x10u64);
        assert!((p.accuracy() - 0.5).abs() < 1e-12);
        assert!((p.accuracy_excluding(&excl) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counts() {
        let a = BranchProfile::collect(&mut PerfectPredictor, &branches(&[(0x10, true)]));
        let mut b = BranchProfile::collect(&mut PerfectPredictor, &branches(&[(0x10, false)]));
        b.merge(&a);
        assert_eq!(b.get(0x10).unwrap().execs, 2);
        assert_eq!(b.instructions, 2);
    }

    #[test]
    fn mean_statistics() {
        let insts = branches(&[(0x10, true), (0x10, true), (0x20, false)]);
        let p = BranchProfile::collect(&mut AlwaysTaken, &insts);
        assert!((p.mean_execs_per_static_branch() - 1.5).abs() < 1e-12);
        // 0x10 accuracy 1.0, 0x20 accuracy 0.0 -> mean 0.5.
        assert!((p.mean_accuracy_per_static_branch() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_defaults() {
        let p = BranchProfile::new();
        assert_eq!(p.accuracy(), 1.0);
        assert_eq!(p.mean_execs_per_static_branch(), 0.0);
        assert_eq!(p.static_branch_count(), 0);
    }
}
