//! Oracle predictors and the driver-facing [`DirectionPredictor`] trait.
//!
//! The paper's limit studies need predictors with ground-truth access:
//! *Perfect BP* (Fig. 1/5/7), *Perfect H2Ps* (Fig. 1/5), and perfect
//! prediction of branch subsets selected by dynamic execution count
//! (Fig. 8). Honest predictors implement [`Predictor`] and cannot see the
//! outcome before predicting; oracles implement [`DirectionPredictor`]
//! directly, which the measurement drivers call with the resolved outcome.

use std::collections::HashSet;

use crate::Predictor;

/// Driver-facing prediction interface: one call per dynamic conditional
/// branch, returning the direction predicted *before* the outcome was
/// known.
///
/// Every honest [`Predictor`] gets this for free via a blanket
/// implementation (predict, then train). Oracles implement it directly.
pub trait DirectionPredictor {
    /// A short human-readable description.
    fn describe(&self) -> String;

    /// Predicts the branch at `ip` and then trains on `taken`, returning
    /// the prediction.
    fn predict_and_train(&mut self, ip: u64, taken: bool) -> bool;

    /// FNV-1a digest of the predictor's mutable state — see
    /// [`Predictor::state_digest`], which honest predictors forward to
    /// via the blanket implementation. Stateless oracles keep the
    /// default of 0.
    fn state_digest(&self) -> u64 {
        0
    }
}

impl<P: Predictor> DirectionPredictor for P {
    fn describe(&self) -> String {
        self.name().to_owned()
    }

    fn predict_and_train(&mut self, ip: u64, taken: bool) -> bool {
        let pred = self.predict(ip);
        self.update(ip, taken, pred);
        pred
    }

    fn state_digest(&self) -> u64 {
        Predictor::state_digest(self)
    }
}

/// Perfect branch prediction: the Fig. 1 "Perfect BP" ceiling.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectPredictor;

impl DirectionPredictor for PerfectPredictor {
    fn describe(&self) -> String {
        "perfect".to_owned()
    }

    fn predict_and_train(&mut self, _ip: u64, taken: bool) -> bool {
        taken
    }
}

/// Predicts a chosen set of branch IPs perfectly, delegating everything
/// else to an inner honest predictor — the paper's "Perfect H2Ps" and
/// "Perfect >N executions" oracles.
///
/// The inner predictor still observes and trains on the oracled branches,
/// so its history state matches a deployment where a helper corrects the
/// final prediction without disturbing the baseline BPU.
///
/// # Examples
///
/// ```
/// use bp_predictors::{Bimodal, DirectionPredictor, PerfectSetOracle};
///
/// let inner = Bimodal::new(10);
/// let mut oracle = PerfectSetOracle::new(inner, [0x40u64]);
/// // The oracled IP is always right, even on a random stream.
/// assert!(oracle.predict_and_train(0x40, true));
/// assert!(!oracle.predict_and_train(0x40, false));
/// ```
#[derive(Clone, Debug)]
pub struct PerfectSetOracle<P> {
    inner: P,
    ips: HashSet<u64>,
}

impl<P: Predictor> PerfectSetOracle<P> {
    /// Wraps `inner`, predicting every IP in `ips` perfectly.
    #[must_use]
    pub fn new(inner: P, ips: impl IntoIterator<Item = u64>) -> Self {
        PerfectSetOracle {
            inner,
            ips: ips.into_iter().collect(),
        }
    }

    /// Number of oracled IPs.
    #[must_use]
    pub fn oracled_count(&self) -> usize {
        self.ips.len()
    }

    /// Consumes the oracle, returning the inner predictor.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Predictor> DirectionPredictor for PerfectSetOracle<P> {
    fn describe(&self) -> String {
        format!("perfect-set({})+{}", self.ips.len(), self.inner.name())
    }

    fn predict_and_train(&mut self, ip: u64, taken: bool) -> bool {
        let inner_pred = self.inner.predict(ip);
        self.inner.update(ip, taken, inner_pred);
        if self.ips.contains(&ip) {
            taken
        } else {
            inner_pred
        }
    }

    fn state_digest(&self) -> u64 {
        // The oracled set is immutable; the inner predictor is the only
        // mutable state.
        self.inner.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::Bimodal;

    #[test]
    fn perfect_is_always_right() {
        let mut p = PerfectPredictor;
        let mut state = 1u64;
        for _ in 0..100 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = state & 1 == 1;
            assert_eq!(p.predict_and_train(0x40, taken), taken);
        }
    }

    #[test]
    fn set_oracle_only_fixes_listed_ips() {
        let mut o = PerfectSetOracle::new(Bimodal::new(8), [0x100u64]);
        // 0x100: random stream, but always correct.
        // 0x200: alternating stream, bimodal stays imperfect.
        let mut state = 5u64;
        let mut wrong_oracled = 0;
        let mut wrong_other = 0;
        for i in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t1 = (state >> 30) & 1 == 1;
            wrong_oracled += u32::from(o.predict_and_train(0x100, t1) != t1);
            let t2 = i % 2 == 0;
            wrong_other += u32::from(o.predict_and_train(0x200, t2) != t2);
        }
        assert_eq!(wrong_oracled, 0);
        assert!(wrong_other > 100, "bimodal can't learn alternation");
    }

    #[test]
    fn blanket_impl_trains_the_predictor() {
        let mut b = Bimodal::new(8);
        for _ in 0..10 {
            let _ = b.predict_and_train(0x40, true);
        }
        assert!(b.predict(0x40));
    }

    #[test]
    fn describe_mentions_components() {
        let o = PerfectSetOracle::new(Bimodal::new(8), [1u64, 2]);
        assert!(o.describe().contains("perfect-set(2)"));
        assert!(o.describe().contains("bimodal"));
        assert_eq!(o.oracled_count(), 2);
    }
}
