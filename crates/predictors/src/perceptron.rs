//! The perceptron branch predictor (Jiménez & Lin, HPCA 2001).
//!
//! Learns signed weights over global-history positions, capturing
//! correlations that PPM-style exact matching dilutes (§II of the paper).

use crate::Predictor;

/// Perceptron predictor with per-IP weight vectors over global history.
///
/// # Examples
///
/// ```
/// use bp_predictors::{Perceptron, Predictor};
///
/// let mut p = Perceptron::new(8, 16);
/// // Alternating branch: weight on history position 0 learns it.
/// let mut correct = 0;
/// for i in 0..200 {
///     let taken = i % 2 == 0;
///     let pred = p.predict(0x44);
///     p.update(0x44, taken, pred);
///     if i >= 100 { correct += u32::from(pred == taken); }
/// }
/// assert!(correct > 95);
/// ```
#[derive(Clone, Debug)]
pub struct Perceptron {
    weights: Vec<Vec<i8>>,
    bias: Vec<i8>,
    table_log2: u32,
    history_len: usize,
    history: Vec<bool>,
    threshold: i32,
    last_sum: i32,
}

impl Perceptron {
    /// Creates a perceptron table of `2^table_log2` perceptrons, each with
    /// `history_len` weights (plus bias).
    ///
    /// # Panics
    ///
    /// Panics if `table_log2` is 0 or greater than 20, or `history_len`
    /// is 0 or greater than 256.
    #[must_use]
    pub fn new(table_log2: u32, history_len: usize) -> Self {
        assert!((1..=20).contains(&table_log2), "table log2 must be 1..=20");
        assert!(
            (1..=256).contains(&history_len),
            "history length must be 1..=256"
        );
        // Optimal threshold from the original paper: 1.93h + 14.
        let threshold = (1.93 * history_len as f64 + 14.0) as i32;
        Perceptron {
            weights: vec![vec![0; history_len]; 1 << table_log2],
            bias: vec![0; 1 << table_log2],
            table_log2,
            history_len,
            history: vec![false; history_len],
            threshold,
            last_sum: 0,
        }
    }

    fn index(&self, ip: u64) -> usize {
        ((ip >> 2) % (1u64 << self.table_log2)) as usize
    }

    fn sum(&self, idx: usize) -> i32 {
        let mut s = i32::from(self.bias[idx]);
        for (w, &h) in self.weights[idx].iter().zip(&self.history) {
            s += if h { i32::from(*w) } else { -i32::from(*w) };
        }
        s
    }
}

fn bump(w: &mut i8, up: bool) {
    if up {
        *w = w.saturating_add(1);
    } else {
        *w = w.saturating_sub(1);
    }
}

impl Predictor for Perceptron {
    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn predict(&mut self, ip: u64) -> bool {
        let idx = self.index(ip);
        self.last_sum = self.sum(idx);
        self.last_sum >= 0
    }

    fn update(&mut self, ip: u64, taken: bool, pred: bool) {
        let idx = self.index(ip);
        // Train on mispredictions or low-confidence outputs.
        if pred != taken || self.last_sum.abs() <= self.threshold {
            bump(&mut self.bias[idx], taken);
            // Borrow history by index to satisfy the borrow checker while
            // mutating weights.
            for i in 0..self.history_len {
                let agrees = self.history[i] == taken;
                bump(&mut self.weights[idx][i], agrees);
            }
        }
        self.history.rotate_right(1);
        self.history[0] = taken;
    }

    fn storage_bits(&self) -> usize {
        let per = (self.history_len + 1) * 8;
        self.weights.len() * per + self.history_len
    }

    fn state_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv::new();
        for (ws, &b) in self.weights.iter().zip(&self.bias) {
            h.push(b as u64);
            for &w in ws {
                h.push(w as u64);
            }
        }
        for &bit in &self.history {
            h.push(u64::from(bit));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_single_position_correlation() {
        // B's outcome = A's outcome two branches ago; perceptron puts
        // weight on that history position.
        let mut p = Perceptron::new(10, 24);
        let mut state = 3u64;
        let mut a_hist = vec![false; 4];
        let seq: Vec<_> = (0..4000)
            .map(move |i| {
                if i % 2 == 0 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (state >> 30) & 1 == 1;
                    a_hist.push(a);
                    (0x100u64, a)
                } else {
                    let n = a_hist.len();
                    (0x200u64, a_hist[n - 1])
                }
            })
            .collect();
        // Measure only the correlated branch B; A is pure noise (~50%).
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, &(ip, taken)) in seq.iter().enumerate() {
            let pred = p.predict(ip);
            p.update(ip, taken, pred);
            if i >= 1000 && ip == 0x200 {
                total += 1;
                correct += usize::from(pred == taken);
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn damps_noise_better_than_chance() {
        // Outcome correlated with one position, 7 noise branches between.
        let mut p = Perceptron::new(10, 32);
        let mut state = 11u64;
        let mut key = false;
        let seq = (0..16000).map(move |i| match i % 9 {
            0 => {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                key = (state >> 29) & 1 == 1;
                (0x300u64, key)
            }
            8 => (0x400u64, key),
            k => {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
                (0x500u64 + k as u64 * 4, (state >> (20 + k)) & 1 == 1)
            }
        });
        // Only measure the correlated branch.
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut preds: Vec<(u64, bool, bool)> = Vec::new();
        for (i, (ip, taken)) in seq.enumerate() {
            let pred = p.predict(ip);
            p.update(ip, taken, pred);
            if i > 4000 {
                preds.push((ip, taken, pred));
            }
        }
        for (ip, taken, pred) in preds {
            if ip == 0x400 {
                total += 1;
                correct += usize::from(pred == taken);
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "correlated-branch accuracy {acc}");
    }

    #[test]
    fn storage_bits_positive() {
        assert!(Perceptron::new(8, 16).storage_bits() > 0);
    }
}
