//! The statistical corrector — the "SC" of TAGE-SC-L.
//!
//! A GEHL-style perceptron ensemble that arbitrates the TAGE prediction:
//! per-branch bias tables plus several global-history-indexed tables of
//! signed counters vote; when their summed conviction clears a dynamically
//! trained threshold, the corrector overrides TAGE. This is the "ensemble
//! model / boosting" element described in §II.

use bp_metrics::Counter;

use crate::counter::SignedCounter;
use crate::digest::Fnv;
use crate::Predictor;

/// Configuration of the statistical corrector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScConfig {
    /// log2 entries per component table.
    pub table_log2: u32,
    /// Global-history lengths of the GEHL components.
    pub history_lengths: Vec<u32>,
    /// Counter width in bits.
    pub counter_bits: u32,
}

impl Default for ScConfig {
    fn default() -> Self {
        ScConfig {
            table_log2: 10,
            history_lengths: vec![4, 10, 16],
            counter_bits: 6,
        }
    }
}

/// The statistical corrector.
///
/// Not a standalone [`Predictor`]: it refines an input prediction. See
/// [`StatisticalCorrector::refine`] and [`StatisticalCorrector::train`].
#[derive(Clone, Debug)]
pub struct StatisticalCorrector {
    config: ScConfig,
    /// Bias tables indexed by (ip, input prediction).
    bias: Vec<SignedCounter>,
    /// One GEHL table per history length.
    gehl: Vec<Vec<SignedCounter>>,
    history: u64,
    /// Dynamic override threshold (trained).
    threshold: i32,
    /// Threshold training counter.
    tc: i32,
    last_sum: i32,
    /// Table indices computed by the last `refine`, reused by `train` for
    /// the same branch. The global history only advances at the end of
    /// `train`, so between the two calls every index is unchanged —
    /// recomputing them (one multiplicative mix per GEHL component) was
    /// pure duplicated work on the replay hot path.
    cached: ScIndexCache,
    /// Snapshot of [`bp_metrics::enabled`] at construction, gating the
    /// per-refine counting on one predictable branch.
    metrics_on: bool,
    /// `sc.refine` call counter (no-op unless metrics are enabled).
    refines: Counter,
    /// `sc.override` counter: decisions that flipped the input.
    overrides: Counter,
}

/// See `StatisticalCorrector::cached`. `gehl_idxs` is allocated once at
/// construction and refilled in place.
#[derive(Clone, Debug)]
struct ScIndexCache {
    valid: bool,
    ip: u64,
    input_pred: bool,
    bias_idx: usize,
    gehl_idxs: Vec<usize>,
}

/// Decision returned by [`StatisticalCorrector::refine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScDecision {
    /// The final direction after arbitration.
    pub taken: bool,
    /// True if the corrector overrode the input prediction.
    pub overrode: bool,
}

impl StatisticalCorrector {
    /// Creates a corrector from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no history lengths or out-of-range
    /// widths.
    #[must_use]
    pub fn new(config: ScConfig) -> Self {
        assert!(!config.history_lengths.is_empty(), "need at least one GEHL table");
        assert!((1..=16).contains(&config.table_log2));
        assert!((2..=8).contains(&config.counter_bits));
        let entries = 1usize << config.table_log2;
        StatisticalCorrector {
            bias: vec![SignedCounter::new(config.counter_bits); entries * 2],
            gehl: config
                .history_lengths
                .iter()
                .map(|_| vec![SignedCounter::new(config.counter_bits); entries])
                .collect(),
            history: 0,
            threshold: 6,
            tc: 0,
            last_sum: 0,
            cached: ScIndexCache {
                valid: false,
                ip: 0,
                input_pred: false,
                bias_idx: 0,
                gehl_idxs: vec![0; config.history_lengths.len()],
            },
            metrics_on: bp_metrics::enabled(),
            refines: Counter::get("sc.refine"),
            overrides: Counter::get("sc.override"),
            config,
        }
    }

    fn bias_index(&self, ip: u64, input_pred: bool) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        ((((ip >> 2) & mask) << 1) | u64::from(input_pred)) as usize
    }

    fn gehl_index(&self, ip: u64, component: usize) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        let bits = self.config.history_lengths[component];
        let h = self.history & ((1u64 << bits.min(63)) - 1);
        // Spread the history across the index with a multiplicative mix.
        let mixed = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - u64::from(self.config.table_log2));
        (((ip >> 2) ^ mixed ^ (h << 1)) & mask) as usize
    }

    /// Recomputes and caches every table index for (`ip`, `input_pred`).
    fn fill_cache(&mut self, ip: u64, input_pred: bool) {
        let bias_idx = self.bias_index(ip, input_pred);
        self.cached.valid = true;
        self.cached.ip = ip;
        self.cached.input_pred = input_pred;
        self.cached.bias_idx = bias_idx;
        for c in 0..self.gehl.len() {
            let idx = self.gehl_index(ip, c);
            self.cached.gehl_idxs[c] = idx;
        }
    }

    /// Summed conviction over the cached indices.
    fn cached_sum(&self, input_pred: bool) -> i32 {
        let mut s = self.bias[self.cached.bias_idx].centered();
        for (table, &idx) in self.gehl.iter().zip(&self.cached.gehl_idxs) {
            s += table[idx].centered();
        }
        // The input prediction itself gets a strong fixed vote, so the
        // corrector only flips when statistics are decisive.
        s + if input_pred { 8 } else { -8 }
    }

    /// Arbitrates `input_pred` for branch `ip`. `input_confident` should be
    /// true when the upstream predictor is at high confidence (the
    /// corrector then demands a stronger conviction to override).
    pub fn refine(&mut self, ip: u64, input_pred: bool, input_confident: bool) -> ScDecision {
        if self.metrics_on {
            self.refines.incr();
        }
        self.fill_cache(ip, input_pred);
        let sum = self.cached_sum(input_pred);
        self.last_sum = sum;
        let sc_pred = sum >= 0;
        let margin = if input_confident {
            self.threshold * 2
        } else {
            self.threshold
        };
        if sc_pred != input_pred && sum.abs() >= margin {
            if self.metrics_on {
                self.overrides.incr();
            }
            ScDecision {
                taken: sc_pred,
                overrode: true,
            }
        } else {
            ScDecision {
                taken: input_pred,
                overrode: false,
            }
        }
    }

    /// Trains the corrector with the resolved outcome. `input_pred` must be
    /// the same value passed to [`StatisticalCorrector::refine`];
    /// `final_pred` the direction actually predicted after arbitration.
    pub fn train(&mut self, ip: u64, input_pred: bool, final_pred: bool, taken: bool) {
        let sum = self.last_sum;
        // Train on mispredictions and on low-margin correct predictions.
        if final_pred != taken || sum.abs() < self.threshold * 4 {
            // The cache from `refine` is valid as long as the branch (and
            // therefore the history) hasn't changed; recompute otherwise
            // (e.g. `train` without a matching `refine`, after clone).
            if !(self.cached.valid && self.cached.ip == ip && self.cached.input_pred == input_pred)
            {
                self.fill_cache(ip, input_pred);
            }
            self.bias[self.cached.bias_idx].update(taken);
            for c in 0..self.gehl.len() {
                let idx = self.cached.gehl_idxs[c];
                self.gehl[c][idx].update(taken);
            }
        }
        // Dynamic threshold training (Seznec): widen when overrides
        // mispredict, narrow when they were needed but suppressed.
        let sc_pred = sum >= 0;
        if sc_pred != input_pred {
            if final_pred != taken && sc_pred != taken {
                self.tc += 1;
                if self.tc >= 4 {
                    self.threshold = (self.threshold + 1).min(64);
                    self.tc = 0;
                }
            } else if final_pred != taken && sc_pred == taken {
                self.tc -= 1;
                if self.tc <= -4 {
                    self.threshold = (self.threshold - 1).max(2);
                    self.tc = 0;
                }
            }
        }
        self.history = (self.history << 1) | u64::from(taken);
        // The history just advanced: every cached GEHL index is stale.
        self.cached.valid = false;
    }

    /// Approximate storage in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        let cb = self.config.counter_bits as usize;
        self.bias.len() * cb + self.gehl.iter().map(|t| t.len() * cb).sum::<usize>() + 64
    }

    /// FNV-1a digest of the complete trained state (bias and GEHL
    /// counters, dynamic threshold, history). Used by the bit-identity
    /// suite — see `tests/bit_identity.rs`.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for b in &self.bias {
            h.push(b.value() as u64);
        }
        for table in &self.gehl {
            for c in table {
                h.push(c.value() as u64);
            }
        }
        h.push(self.threshold as u64);
        h.push(self.tc as u64);
        h.push(self.history);
        h.push(self.last_sum as u64);
        h.finish()
    }
}

/// A standalone wrapper exposing the corrector as a [`Predictor`] over a
/// fixed not-taken input, for testing and ablation.
#[derive(Clone, Debug)]
pub struct ScOnly {
    sc: StatisticalCorrector,
    last: bool,
}

impl ScOnly {
    /// Creates the wrapper.
    #[must_use]
    pub fn new(config: ScConfig) -> Self {
        ScOnly {
            sc: StatisticalCorrector::new(config),
            last: false,
        }
    }
}

impl Predictor for ScOnly {
    fn name(&self) -> &'static str {
        "sc-only"
    }

    fn predict(&mut self, ip: u64) -> bool {
        let d = self.sc.refine(ip, false, false);
        self.last = d.taken;
        d.taken
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        self.sc.train(ip, false, self.last, taken);
    }

    fn storage_bits(&self) -> usize {
        self.sc.storage_bits()
    }

    fn state_digest(&self) -> u64 {
        self.sc.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrects_a_consistently_wrong_input() {
        let mut sc = StatisticalCorrector::new(ScConfig::default());
        // The upstream predictor always says not-taken; the branch is
        // always taken. The corrector must learn to override.
        let mut overrides_late = 0;
        for i in 0..400 {
            let d = sc.refine(0x500, false, false);
            sc.train(0x500, false, d.taken, true);
            if i >= 200 && d.overrode {
                overrides_late += 1;
            }
        }
        assert!(overrides_late > 190, "late overrides {overrides_late}");
    }

    #[test]
    fn leaves_a_correct_input_alone() {
        let mut sc = StatisticalCorrector::new(ScConfig::default());
        let mut overrides = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let d = sc.refine(0x600, taken, true);
            sc.train(0x600, taken, d.taken, taken);
            overrides += u32::from(d.overrode);
        }
        assert!(overrides < 20, "spurious overrides {overrides}");
    }

    #[test]
    fn threshold_stays_in_bounds() {
        let mut sc = StatisticalCorrector::new(ScConfig::default());
        let mut state = 9u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (state >> 41) & 1 == 1;
            let input = (state >> 42) & 1 == 1;
            let d = sc.refine(0x700, input, false);
            sc.train(0x700, input, d.taken, taken);
        }
        assert!((2..=64).contains(&sc.threshold));
    }

    #[test]
    fn sc_only_wrapper_behaves_as_predictor() {
        let mut p = ScOnly::new(ScConfig::default());
        let mut correct = 0;
        for i in 0..300 {
            let pred = p.predict(0x40);
            p.update(0x40, true, pred);
            if i >= 150 {
                correct += u32::from(pred);
            }
        }
        assert!(correct > 140);
    }
}
