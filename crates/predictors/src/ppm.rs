//! A plain PPM (Partial Pattern Matching) predictor.
//!
//! The §II baseline: tagged tables over increasing history lengths with
//! longest-exact-match prediction — TAGE's ancestor, without usefulness
//! counters, alternate-prediction arbitration, or geometric allocation.
//! Included to quantify what TAGE's refinements buy.

use crate::counter::SatCounter;
use crate::history::{BitHistory, FoldedHistory};
use crate::Predictor;

/// Configuration for [`Ppm`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PpmConfig {
    /// log2 entries of the untagged base table.
    pub base_log2: u32,
    /// History lengths of the tagged tables, strictly increasing.
    pub history_lengths: Vec<usize>,
    /// log2 entries per tagged table.
    pub table_log2: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
}

impl Default for PpmConfig {
    fn default() -> Self {
        PpmConfig {
            base_log2: 12,
            history_lengths: vec![4, 8, 16, 32, 64],
            table_log2: 9,
            tag_bits: 8,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PpmEntry {
    tag: u16,
    ctr: SatCounter,
}

/// The PPM predictor.
///
/// # Examples
///
/// ```
/// use bp_predictors::{Ppm, PpmConfig, Predictor};
///
/// let mut p = Ppm::new(PpmConfig::default());
/// let mut correct = 0;
/// for i in 0..600 {
///     let taken = i % 2 == 0;
///     let pred = p.predict(0x44);
///     p.update(0x44, taken, pred);
///     if i >= 300 { correct += u32::from(pred == taken); }
/// }
/// assert!(correct > 280);
/// ```
#[derive(Clone, Debug)]
pub struct Ppm {
    config: PpmConfig,
    base: Vec<SatCounter>,
    tables: Vec<Vec<PpmEntry>>,
    folded_idx: Vec<FoldedHistory>,
    folded_tag: Vec<FoldedHistory>,
    ghist: BitHistory,
    last_match: Option<usize>,
}

impl Ppm {
    /// Creates a PPM predictor from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the history lengths are empty or not strictly increasing,
    /// or widths are out of range.
    #[must_use]
    pub fn new(config: PpmConfig) -> Self {
        assert!(!config.history_lengths.is_empty(), "need history lengths");
        assert!(
            config.history_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must be strictly increasing"
        );
        assert!((1..=24).contains(&config.base_log2));
        assert!((1..=24).contains(&config.table_log2));
        assert!((6..=15).contains(&config.tag_bits));
        let max_hist = *config.history_lengths.last().unwrap();
        Ppm {
            base: vec![SatCounter::weakly_not_taken(2); 1 << config.base_log2],
            tables: vec![
                vec![
                    PpmEntry {
                        tag: 0,
                        ctr: SatCounter::weakly_not_taken(3)
                    };
                    1 << config.table_log2
                ];
                config.history_lengths.len()
            ],
            folded_idx: config
                .history_lengths
                .iter()
                .map(|&l| FoldedHistory::new(l, config.table_log2))
                .collect(),
            folded_tag: config
                .history_lengths
                .iter()
                .map(|&l| FoldedHistory::new(l, config.tag_bits))
                .collect(),
            ghist: BitHistory::new(max_hist + 8),
            last_match: None,
            config,
        }
    }

    fn base_index(&self, ip: u64) -> usize {
        ((ip >> 2) & ((1u64 << self.config.base_log2) - 1)) as usize
    }

    fn index(&self, ip: u64, t: usize) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        (((ip >> 2) ^ self.folded_idx[t].value()) & mask) as usize
    }

    fn tag(&self, ip: u64, t: usize) -> u16 {
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((ip >> 2) ^ self.folded_tag[t].value() ^ (self.folded_tag[t].value() << 1)) & mask)
            as u16
    }
}

impl Predictor for Ppm {
    fn name(&self) -> &'static str {
        "ppm"
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.last_match = None;
        for t in (0..self.tables.len()).rev() {
            let e = &self.tables[t][self.index(ip, t)];
            if e.tag == self.tag(ip, t) {
                self.last_match = Some(t);
                return e.ctr.taken();
            }
        }
        self.base[self.base_index(ip)].taken()
    }

    fn update(&mut self, ip: u64, taken: bool, pred: bool) {
        match self.last_match.take() {
            Some(t) => {
                let idx = self.index(ip, t);
                self.tables[t][idx].ctr.update(taken);
                // Allocate one table higher on a misprediction.
                if pred != taken && t + 1 < self.tables.len() {
                    let nt = t + 1;
                    let nidx = self.index(ip, nt);
                    let ntag = self.tag(ip, nt);
                    self.tables[nt][nidx] = PpmEntry {
                        tag: ntag,
                        ctr: if taken {
                            SatCounter::weakly_taken(3)
                        } else {
                            SatCounter::weakly_not_taken(3)
                        },
                    };
                }
            }
            None => {
                let bidx = self.base_index(ip);
                self.base[bidx].update(taken);
                if pred != taken {
                    let idx = self.index(ip, 0);
                    let tag = self.tag(ip, 0);
                    self.tables[0][idx] = PpmEntry {
                        tag,
                        ctr: if taken {
                            SatCounter::weakly_taken(3)
                        } else {
                            SatCounter::weakly_not_taken(3)
                        },
                    };
                }
            }
        }
        // Advance folded and raw histories.
        for t in 0..self.tables.len() {
            let olen = self.config.history_lengths[t];
            let outgoing = self.ghist.bit(olen - 1);
            self.folded_idx[t].update(taken, outgoing);
            self.folded_tag[t].update(taken, outgoing);
        }
        self.ghist.push(taken);
    }

    fn state_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv::new();
        for c in &self.base {
            h.push(u64::from(c.value()));
        }
        for t in &self.tables {
            for e in t {
                h.push(u64::from(e.tag));
                h.push(u64::from(e.ctr.value()));
            }
        }
        for (fi, ft) in self.folded_idx.iter().zip(&self.folded_tag) {
            h.push(fi.value());
            h.push(ft.value());
        }
        // The raw history register, up to the longest length any table
        // folds over.
        let longest = *self.config.history_lengths.last().unwrap();
        for age in 0..longest {
            h.push(u64::from(self.ghist.bit(age)));
        }
        h.finish()
    }

    fn storage_bits(&self) -> usize {
        let entry = (3 + self.config.tag_bits) as usize;
        self.base.len() * 2
            + self.tables.iter().map(|t| t.len() * entry).sum::<usize>()
            + self.config.history_lengths.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_history_pattern() {
        let mut p = Ppm::new(PpmConfig::default());
        let mut correct = 0;
        for i in 0..2000 {
            let taken = (i / 3) % 2 == 0;
            let pred = p.predict(0x40);
            p.update(0x40, taken, pred);
            if i >= 1000 {
                correct += u32::from(pred == taken);
            }
        }
        assert!(correct > 900, "period-6 pattern: {correct}/1000");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_lengths_panic() {
        let _ = Ppm::new(PpmConfig {
            history_lengths: vec![8, 8],
            ..PpmConfig::default()
        });
    }

    #[test]
    fn storage_bits_counts_all_tables() {
        let p = Ppm::new(PpmConfig::default());
        assert!(p.storage_bits() > (1 << 12) * 2);
    }
}
