//! A tournament (combining) predictor in the style of McFarling and the
//! Alpha 21264: a per-branch local component and a global-history
//! component, arbitrated by a chooser table that learns which component
//! predicts each context better.
//!
//! Included as the strongest pre-TAGE baseline generation — useful for
//! situating TAGE-SC-L's advantage on the suites.

use crate::counter::SatCounter;
use crate::simple::{GShare, TwoLevelLocal};
use crate::Predictor;

/// The tournament predictor.
///
/// # Examples
///
/// ```
/// use bp_predictors::{Predictor, Tournament};
///
/// let mut p = Tournament::new(12);
/// let mut correct = 0;
/// for i in 0..600 {
///     let taken = i % 4 != 3;
///     let pred = p.predict(0x44);
///     p.update(0x44, taken, pred);
///     if i >= 300 { correct += u32::from(pred == taken); }
/// }
/// assert!(correct > 280, "period-4 should be learned: {correct}");
/// ```
#[derive(Clone, Debug)]
pub struct Tournament {
    local: TwoLevelLocal,
    global: GShare,
    chooser: Vec<SatCounter>,
    chooser_log2: u32,
    history: u64,
    last: Option<LastPreds>,
}

#[derive(Clone, Copy, Debug)]
struct LastPreds {
    ip: u64,
    local: bool,
    global: bool,
}

impl Tournament {
    /// Creates a tournament predictor; `log2` sizes the chooser and the
    /// two component tables.
    ///
    /// # Panics
    ///
    /// Panics if `log2` is below 4 or above 20.
    #[must_use]
    pub fn new(log2: u32) -> Self {
        assert!((4..=20).contains(&log2), "log2 must be 4..=20");
        Tournament {
            local: TwoLevelLocal::new(log2.saturating_sub(2).max(4), 10),
            global: GShare::new(log2, 12),
            chooser: vec![SatCounter::weakly_taken(2); 1 << log2],
            chooser_log2: log2,
            history: 0,
            last: None,
        }
    }

    fn chooser_index(&self, ip: u64) -> usize {
        let mask = (1u64 << self.chooser_log2) - 1;
        (((ip >> 2) ^ self.history) & mask) as usize
    }
}

impl Predictor for Tournament {
    fn name(&self) -> &'static str {
        "tournament"
    }

    fn predict(&mut self, ip: u64) -> bool {
        let local = self.local.predict(ip);
        let global = self.global.predict(ip);
        self.last = Some(LastPreds { ip, local, global });
        // Chooser taken => trust the global component.
        if self.chooser[self.chooser_index(ip)].taken() {
            global
        } else {
            local
        }
    }

    fn update(&mut self, ip: u64, taken: bool, pred: bool) {
        let last = match self.last.take() {
            Some(l) if l.ip == ip => l,
            _ => {
                let local = self.local.predict(ip);
                let global = self.global.predict(ip);
                LastPreds { ip, local, global }
            }
        };
        // Train the chooser only on disagreement.
        if last.local != last.global {
            let idx = self.chooser_index(ip);
            self.chooser[idx].update(last.global == taken);
        }
        self.local.update(ip, taken, last.local);
        self.global.update(ip, taken, last.global);
        self.history = (self.history << 1) | u64::from(taken);
        let _ = pred;
    }

    fn storage_bits(&self) -> usize {
        self.local.storage_bits() + self.global.storage_bits() + self.chooser.len() * 2 + 64
    }

    fn state_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv::new();
        h.push(self.local.state_digest());
        h.push(self.global.state_digest());
        for c in &self.chooser {
            h.push(u64::from(c.value()));
        }
        h.push(self.history);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(p: &mut Tournament, seq: &[(u64, bool)], skip: usize) -> f64 {
        let mut correct = 0usize;
        for (i, &(ip, taken)) in seq.iter().enumerate() {
            let pred = p.predict(ip);
            p.update(ip, taken, pred);
            if i >= skip {
                correct += usize::from(pred == taken);
            }
        }
        correct as f64 / (seq.len() - skip) as f64
    }

    #[test]
    fn beats_components_on_mixed_workload() {
        // Branch A: local-friendly period-3 pattern; branch B: global
        // correlation with a preceding random branch. The tournament should
        // do well on both simultaneously.
        let mut state = 9u64;
        let mut key = false;
        let seq: Vec<(u64, bool)> = (0..12000)
            .map(|i| match i % 4 {
                0 => (0x100, (i / 4) % 3 != 2), // local pattern
                1 => {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    key = (state >> 31) & 1 == 1;
                    (0x200, key) // random source
                }
                2 => (0x300, key), // mirrors the random source
                _ => (0x400, true),
            })
            .collect();
        let acc = accuracy(&mut Tournament::new(12), &seq, 4000);
        assert!(acc > 0.85, "tournament accuracy {acc}");
    }

    #[test]
    fn chooser_learns_to_pick_the_right_component() {
        // A purely local-pattern branch: after training, accuracy must
        // exceed what gshare alone achieves when histories are polluted by
        // an interleaved random branch.
        let mut state = 5u64;
        let seq: Vec<(u64, bool)> = (0..16000)
            .map(|i| {
                if i % 2 == 0 {
                    (0x100, (i / 2) % 5 != 4) // local period-5
                } else {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (0x200, (state >> 30) & 1 == 1) // pure noise
                }
            })
            .collect();
        let mut tournament = Tournament::new(12);
        let t_acc = accuracy(&mut tournament, &seq, 8000);
        // Measure only what matters: the predictable branch.
        let mut t2 = Tournament::new(12);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, &(ip, taken)) in seq.iter().enumerate() {
            let pred = t2.predict(ip);
            t2.update(ip, taken, pred);
            if i >= 8000 && ip == 0x100 {
                total += 1;
                correct += usize::from(pred == taken);
            }
        }
        let local_branch_acc = correct as f64 / total as f64;
        assert!(local_branch_acc > 0.93, "local branch accuracy {local_branch_acc}");
        assert!(t_acc > 0.65, "overall {t_acc}");
    }

    #[test]
    fn storage_counts_all_components() {
        let t = Tournament::new(10);
        assert!(t.storage_bits() > (1 << 10) * 2);
    }
}
