//! TAGE-SC-L — the CBP2016 winner and the paper's reference predictor.
//!
//! Combines [`Tage`] (PPM-style geometric-history pattern matching), a
//! [`LoopPredictor`] and a [`StatisticalCorrector`], with storage-budgeted
//! configurations at 8/64/128/256/512/1024 KB matching the paper's limit
//! study (§IV, Fig. 7). Per the paper's configurations, maximum history is
//! 1,000 bits at 8KB and 3,000 bits at 64KB and above.

use bp_metrics::Counter;

use crate::counter::SignedCounter;
use crate::digest::Fnv;
use crate::loop_pred::LoopPredictor;
use crate::sc::{ScConfig, StatisticalCorrector};
use crate::tage::{AllocationTracker, Tage, TageConfig};
use crate::Predictor;

/// Full configuration of a [`TageScL`] predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TageSclConfig {
    /// TAGE core geometry.
    pub tage: TageConfig,
    /// Statistical corrector; `None` disables the SC component (ablation).
    pub sc: Option<ScConfig>,
    /// Loop-predictor entries (power of two); `None` disables it.
    pub loop_entries: Option<usize>,
    /// The budget this configuration was derived from, in kilobytes.
    pub nominal_kb: usize,
}

impl TageSclConfig {
    /// The standard storage points measured in the paper.
    pub const STORAGE_POINTS_KB: [usize; 6] = [8, 64, 128, 256, 512, 1024];

    /// Builds the configuration for one of the paper's storage budgets.
    ///
    /// # Panics
    ///
    /// Panics if `kb` is not one of [`Self::STORAGE_POINTS_KB`].
    #[must_use]
    pub fn storage_kb(kb: usize) -> Self {
        let (bimodal_log2, num_tables, table_log2, tag_bits, max_hist, sc_log2, loops) = match kb
        {
            8 => (12, 10, 8, 9, 1000, 9, 64),
            64 => (15, 12, 11, 10, 3000, 11, 256),
            128 => (16, 12, 12, 10, 3000, 12, 256),
            256 => (17, 12, 13, 11, 3000, 13, 512),
            512 => (18, 12, 14, 11, 3000, 14, 1024),
            1024 => (19, 12, 15, 12, 3000, 15, 1024),
            other => panic!("unsupported TAGE-SC-L budget: {other}KB"),
        };
        TageSclConfig {
            tage: TageConfig {
                bimodal_log2,
                num_tables,
                table_log2,
                tag_bits,
                min_hist: 4,
                max_hist,
                u_reset_period: 1 << 18,
            },
            sc: Some(ScConfig {
                table_log2: sc_log2,
                history_lengths: vec![4, 10, 16],
                counter_bits: 6,
            }),
            loop_entries: Some(loops),
            nominal_kb: kb,
        }
    }

    /// Ablation: TAGE core only (no SC, no loop predictor).
    #[must_use]
    pub fn tage_only(kb: usize) -> Self {
        TageSclConfig {
            sc: None,
            loop_entries: None,
            ..Self::storage_kb(kb)
        }
    }

    /// Ablation: TAGE plus loop predictor, without the corrector.
    #[must_use]
    pub fn tage_l(kb: usize) -> Self {
        TageSclConfig {
            sc: None,
            ..Self::storage_kb(kb)
        }
    }
}

impl Default for TageSclConfig {
    fn default() -> Self {
        Self::storage_kb(8)
    }
}

#[derive(Clone, Copy, Debug)]
struct EnsembleCtx {
    ip: u64,
    tage_pred: bool,
    loop_vote: Option<bool>,
    pre_sc_pred: bool,
    final_pred: bool,
}

/// The TAGE-SC-L ensemble predictor.
///
/// # Examples
///
/// ```
/// use bp_predictors::{Predictor, TageScL, TageSclConfig};
///
/// let mut p = TageScL::new(TageSclConfig::storage_kb(8));
/// assert_eq!(p.name(), "tage-sc-l-8kb");
/// let mut correct = 0;
/// for i in 0..600 {
///     let taken = i % 3 != 0;
///     let pred = p.predict(0x88);
///     p.update(0x88, taken, pred);
///     if i >= 300 { correct += u32::from(pred == taken); }
/// }
/// assert!(correct > 290, "period-3 pattern should be learned: {correct}");
/// ```
#[derive(Clone, Debug)]
pub struct TageScL {
    tage: Tage,
    sc: Option<StatisticalCorrector>,
    loop_pred: Option<LoopPredictor>,
    /// Chooser deciding whether confident loop predictions beat TAGE.
    with_loop: SignedCounter,
    name: String,
    ctx: Option<EnsembleCtx>,
    /// Snapshot of [`bp_metrics::enabled`] at construction, gating the
    /// per-prediction counting on one predictable branch.
    metrics_on: bool,
    /// `tagescl.prediction` — ensemble prediction-context computations.
    predictions: Counter,
    /// `tagescl.loop_override` — final predictions taken from the loop
    /// predictor against TAGE's direction.
    loop_overrides: Counter,
}

impl TageScL {
    /// Creates a TAGE-SC-L predictor from `config`.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`TageConfig::history_lengths`]).
    #[must_use]
    pub fn new(config: TageSclConfig) -> Self {
        let name = match (&config.sc, &config.loop_entries) {
            (Some(_), Some(_)) => format!("tage-sc-l-{}kb", config.nominal_kb),
            (None, Some(_)) => format!("tage-l-{}kb", config.nominal_kb),
            (None, None) => format!("tage-{}kb", config.nominal_kb),
            (Some(_), None) => format!("tage-sc-{}kb", config.nominal_kb),
        };
        TageScL {
            tage: Tage::new(config.tage),
            sc: config.sc.map(StatisticalCorrector::new),
            loop_pred: config.loop_entries.map(LoopPredictor::new),
            with_loop: SignedCounter::new(7),
            name,
            ctx: None,
            metrics_on: bp_metrics::enabled(),
            predictions: Counter::get("tagescl.prediction"),
            loop_overrides: Counter::get("tagescl.loop_override"),
        }
    }

    /// Convenience constructor for the paper's baseline 8KB predictor.
    #[must_use]
    pub fn kb8() -> Self {
        Self::new(TageSclConfig::storage_kb(8))
    }

    /// Convenience constructor for the 64KB variant.
    #[must_use]
    pub fn kb64() -> Self {
        Self::new(TageSclConfig::storage_kb(64))
    }

    /// Enables TAGE allocation instrumentation (§IV-A statistics).
    pub fn enable_instrumentation(&mut self) {
        self.tage.enable_instrumentation();
    }

    /// TAGE allocation statistics, if instrumentation is enabled.
    #[must_use]
    pub fn tracker(&self) -> Option<&AllocationTracker> {
        self.tage.tracker()
    }

    /// FNV-1a digest of the complete ensemble state: TAGE tables and
    /// histories, SC counters, loop table, and the loop chooser. Used by
    /// the bit-identity suite to compare against
    /// [`crate::naive::NaiveTageScL`] — see `tests/bit_identity.rs`.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.push(self.tage.state_digest());
        h.push(self.sc.as_ref().map_or(0, StatisticalCorrector::state_digest));
        h.push(self.loop_pred.as_ref().map_or(0, LoopPredictor::state_digest));
        h.push(self.with_loop.value() as u64);
        h.finish()
    }

    fn compute(&mut self, ip: u64) -> EnsembleCtx {
        if self.metrics_on {
            self.predictions.incr();
        }
        let tage_pred = self.tage.predict(ip);
        let tage_confident = self.tage.last_confidence_high();

        let mut pred = tage_pred;
        let mut loop_vote = None;
        if let Some(lp) = &self.loop_pred {
            if let Some(l) = lp.predict(ip) {
                if l.confident {
                    loop_vote = Some(l.taken);
                    if self.with_loop.value() >= 0 {
                        pred = l.taken;
                        if self.metrics_on && pred != tage_pred {
                            self.loop_overrides.incr();
                        }
                    }
                }
            }
        }
        let pre_sc_pred = pred;

        let final_pred = match &mut self.sc {
            Some(sc) => {
                sc.refine(ip, pre_sc_pred, tage_confident || loop_vote.is_some())
                    .taken
            }
            None => pre_sc_pred,
        };
        EnsembleCtx {
            ip,
            tage_pred,
            loop_vote,
            pre_sc_pred,
            final_pred,
        }
    }
}

impl Predictor for TageScL {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&mut self, ip: u64) -> bool {
        let ctx = self.compute(ip);
        self.ctx = Some(ctx);
        ctx.final_pred
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let ctx = match self.ctx.take() {
            Some(c) if c.ip == ip => c,
            _ => self.compute(ip),
        };
        // Train the loop chooser only when loop and TAGE disagreed.
        if let Some(lv) = ctx.loop_vote {
            if lv != ctx.tage_pred {
                self.with_loop.update(lv == taken);
            }
        }
        if let Some(lp) = &mut self.loop_pred {
            lp.update(ip, taken);
        }
        if let Some(sc) = &mut self.sc {
            sc.train(ip, ctx.pre_sc_pred, ctx.final_pred, taken);
        }
        self.tage.update(ip, taken, ctx.tage_pred);
    }

    fn storage_bits(&self) -> usize {
        self.tage.storage_bits()
            + self.sc.as_ref().map_or(0, StatisticalCorrector::storage_bits)
            + self.loop_pred.as_ref().map_or(0, LoopPredictor::storage_bits)
            + 7
    }

    fn state_digest(&self) -> u64 {
        TageScL::state_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_budgets_are_honoured() {
        for kb in TageSclConfig::STORAGE_POINTS_KB {
            let p = TageScL::new(TageSclConfig::storage_kb(kb));
            let bits = p.storage_bits();
            let nominal = kb * 8 * 1024;
            let ratio = bits as f64 / nominal as f64;
            assert!(
                (0.7..=1.3).contains(&ratio),
                "{kb}KB config uses {bits} bits (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn names_reflect_components() {
        assert_eq!(TageScL::kb8().name(), "tage-sc-l-8kb");
        assert_eq!(TageScL::new(TageSclConfig::tage_only(64)).name(), "tage-64kb");
        assert_eq!(TageScL::new(TageSclConfig::tage_l(8)).name(), "tage-l-8kb");
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_budget_panics() {
        let _ = TageSclConfig::storage_kb(32);
    }

    #[test]
    fn loop_component_nails_constant_trip_loops() {
        // A 23-iteration loop is beyond short TAGE histories' easy reach;
        // the loop predictor captures the exit exactly.
        let mut with_loop = TageScL::new(TageSclConfig::storage_kb(8));
        let mut without = TageScL::new(TageSclConfig {
            loop_entries: None,
            ..TageSclConfig::storage_kb(8)
        });
        let run = |p: &mut TageScL| {
            let mut wrong = 0u32;
            for lap in 0..120 {
                for i in 0..24 {
                    let taken = i != 23;
                    let pred = p.predict(0x40);
                    p.update(0x40, taken, pred);
                    if lap >= 60 && pred != taken {
                        wrong += 1;
                    }
                }
            }
            wrong
        };
        let wrong_with = run(&mut with_loop);
        let wrong_without = run(&mut without);
        assert!(
            wrong_with <= wrong_without,
            "loop predictor should not hurt: {wrong_with} vs {wrong_without}"
        );
        assert!(wrong_with <= 2, "confident loop exits mispredicted {wrong_with}");
    }

    #[test]
    fn bigger_budget_is_no_worse_on_many_branches() {
        // Many interleaved biased branches stress capacity.
        let mut small = TageScL::kb8();
        let mut big = TageScL::kb64();
        let run = |p: &mut TageScL| {
            let mut state = 77u64;
            let mut correct = 0u64;
            let mut total = 0u64;
            for round in 0..3 {
                for b in 0..4000u64 {
                    let ip = 0x1000 + b * 4;
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(b);
                    // Per-branch fixed bias decided by the branch id.
                    let bias = 20 + (b * 37) % 60;
                    let taken = (state >> 33) % 100 < bias;
                    let pred = p.predict(ip);
                    p.update(ip, taken, pred);
                    if round == 2 {
                        total += 1;
                        correct += u64::from(pred == taken);
                    }
                }
            }
            correct as f64 / total as f64
        };
        let acc_small = run(&mut small);
        let acc_big = run(&mut big);
        assert!(
            acc_big >= acc_small - 0.01,
            "64KB ({acc_big:.3}) should be at least as good as 8KB ({acc_small:.3})"
        );
    }

    #[test]
    fn sc_component_does_not_degrade_biased_stream() {
        let mut with_sc = TageScL::kb8();
        let mut no_sc = TageScL::new(TageSclConfig::tage_l(8));
        let run = |p: &mut TageScL| {
            let mut state = 3u64;
            let mut correct = 0u64;
            for i in 0..6000u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let taken = (state >> 40) % 100 < 80;
                let pred = p.predict(0xBEEF);
                p.update(0xBEEF, taken, pred);
                if i >= 3000 {
                    correct += u64::from(pred == taken);
                }
            }
            correct as f64 / 3000.0
        };
        let a = run(&mut with_sc);
        let b = run(&mut no_sc);
        assert!(a >= b - 0.03, "SC hurt a biased stream: {a:.3} vs {b:.3}");
        assert!(a > 0.72, "biased stream accuracy {a:.3}");
    }
}
