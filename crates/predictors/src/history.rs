//! Branch history registers: long global histories with O(1) folded hashes,
//! and path history.

/// A long global direction history with random access to recent bits.
///
/// TAGE-class predictors need histories of thousands of bits (the paper:
/// 1,000 at 8KB, 3,000 at 64KB). Bits are stored in a circular buffer;
/// `bit(0)` is the most recent outcome.
///
/// # Examples
///
/// ```
/// use bp_predictors::BitHistory;
///
/// let mut h = BitHistory::new(16);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0)); // most recent
/// assert!(h.bit(1));
/// ```
#[derive(Clone, Debug)]
pub struct BitHistory {
    bits: Vec<u64>,
    head: usize,
    /// Requested (logical) capacity: the age range `bit` accepts.
    capacity: usize,
    /// Ring-position mask. The ring is sized to the next power of two of
    /// `capacity` so the per-push / per-read position arithmetic is a
    /// mask instead of an integer division — `push` and `bit` sit inside
    /// TAGE's per-branch folded-history update, a few calls per bank per
    /// branch. Holding more than `capacity` bits never changes an answer:
    /// `bit(age)` is only defined for `age < capacity`, and those
    /// positions hold identical outcomes in either ring size.
    mask: usize,
}

impl BitHistory {
    /// Creates a zero-filled history of `capacity` bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        let ring = capacity.next_power_of_two();
        BitHistory {
            bits: vec![0; ring.div_ceil(64)],
            head: 0,
            capacity,
            mask: ring - 1,
        }
    }

    /// Number of bits retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes the newest outcome, discarding the oldest.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.head = (self.head + 1) & self.mask;
        let w = self.head / 64;
        let b = self.head % 64;
        self.bits[w] = (self.bits[w] & !(1 << b)) | (u64::from(taken) << b);
    }

    /// Returns the outcome `age` branches ago (0 = most recent).
    ///
    /// # Panics
    ///
    /// Panics if `age >= capacity`.
    #[inline]
    #[must_use]
    pub fn bit(&self, age: usize) -> bool {
        assert!(age < self.capacity, "age {age} out of range");
        let pos = (self.head.wrapping_sub(age)) & self.mask;
        (self.bits[pos / 64] >> (pos % 64)) & 1 == 1
    }
}

/// A folded-history register: maintains `hash = history[0..olen]` folded
/// into `clen` bits, updated in O(1) per branch (the standard
/// cyclic-shift-register construction from CBP predictors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FoldedHistory {
    comp: u64,
    clen: u32,
    olen: usize,
    outpoint: u32,
}

impl FoldedHistory {
    /// Folds an original history of `olen` bits into `clen` bits.
    ///
    /// # Panics
    ///
    /// Panics if `clen` is 0 or greater than 32, or `olen` is zero.
    #[must_use]
    pub fn new(olen: usize, clen: u32) -> Self {
        assert!((1..=32).contains(&clen), "compressed length must be 1..=32");
        assert!(olen > 0, "original length must be positive");
        FoldedHistory {
            comp: 0,
            clen,
            olen,
            outpoint: (olen % clen as usize) as u32,
        }
    }

    /// Current folded value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// Original (unfolded) history length.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.olen
    }

    /// Shifts in the newest bit and shifts out the bit that just aged past
    /// `olen`. `outgoing` must be `history.bit(olen - 1)` *before* the new
    /// bit was pushed.
    pub fn update(&mut self, incoming: bool, outgoing: bool) {
        self.comp = (self.comp << 1) | u64::from(incoming);
        self.comp ^= u64::from(outgoing) << self.outpoint;
        self.comp ^= self.comp >> self.clen;
        self.comp &= (1u64 << self.clen) - 1;
    }
}

/// Path history: low-order bits of recent branch IPs, used to decorrelate
/// table indices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathHistory {
    value: u64,
}

impl PathHistory {
    /// Creates an empty path history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current packed path value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Pushes one bit of a branch IP.
    pub fn push(&mut self, ip: u64) {
        self.value = (self.value << 1) | ((ip >> 2) & 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_roundtrip() {
        let mut h = BitHistory::new(100);
        let pattern: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            h.push(b);
        }
        for (age, &b) in pattern.iter().rev().enumerate() {
            assert_eq!(h.bit(age), b, "age {age}");
        }
    }

    #[test]
    fn history_wraps() {
        let mut h = BitHistory::new(8);
        for i in 0..100 {
            h.push(i % 2 == 0);
        }
        // Last pushed was i=99 (odd -> false).
        assert!(!h.bit(0));
        assert!(h.bit(1));
    }

    /// The folded register must equal a brute-force XOR fold of the true
    /// history at all times: a bit of age `a` (0 = newest) occupies
    /// position `a` of the conceptual shift register and therefore
    /// contributes at folded position `a mod clen`.
    #[test]
    fn folded_matches_brute_force() {
        for (olen, clen) in [(37usize, 11u32), (130, 12), (8, 8), (1000, 13)] {
            let mut f = FoldedHistory::new(olen, clen);
            let mut bits: Vec<bool> = Vec::new();
            let mut state = 0x1234_5678_u64;
            for _ in 0..400 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let newbit = (state >> 40) & 1 == 1;
                let outgoing = if bits.len() >= olen {
                    bits[bits.len() - olen]
                } else {
                    false
                };
                f.update(newbit, outgoing);
                bits.push(newbit);

                let mut expect = 0u64;
                for (age, &b) in bits.iter().rev().take(olen).enumerate() {
                    if b {
                        expect ^= 1 << (age as u32 % clen);
                    }
                }
                assert_eq!(f.value(), expect, "olen={olen} clen={clen}");
            }
        }
    }

    #[test]
    fn folded_stays_in_range() {
        let mut f = FoldedHistory::new(1000, 12);
        for i in 0..5000u64 {
            f.update(i % 7 == 0, i % 5 == 0);
            assert!(f.value() < (1 << 12));
        }
    }

    #[test]
    fn path_history_packs_bits() {
        let mut p = PathHistory::new();
        p.push(0b100); // bit 2 = 1
        p.push(0b000); // bit 2 = 0
        assert_eq!(p.value(), 0b10);
    }
}
