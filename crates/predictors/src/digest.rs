//! FNV-1a hashing of predictor state, shared by the `state_digest`
//! methods on the optimized and naive-reference implementations.
//!
//! The bit-identity suite (`tests/bit_identity.rs`) compares digests of
//! full internal state — every table counter, folded-history register and
//! policy counter — after replaying identical branch streams through the
//! optimized and naive predictors. Both sides must therefore feed fields
//! in the same canonical order: bank-major table entries as
//! (ctr, tag, useful) triples, then folded histories, then scalars.

/// Incremental 64-bit FNV-1a over little-endian `u64` words.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}
