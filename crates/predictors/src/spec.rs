//! Predictor configuration factory and single-pass lockstep evaluation.
//!
//! The paper's studies are sweeps: the same branch stream scored under
//! many predictor configurations (six TAGE-SC-L storage points in Fig. 7,
//! seven predictor generations in the §II survey, three aging policies in
//! the ablation). [`PredictorSpec`] names each configuration as data, and
//! [`sweep_flags`] / [`sweep_measure`] step any set of predictors through
//! **one** pass over the trace's conditional branches instead of
//! re-iterating (and re-decoding) the trace once per configuration.
//!
//! Each predictor still observes exactly the per-branch sequence it would
//! see in a solo [`measure`](crate::measure) /
//! [`misprediction_flags`](crate::misprediction_flags) run — predictors
//! never interact — so flags, accuracies, and instrumentation counters
//! are bit-identical to the per-config passes they replace.

use bp_trace::{ReadTraceError, Trace, TraceReader};

use crate::eval::AccuracyStats;
use crate::oracle::{DirectionPredictor, PerfectPredictor};
use crate::ppm::{Ppm, PpmConfig};
use crate::simple::{AlwaysTaken, Bimodal, GShare, TwoLevelLocal};
use crate::tagescl::{TageScL, TageSclConfig};
use crate::tournament::Tournament;
use crate::perceptron::Perceptron;

/// A buildable, nameable predictor configuration.
///
/// Specs are plain data: they can be parsed from CLI arguments
/// ([`PredictorSpec::parse`]), listed ([`PredictorSpec::storage_points`],
/// [`PredictorSpec::survey`]), and instantiated on demand
/// ([`PredictorSpec::build`]) into an object-safe
/// [`DirectionPredictor`] replay handle.
///
/// # Examples
///
/// ```
/// use bp_predictors::PredictorSpec;
///
/// let spec = PredictorSpec::parse("tage-sc-l-64kb").unwrap();
/// assert_eq!(spec, PredictorSpec::TageScl { storage_kb: 64 });
/// assert_eq!(spec.label(), "tage-sc-l-64kb");
/// let mut p = spec.build();
/// let _ = p.predict_and_train(0x40, true);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorSpec {
    /// Full TAGE-SC-L at a paper storage point (Fig. 7 sweep axis).
    TageScl {
        /// Storage budget in KB (8–1024 in the paper's Fig. 7).
        storage_kb: usize,
    },
    /// TAGE component only (no SC, no loop predictor) — ablation rows.
    TageOnly {
        /// Storage budget in KB.
        storage_kb: usize,
    },
    /// TAGE + loop predictor, no statistical corrector — ablation rows.
    TageL {
        /// Storage budget in KB.
        storage_kb: usize,
    },
    /// Per-IP 2-bit counters (1990s baseline).
    Bimodal {
        /// log2 of the counter-table size.
        log2_entries: u32,
    },
    /// Two-level local-history predictor.
    TwoLevelLocal {
        /// log2 of the per-IP history table size.
        hist_log2: u32,
        /// Local history bits per entry.
        local_bits: u32,
    },
    /// Global-history XOR-indexed counters.
    GShare {
        /// log2 of the counter-table size.
        log2_entries: u32,
        /// Global history bits folded into the index.
        history_bits: u32,
    },
    /// Alpha 21264-style local/global chooser.
    Tournament {
        /// log2 of the component table sizes.
        log2_entries: u32,
    },
    /// Jiménez–Lin perceptron predictor.
    Perceptron {
        /// log2 of the weight-table size.
        table_log2: u32,
        /// Global history length (weights per perceptron).
        history_len: usize,
    },
    /// PPM-like tagged geometric-history predictor (TAGE ancestor).
    Ppm,
    /// Static always-taken baseline.
    AlwaysTaken,
    /// Oracle that never mispredicts (the paper's "Perfect BP" bound).
    Perfect,
}

impl PredictorSpec {
    /// The §II survey lineup: one representative per predictor
    /// generation, in publication order, as used by the `baselines`
    /// study.
    #[must_use]
    pub fn survey() -> Vec<PredictorSpec> {
        vec![
            PredictorSpec::Bimodal { log2_entries: 12 },
            PredictorSpec::TwoLevelLocal {
                hist_log2: 11,
                local_bits: 10,
            },
            PredictorSpec::GShare {
                log2_entries: 13,
                history_bits: 16,
            },
            PredictorSpec::Tournament { log2_entries: 12 },
            PredictorSpec::Perceptron {
                table_log2: 9,
                history_len: 32,
            },
            PredictorSpec::Ppm,
            PredictorSpec::TageScl { storage_kb: 8 },
        ]
    }

    /// The Fig. 7 storage-scaling axis: full TAGE-SC-L at every paper
    /// storage point.
    #[must_use]
    pub fn storage_points() -> Vec<PredictorSpec> {
        TageSclConfig::STORAGE_POINTS_KB
            .iter()
            .map(|&kb| PredictorSpec::TageScl { storage_kb: kb })
            .collect()
    }

    /// The heterogeneous grid lineup: every distinct configuration the
    /// paper's per-workload grids draw on, trained together in one
    /// lockstep trace walk by the `grid` study.
    ///
    /// Sixteen specs — the six Fig. 7 TAGE-SC-L storage points, the
    /// 8 KB TAGE-only and TAGE-L ablation rows, the six classical §II
    /// survey generations, the always-taken floor, and the perfect
    /// ceiling — i.e. mixed TAGE sizes, SC on/off, and classical
    /// baselines in a single pass.
    #[must_use]
    pub fn hetero_grid() -> Vec<PredictorSpec> {
        let mut specs = Self::storage_points();
        specs.push(PredictorSpec::TageOnly { storage_kb: 8 });
        specs.push(PredictorSpec::TageL { storage_kb: 8 });
        specs.extend(
            Self::survey()
                .into_iter()
                .filter(|s| !matches!(s, PredictorSpec::TageScl { .. })),
        );
        specs.push(PredictorSpec::AlwaysTaken);
        specs.push(PredictorSpec::Perfect);
        specs
    }

    /// Parses a comma-separated list of canonical labels (the CLI's
    /// `--predictors` syntax). Whitespace around items is ignored; empty
    /// items are rejected.
    ///
    /// # Errors
    ///
    /// Returns the first per-label [`PredictorSpec::parse`] error.
    pub fn parse_list(s: &str) -> Result<Vec<PredictorSpec>, String> {
        s.split(',')
            .map(|item| PredictorSpec::parse(item.trim()))
            .collect()
    }

    /// Builds every spec in `specs`, in order — the lane lineup fed to
    /// [`sweep_flags`] and friends.
    #[must_use]
    pub fn build_all(specs: &[PredictorSpec]) -> Vec<Box<dyn DirectionPredictor>> {
        specs.iter().map(PredictorSpec::build).collect()
    }

    /// Instantiates the configured predictor behind an object-safe
    /// replay handle.
    #[must_use]
    pub fn build(&self) -> Box<dyn DirectionPredictor> {
        match *self {
            PredictorSpec::TageScl { storage_kb } => {
                Box::new(TageScL::new(TageSclConfig::storage_kb(storage_kb)))
            }
            PredictorSpec::TageOnly { storage_kb } => {
                Box::new(TageScL::new(TageSclConfig::tage_only(storage_kb)))
            }
            PredictorSpec::TageL { storage_kb } => {
                Box::new(TageScL::new(TageSclConfig::tage_l(storage_kb)))
            }
            PredictorSpec::Bimodal { log2_entries } => Box::new(Bimodal::new(log2_entries)),
            PredictorSpec::TwoLevelLocal {
                hist_log2,
                local_bits,
            } => Box::new(TwoLevelLocal::new(hist_log2, local_bits)),
            PredictorSpec::GShare {
                log2_entries,
                history_bits,
            } => Box::new(GShare::new(log2_entries, history_bits)),
            PredictorSpec::Tournament { log2_entries } => Box::new(Tournament::new(log2_entries)),
            PredictorSpec::Perceptron {
                table_log2,
                history_len,
            } => Box::new(Perceptron::new(table_log2, history_len)),
            PredictorSpec::Ppm => Box::new(Ppm::new(PpmConfig::default())),
            PredictorSpec::AlwaysTaken => Box::new(AlwaysTaken),
            PredictorSpec::Perfect => Box::new(PerfectPredictor),
        }
    }

    /// Canonical CLI/report label; [`PredictorSpec::parse`] is its
    /// inverse.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            PredictorSpec::TageScl { storage_kb } => format!("tage-sc-l-{storage_kb}kb"),
            PredictorSpec::TageOnly { storage_kb } => format!("tage-{storage_kb}kb"),
            PredictorSpec::TageL { storage_kb } => format!("tage-l-{storage_kb}kb"),
            PredictorSpec::Bimodal { .. } => "bimodal".to_string(),
            PredictorSpec::TwoLevelLocal { .. } => "two-level-local".to_string(),
            PredictorSpec::GShare { .. } => "gshare".to_string(),
            PredictorSpec::Tournament { .. } => "tournament".to_string(),
            PredictorSpec::Perceptron { .. } => "perceptron".to_string(),
            PredictorSpec::Ppm => "ppm".to_string(),
            PredictorSpec::AlwaysTaken => "always-taken".to_string(),
            PredictorSpec::Perfect => "perfect".to_string(),
        }
    }

    /// Parses a canonical label (as printed by `branch-lab list` and
    /// accepted by the CLI's sweep options) back into a spec.
    ///
    /// Sized families accept a `-<N>kb` suffix: `tage-sc-l-64kb`,
    /// `tage-8kb` (TAGE only), `tage-l-8kb`. Fixed-configuration
    /// baselines are bare names: `bimodal`, `two-level-local`, `gshare`,
    /// `tournament`, `perceptron`, `ppm`, `always-taken`, `perfect`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown label and listing the
    /// accepted forms.
    pub fn parse(s: &str) -> Result<PredictorSpec, String> {
        fn kb_suffix(s: &str, prefix: &str) -> Option<usize> {
            s.strip_prefix(prefix)?
                .strip_suffix("kb")?
                .parse::<usize>()
                .ok()
                .filter(|&kb| kb > 0)
        }
        if let Some(kb) = kb_suffix(s, "tage-sc-l-") {
            return Ok(PredictorSpec::TageScl { storage_kb: kb });
        }
        if let Some(kb) = kb_suffix(s, "tage-l-") {
            return Ok(PredictorSpec::TageL { storage_kb: kb });
        }
        if let Some(kb) = kb_suffix(s, "tage-") {
            return Ok(PredictorSpec::TageOnly { storage_kb: kb });
        }
        match s {
            "bimodal" => Ok(PredictorSpec::Bimodal { log2_entries: 12 }),
            "two-level-local" => Ok(PredictorSpec::TwoLevelLocal {
                hist_log2: 11,
                local_bits: 10,
            }),
            "gshare" => Ok(PredictorSpec::GShare {
                log2_entries: 13,
                history_bits: 16,
            }),
            "tournament" => Ok(PredictorSpec::Tournament { log2_entries: 12 }),
            "perceptron" => Ok(PredictorSpec::Perceptron {
                table_log2: 9,
                history_len: 32,
            }),
            "ppm" => Ok(PredictorSpec::Ppm),
            "always-taken" => Ok(PredictorSpec::AlwaysTaken),
            "perfect" => Ok(PredictorSpec::Perfect),
            other => Err(format!(
                "unknown predictor '{other}'; expected one of bimodal, \
                 two-level-local, gshare, tournament, perceptron, ppm, \
                 always-taken, perfect, tage-sc-l-<N>kb, tage-<N>kb, \
                 tage-l-<N>kb"
            )),
        }
    }
}

/// Branches buffered per block in the lockstep sweeps.
///
/// Predictors process the stream block-by-block rather than interleaving
/// per branch: within a block each predictor's tables stay cache-resident
/// instead of evicting the other configurations' tables on every branch
/// (six TAGE-SC-L points together are megabytes of state). The trace is
/// still scanned exactly once, and each predictor still consumes the
/// identical branch sequence in order.
const SWEEP_BLOCK: usize = 16384;

/// Re-blocks a record stream's conditional branches into
/// [`SWEEP_BLOCK`]-sized `(ip, taken)` batches, independent of how the
/// reader chunks the stream — so every sweep sees the identical blocking
/// (and produces bit-identical results) whether the trace comes from
/// memory or block-wise file decode.
fn stream_branch_blocks<R: TraceReader>(
    mut reader: R,
    mut run: impl FnMut(&[(u64, bool)]),
) -> Result<(), ReadTraceError> {
    let mut block: Vec<(u64, bool)> = Vec::with_capacity(SWEEP_BLOCK);
    while let Some(chunk) = reader.next_chunk()? {
        // Cooperative cancellation once per streamed chunk (a no-op
        // without an installed scope): a cancelled sweep stops training
        // within one block instead of finishing the trace.
        bp_metrics::cancel::checkpoint("sweep.train");
        for inst in chunk {
            if let Some(b) = inst.branch {
                if b.kind == bp_trace::BranchKind::Conditional {
                    block.push((inst.ip, b.taken));
                    if block.len() == SWEEP_BLOCK {
                        run(&block);
                        block.clear();
                    }
                }
            }
        }
    }
    if !block.is_empty() {
        run(&block);
    }
    Ok(())
}

/// Steps every predictor through one pass over `trace`'s conditional
/// branches, returning one misprediction-flag stream per predictor (same
/// order).
///
/// Equivalent to calling
/// [`misprediction_flags`](crate::misprediction_flags) once per predictor
/// — each predictor sees the identical (ip, taken) sequence and produces
/// the identical flags — but the trace is decoded and iterated once
/// instead of `predictors.len()` times.
#[must_use]
pub fn sweep_flags(predictors: &mut [Box<dyn DirectionPredictor>], trace: &Trace) -> Vec<Vec<bool>> {
    sweep_flags_stream(predictors, trace.reader()).expect("in-memory reader cannot fail")
}

/// [`sweep_flags`] over any [`TraceReader`]: the flag streams are
/// bit-identical to the in-memory sweep, but a block-wise file reader
/// never materializes the trace.
///
/// # Errors
///
/// Propagates any [`ReadTraceError`] from the underlying stream.
pub fn sweep_flags_stream<R: TraceReader>(
    predictors: &mut [Box<dyn DirectionPredictor>],
    reader: R,
) -> Result<Vec<Vec<bool>>, ReadTraceError> {
    sweep_flags_stream_observed(predictors, reader, |_, _| {})
}

/// [`sweep_flags_stream`], invoking `observe` after every processed
/// block with the cumulative branch count and the predictors (for
/// example to record [`DirectionPredictor::state_digest`] checkpoints).
///
/// Blocking is an implementation detail of cache residency, not of
/// predictor behaviour: after `observe(n, ..)`, every predictor has
/// consumed exactly the first `n` branches of the stream — the same
/// state a solo run reaches after `n` branches — which is what lets the
/// differential suite compare digests mid-stream.
///
/// # Errors
///
/// Propagates any [`ReadTraceError`] from the underlying stream.
pub fn sweep_flags_stream_observed<R: TraceReader>(
    predictors: &mut [Box<dyn DirectionPredictor>],
    reader: R,
    mut observe: impl FnMut(usize, &[Box<dyn DirectionPredictor>]),
) -> Result<Vec<Vec<bool>>, ReadTraceError> {
    let mut flags: Vec<Vec<bool>> = predictors.iter().map(|_| Vec::new()).collect();
    let mut seen = 0usize;
    stream_branch_blocks(reader, |block| {
        for (p, f) in predictors.iter_mut().zip(flags.iter_mut()) {
            for &(ip, taken) in block {
                f.push(p.predict_and_train(ip, taken) != taken);
            }
        }
        seen += block.len();
        observe(seen, predictors);
    })?;
    Ok(flags)
}

/// Single-pass counterpart of [`measure`](crate::measure): aggregate
/// accuracy for every predictor from one iteration of the branch stream.
#[must_use]
pub fn sweep_measure(
    predictors: &mut [Box<dyn DirectionPredictor>],
    trace: &Trace,
) -> Vec<AccuracyStats> {
    sweep_measure_stream(predictors, trace.reader()).expect("in-memory reader cannot fail")
}

/// [`sweep_measure`] over any [`TraceReader`]. With a block-wise file
/// reader, peak memory is bounded by one decode block regardless of
/// trace length — the path long-horizon accuracy studies use.
///
/// # Errors
///
/// Propagates any [`ReadTraceError`] from the underlying stream.
pub fn sweep_measure_stream<R: TraceReader>(
    predictors: &mut [Box<dyn DirectionPredictor>],
    reader: R,
) -> Result<Vec<AccuracyStats>, ReadTraceError> {
    let mut stats = vec![AccuracyStats::default(); predictors.len()];
    stream_branch_blocks(reader, |block| {
        for (p, s) in predictors.iter_mut().zip(stats.iter_mut()) {
            for &(ip, taken) in block {
                s.record(p.predict_and_train(ip, taken) == taken);
            }
        }
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{measure, misprediction_flags};
    use bp_trace::{RetiredInst, TraceMeta};

    fn noisy_trace(n: usize) -> Trace {
        let mut t = Trace::new(TraceMeta::new("spec-test", 0));
        let mut state = 41u64;
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x40 + (state % 13) * 4;
            let taken = (state >> 17) % 5 < 3 || i % 7 == 0;
            t.push(RetiredInst::cond_branch(ip, taken, ip + 64, None, None));
        }
        t
    }

    #[test]
    fn labels_round_trip_through_parse() {
        let mut specs = PredictorSpec::survey();
        specs.extend(PredictorSpec::storage_points());
        specs.push(PredictorSpec::TageL { storage_kb: 8 });
        specs.push(PredictorSpec::TageOnly { storage_kb: 64 });
        specs.push(PredictorSpec::AlwaysTaken);
        specs.push(PredictorSpec::Perfect);
        for spec in specs {
            assert_eq!(PredictorSpec::parse(&spec.label()), Ok(spec));
        }
        assert!(PredictorSpec::parse("tage-sc-l-0kb").is_err());
        assert!(PredictorSpec::parse("neural-net").is_err());
    }

    #[test]
    fn sweep_flags_matches_per_predictor_passes() {
        let t = noisy_trace(4_000);
        let specs = PredictorSpec::survey();
        let mut lockstep: Vec<_> = specs.iter().map(PredictorSpec::build).collect();
        let swept = sweep_flags(&mut lockstep, &t);
        for (spec, flags) in specs.iter().zip(&swept) {
            let solo = misprediction_flags(spec.build().as_mut(), &t);
            assert_eq!(*flags, solo, "{}", spec.label());
        }
    }

    #[test]
    fn sweep_measure_matches_measure() {
        let t = noisy_trace(4_000);
        let specs = PredictorSpec::survey();
        let mut lockstep: Vec<_> = specs.iter().map(PredictorSpec::build).collect();
        let swept = sweep_measure(&mut lockstep, &t);
        for (spec, stats) in specs.iter().zip(&swept) {
            assert_eq!(*stats, measure(spec.build().as_mut(), &t), "{}", spec.label());
        }
    }

    #[test]
    fn streamed_sweeps_match_in_memory_sweeps() {
        // The same trace through the block-wise file decoder must yield
        // bit-identical flags and stats: chunk boundaries carry no
        // meaning once re-blocked to SWEEP_BLOCK.
        let t = noisy_trace(50_000);
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).unwrap();
        let specs = PredictorSpec::survey();

        let mut mem = specs.iter().map(PredictorSpec::build).collect::<Vec<_>>();
        let mem_flags = sweep_flags(&mut mem, &t);
        let mut streamed = specs.iter().map(PredictorSpec::build).collect::<Vec<_>>();
        let reader = bp_trace::BptrReader::new(bytes.as_slice()).unwrap();
        let stream_flags = sweep_flags_stream(&mut streamed, reader).unwrap();
        assert_eq!(mem_flags, stream_flags);

        let mut mem = specs.iter().map(PredictorSpec::build).collect::<Vec<_>>();
        let mem_stats = sweep_measure(&mut mem, &t);
        let mut streamed = specs.iter().map(PredictorSpec::build).collect::<Vec<_>>();
        let reader = bp_trace::BptrReader::new(bytes.as_slice()).unwrap();
        let stream_stats = sweep_measure_stream(&mut streamed, reader).unwrap();
        assert_eq!(mem_stats, stream_stats);
    }

    #[test]
    fn hetero_grid_is_sixteen_distinct_buildable_specs() {
        let grid = PredictorSpec::hetero_grid();
        assert_eq!(grid.len(), 16);
        for (i, a) in grid.iter().enumerate() {
            assert!(grid[i + 1..].iter().all(|b| a != b), "duplicate {a:?}");
            // Every grid spec round-trips through its label and builds.
            assert_eq!(PredictorSpec::parse(&a.label()), Ok(*a));
            let _ = a.build();
        }
    }

    #[test]
    fn parse_list_accepts_spaced_labels_and_rejects_unknowns() {
        let specs = PredictorSpec::parse_list("gshare, tage-sc-l-64kb ,perfect").unwrap();
        assert_eq!(
            specs,
            vec![
                PredictorSpec::GShare {
                    log2_entries: 13,
                    history_bits: 16
                },
                PredictorSpec::TageScl { storage_kb: 64 },
                PredictorSpec::Perfect,
            ]
        );
        assert!(PredictorSpec::parse_list("gshare,,perfect").is_err());
        assert!(PredictorSpec::parse_list("gshare,warp-drive").is_err());
    }

    #[test]
    fn observed_sweep_checkpoints_match_solo_replay() {
        // After the observer reports n branches consumed, each lockstep
        // predictor's digest must equal a solo predictor fed exactly the
        // first n branches — blocking must not be observable.
        let t = noisy_trace(40_000);
        let branches: Vec<(u64, bool)> = t
            .iter()
            .filter_map(|i| i.branch.map(|b| (i.ip, b.taken)))
            .collect();
        let specs = [
            PredictorSpec::GShare {
                log2_entries: 10,
                history_bits: 12,
            },
            PredictorSpec::TageScl { storage_kb: 8 },
        ];
        let mut lockstep = PredictorSpec::build_all(&specs);
        let mut checkpoints: Vec<(usize, Vec<u64>)> = Vec::new();
        let _ = sweep_flags_stream_observed(&mut lockstep, t.reader(), |n, ps| {
            checkpoints.push((n, ps.iter().map(|p| p.state_digest()).collect()));
        })
        .unwrap();
        assert!(checkpoints.len() >= 2, "expected multiple blocks");

        let mut solo = PredictorSpec::build_all(&specs);
        let mut fed = 0usize;
        for (n, digests) in &checkpoints {
            for &(ip, taken) in &branches[fed..*n] {
                for p in &mut solo {
                    let _ = p.predict_and_train(ip, taken);
                }
            }
            fed = *n;
            let solo_digests: Vec<u64> = solo.iter().map(|p| p.state_digest()).collect();
            assert_eq!(digests, &solo_digests, "checkpoint at {n}");
        }
    }

    #[test]
    fn perfect_spec_never_mispredicts() {
        let t = noisy_trace(500);
        let mut ps = vec![PredictorSpec::Perfect.build()];
        let flags = sweep_flags(&mut ps, &t);
        assert!(flags[0].iter().all(|&f| !f));
    }
}
