//! Naive reference implementations of TAGE and TAGE-SC-L.
//!
//! These are the straightforward array-of-structs formulations the
//! optimized hot-path implementations ([`crate::Tage`],
//! [`crate::TageScL`]) were derived from: one `Vec<Vec<Entry>>` per
//! tagged bank, [`SatCounter`] state machines instead of branchless
//! lanes, and indices recomputed wherever they are needed. They exist so
//! the optimizations stay *provably* behavior-preserving: the
//! bit-identity suite (`tests/bit_identity.rs`) replays full workload
//! traces through both implementations and asserts identical prediction
//! streams and identical [`state_digest`](NaiveTage::state_digest)
//! values at the end.
//!
//! Nothing here is performance-sensitive; clarity wins every trade. The
//! structures intentionally mirror `tage.rs`/`sc.rs`/`tagescl.rs`
//! line-for-line where behavior is concerned — when changing predictor
//! behavior, change both sides and let the tests prove agreement.

use crate::counter::{SatCounter, SignedCounter};
use crate::digest::Fnv;
use crate::history::{BitHistory, FoldedHistory, PathHistory};
use crate::loop_pred::LoopPredictor;
use crate::sc::{ScConfig, ScDecision};
use crate::tage::TageConfig;
use crate::tagescl::TageSclConfig;
use crate::Predictor;

#[derive(Clone, Copy, Debug)]
struct NaiveEntry {
    ctr: SatCounter,
    tag: u16,
    useful: SatCounter,
}

impl NaiveEntry {
    fn empty() -> Self {
        NaiveEntry {
            ctr: SatCounter::weakly_not_taken(3),
            tag: 0,
            useful: SatCounter::new(2, 0),
        }
    }
}

#[derive(Clone, Debug)]
struct NaiveCtx {
    ip: u64,
    indices: Vec<usize>,
    tags: Vec<u16>,
    provider: Option<usize>,
    alt_pred: bool,
    provider_pred: bool,
    provider_new: bool,
    pred: bool,
}

/// Reference TAGE: per-bank `Vec<NaiveEntry>` tables, per-prediction
/// heap-allocated context, [`SatCounter`] updates. Behaviorally identical
/// to [`crate::Tage`] by construction and by test.
#[derive(Clone, Debug)]
pub struct NaiveTage {
    config: TageConfig,
    lengths: Vec<usize>,
    bimodal: Vec<SatCounter>,
    tables: Vec<Vec<NaiveEntry>>,
    folded_idx: Vec<FoldedHistory>,
    folded_tag0: Vec<FoldedHistory>,
    folded_tag1: Vec<FoldedHistory>,
    ghist: BitHistory,
    path: PathHistory,
    use_alt_on_na: SignedCounter,
    lfsr: u64,
    updates: u64,
    ctx: Option<NaiveCtx>,
}

impl NaiveTage {
    /// Creates a reference TAGE predictor from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TageConfig::history_lengths`]).
    #[must_use]
    pub fn new(config: TageConfig) -> Self {
        let lengths = config.history_lengths();
        let table_entries = 1usize << config.table_log2;
        NaiveTage {
            ghist: BitHistory::new(config.max_hist + 8),
            bimodal: vec![SatCounter::weakly_not_taken(2); 1 << config.bimodal_log2],
            tables: vec![vec![NaiveEntry::empty(); table_entries]; config.num_tables],
            folded_idx: lengths
                .iter()
                .map(|&l| FoldedHistory::new(l, config.table_log2))
                .collect(),
            folded_tag0: lengths
                .iter()
                .map(|&l| FoldedHistory::new(l, config.tag_bits))
                .collect(),
            folded_tag1: lengths
                .iter()
                .map(|&l| FoldedHistory::new(l, config.tag_bits - 1))
                .collect(),
            path: PathHistory::new(),
            use_alt_on_na: SignedCounter::new(4),
            lfsr: 0xACE1_u64,
            updates: 0,
            ctx: None,
            lengths,
            config,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.lfsr = x;
        x
    }

    fn bimodal_index(&self, ip: u64) -> usize {
        ((ip >> 2) & ((1u64 << self.config.bimodal_log2) - 1)) as usize
    }

    fn table_index(&self, ip: u64, t: usize) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        let path_bits = self.path.value() & ((1 << self.lengths[t].min(16)) - 1);
        let h = self.folded_idx[t].value()
            ^ (ip >> 2)
            ^ ((ip >> 2) >> (u64::from(self.config.table_log2).saturating_sub(t as u64 % 4)))
            ^ path_bits;
        (h & mask) as usize
    }

    fn tag(&self, ip: u64, t: usize) -> u16 {
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((ip >> 2) ^ self.folded_tag0[t].value() ^ (self.folded_tag1[t].value() << 1)) & mask)
            as u16
    }

    fn compute(&mut self, ip: u64) -> NaiveCtx {
        let n = self.config.num_tables;
        let mut indices = Vec::with_capacity(n);
        let mut tags = Vec::with_capacity(n);
        for t in 0..n {
            indices.push(self.table_index(ip, t));
            tags.push(self.tag(ip, t));
        }
        let bimodal_pred = self.bimodal[self.bimodal_index(ip)].taken();
        let mut provider = None;
        let mut alt = None;
        for t in (0..n).rev() {
            if self.tables[t][indices[t]].tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }
        let alt_pred = match alt {
            Some(t) => self.tables[t][indices[t]].ctr.taken(),
            None => bimodal_pred,
        };
        let (provider_pred, provider_new) = match provider {
            Some(t) => {
                let e = &self.tables[t][indices[t]];
                (e.ctr.taken(), e.ctr.is_weak() || e.useful.value() == 0)
            }
            None => (bimodal_pred, false),
        };
        let used_alt = provider.is_some() && provider_new && self.use_alt_on_na.value() >= 0;
        let pred = if used_alt { alt_pred } else { provider_pred };
        NaiveCtx {
            ip,
            indices,
            tags,
            provider,
            alt_pred,
            provider_pred,
            provider_new,
            pred,
        }
    }

    /// Whether the last prediction came from a high-confidence provider.
    #[must_use]
    pub fn last_confidence_high(&self) -> bool {
        self.ctx.as_ref().is_some_and(|c| match c.provider {
            Some(t) => self.tables[t][c.indices[t]].ctr.is_strong(),
            None => self.bimodal[self.bimodal_index(c.ip)].is_strong(),
        })
    }

    fn allocate(&mut self, ctx: &NaiveCtx, taken: bool) {
        let n = self.config.num_tables;
        let start = ctx.provider.map_or(0, |p| p + 1);
        if start >= n {
            return;
        }
        let mut free = Vec::new();
        for t in start..n {
            if self.tables[t][ctx.indices[t]].useful.value() == 0 {
                free.push(t);
            }
        }
        if free.is_empty() {
            for t in start..n {
                let e = &mut self.tables[t][ctx.indices[t]];
                e.useful.update(false);
            }
            return;
        }
        let mut chosen = free[0];
        for &t in &free[1..] {
            if self.next_rand().is_multiple_of(2) {
                break;
            }
            chosen = t;
        }
        let idx = ctx.indices[chosen];
        let e = &mut self.tables[chosen][idx];
        e.tag = ctx.tags[chosen];
        e.ctr = if taken {
            SatCounter::weakly_taken(3)
        } else {
            SatCounter::weakly_not_taken(3)
        };
        e.useful.set(0);
    }

    fn age_useful(&mut self) {
        for table in &mut self.tables {
            for e in table.iter_mut() {
                let halved = e.useful.value() >> 1;
                e.useful.set(halved);
            }
        }
    }

    fn push_history(&mut self, ip: u64, taken: bool) {
        for t in 0..self.config.num_tables {
            let olen = self.lengths[t];
            let outgoing = self.ghist.bit(olen - 1);
            self.folded_idx[t].update(taken, outgoing);
            self.folded_tag0[t].update(taken, outgoing);
            self.folded_tag1[t].update(taken, outgoing);
        }
        self.ghist.push(taken);
        self.path.push(ip);
    }

    /// FNV-1a digest of the complete architectural state, field-for-field
    /// comparable with [`crate::Tage::state_digest`].
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for b in &self.bimodal {
            h.push(u64::from(b.value()));
        }
        for table in &self.tables {
            for e in table {
                h.push(u64::from(e.ctr.value()));
                h.push(u64::from(e.tag));
                h.push(u64::from(e.useful.value()));
            }
        }
        for t in 0..self.config.num_tables {
            h.push(self.folded_idx[t].value());
            h.push(self.folded_tag0[t].value());
            h.push(self.folded_tag1[t].value());
        }
        h.push(self.path.value());
        h.push(self.use_alt_on_na.value() as u64);
        h.push(self.lfsr);
        h.push(self.updates);
        h.finish()
    }
}

impl Predictor for NaiveTage {
    fn name(&self) -> &'static str {
        "naive-tage"
    }

    fn predict(&mut self, ip: u64) -> bool {
        let ctx = self.compute(ip);
        let pred = ctx.pred;
        self.ctx = Some(ctx);
        pred
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let ctx = match self.ctx.take() {
            Some(c) if c.ip == ip => c,
            _ => self.compute(ip),
        };
        self.updates += 1;

        match ctx.provider {
            Some(t) => {
                let idx = ctx.indices[t];
                if ctx.provider_pred != ctx.alt_pred {
                    let correct = ctx.provider_pred == taken;
                    self.tables[t][idx].useful.update(correct);
                }
                self.tables[t][idx].ctr.update(taken);
                if ctx.provider_new && ctx.provider_pred != ctx.alt_pred {
                    self.use_alt_on_na.update(ctx.alt_pred == taken);
                }
                if ctx.provider_new {
                    let bidx = self.bimodal_index(ip);
                    self.bimodal[bidx].update(taken);
                }
            }
            None => {
                let bidx = self.bimodal_index(ip);
                self.bimodal[bidx].update(taken);
            }
        }

        if ctx.pred != taken {
            self.allocate(&ctx, taken);
        }

        if self.updates.is_multiple_of(self.config.u_reset_period) {
            self.age_useful();
        }

        self.push_history(ip, taken);
    }

    fn storage_bits(&self) -> usize {
        let entry_bits = (3 + 2 + self.config.tag_bits) as usize;
        let tagged: usize = self.tables.iter().map(|t| t.len() * entry_bits).sum();
        self.bimodal.len() * 2 + tagged + self.config.max_hist + 64
    }

    fn state_digest(&self) -> u64 {
        NaiveTage::state_digest(self)
    }
}

/// Reference statistical corrector: every table index recomputed at each
/// use, as in the original formulation. Behaviorally identical to
/// [`crate::StatisticalCorrector`].
#[derive(Clone, Debug)]
pub struct NaiveStatisticalCorrector {
    config: ScConfig,
    bias: Vec<SignedCounter>,
    gehl: Vec<Vec<SignedCounter>>,
    history: u64,
    threshold: i32,
    tc: i32,
    last_sum: i32,
}

impl NaiveStatisticalCorrector {
    /// Creates a reference corrector from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no history lengths or out-of-range
    /// widths.
    #[must_use]
    pub fn new(config: ScConfig) -> Self {
        assert!(!config.history_lengths.is_empty(), "need at least one GEHL table");
        assert!((1..=16).contains(&config.table_log2));
        assert!((2..=8).contains(&config.counter_bits));
        let entries = 1usize << config.table_log2;
        NaiveStatisticalCorrector {
            bias: vec![SignedCounter::new(config.counter_bits); entries * 2],
            gehl: config
                .history_lengths
                .iter()
                .map(|_| vec![SignedCounter::new(config.counter_bits); entries])
                .collect(),
            history: 0,
            threshold: 6,
            tc: 0,
            last_sum: 0,
            config,
        }
    }

    fn bias_index(&self, ip: u64, input_pred: bool) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        ((((ip >> 2) & mask) << 1) | u64::from(input_pred)) as usize
    }

    fn gehl_index(&self, ip: u64, component: usize) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        let bits = self.config.history_lengths[component];
        let h = self.history & ((1u64 << bits.min(63)) - 1);
        let mixed =
            h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - u64::from(self.config.table_log2));
        (((ip >> 2) ^ mixed ^ (h << 1)) & mask) as usize
    }

    fn sum(&self, ip: u64, input_pred: bool) -> i32 {
        let mut s = self.bias[self.bias_index(ip, input_pred)].centered();
        for (c, table) in self.gehl.iter().enumerate() {
            s += table[self.gehl_index(ip, c)].centered();
        }
        s + if input_pred { 8 } else { -8 }
    }

    /// Arbitrates `input_pred` for branch `ip`; see
    /// [`crate::StatisticalCorrector::refine`].
    pub fn refine(&mut self, ip: u64, input_pred: bool, input_confident: bool) -> ScDecision {
        let sum = self.sum(ip, input_pred);
        self.last_sum = sum;
        let sc_pred = sum >= 0;
        let margin = if input_confident {
            self.threshold * 2
        } else {
            self.threshold
        };
        if sc_pred != input_pred && sum.abs() >= margin {
            ScDecision {
                taken: sc_pred,
                overrode: true,
            }
        } else {
            ScDecision {
                taken: input_pred,
                overrode: false,
            }
        }
    }

    /// Trains with the resolved outcome; see
    /// [`crate::StatisticalCorrector::train`].
    pub fn train(&mut self, ip: u64, input_pred: bool, final_pred: bool, taken: bool) {
        let sum = self.last_sum;
        if final_pred != taken || sum.abs() < self.threshold * 4 {
            let bidx = self.bias_index(ip, input_pred);
            self.bias[bidx].update(taken);
            for c in 0..self.gehl.len() {
                let idx = self.gehl_index(ip, c);
                self.gehl[c][idx].update(taken);
            }
        }
        let sc_pred = sum >= 0;
        if sc_pred != input_pred {
            if final_pred != taken && sc_pred != taken {
                self.tc += 1;
                if self.tc >= 4 {
                    self.threshold = (self.threshold + 1).min(64);
                    self.tc = 0;
                }
            } else if final_pred != taken && sc_pred == taken {
                self.tc -= 1;
                if self.tc <= -4 {
                    self.threshold = (self.threshold - 1).max(2);
                    self.tc = 0;
                }
            }
        }
        self.history = (self.history << 1) | u64::from(taken);
    }

    /// FNV-1a digest of the trained state, field-for-field comparable
    /// with [`crate::StatisticalCorrector::state_digest`].
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for b in &self.bias {
            h.push(b.value() as u64);
        }
        for table in &self.gehl {
            for c in table {
                h.push(c.value() as u64);
            }
        }
        h.push(self.threshold as u64);
        h.push(self.tc as u64);
        h.push(self.history);
        h.push(self.last_sum as u64);
        h.finish()
    }
}

#[derive(Clone, Copy, Debug)]
struct NaiveEnsembleCtx {
    ip: u64,
    tage_pred: bool,
    loop_vote: Option<bool>,
    pre_sc_pred: bool,
    final_pred: bool,
}

/// Reference TAGE-SC-L: [`NaiveTage`] + [`NaiveStatisticalCorrector`] +
/// the (shared) [`LoopPredictor`], arbitrated exactly as
/// [`crate::TageScL`] does.
#[derive(Clone, Debug)]
pub struct NaiveTageScL {
    tage: NaiveTage,
    sc: Option<NaiveStatisticalCorrector>,
    loop_pred: Option<LoopPredictor>,
    with_loop: SignedCounter,
    name: String,
    ctx: Option<NaiveEnsembleCtx>,
}

impl NaiveTageScL {
    /// Creates a reference TAGE-SC-L predictor from `config`.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`TageConfig::history_lengths`]).
    #[must_use]
    pub fn new(config: TageSclConfig) -> Self {
        NaiveTageScL {
            name: format!("naive-tage-sc-l-{}kb", config.nominal_kb),
            tage: NaiveTage::new(config.tage),
            sc: config.sc.map(NaiveStatisticalCorrector::new),
            loop_pred: config.loop_entries.map(LoopPredictor::new),
            with_loop: SignedCounter::new(7),
            ctx: None,
        }
    }

    /// FNV-1a digest of the complete ensemble state, field-for-field
    /// comparable with [`crate::TageScL::state_digest`].
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.push(self.tage.state_digest());
        h.push(
            self.sc
                .as_ref()
                .map_or(0, NaiveStatisticalCorrector::state_digest),
        );
        h.push(self.loop_pred.as_ref().map_or(0, LoopPredictor::state_digest));
        h.push(self.with_loop.value() as u64);
        h.finish()
    }

    fn compute(&mut self, ip: u64) -> NaiveEnsembleCtx {
        let tage_pred = self.tage.predict(ip);
        let tage_confident = self.tage.last_confidence_high();

        let mut pred = tage_pred;
        let mut loop_vote = None;
        if let Some(lp) = &self.loop_pred {
            if let Some(l) = lp.predict(ip) {
                if l.confident {
                    loop_vote = Some(l.taken);
                    if self.with_loop.value() >= 0 {
                        pred = l.taken;
                    }
                }
            }
        }
        let pre_sc_pred = pred;

        let final_pred = match &mut self.sc {
            Some(sc) => {
                sc.refine(ip, pre_sc_pred, tage_confident || loop_vote.is_some())
                    .taken
            }
            None => pre_sc_pred,
        };
        NaiveEnsembleCtx {
            ip,
            tage_pred,
            loop_vote,
            pre_sc_pred,
            final_pred,
        }
    }
}

impl Predictor for NaiveTageScL {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&mut self, ip: u64) -> bool {
        let ctx = self.compute(ip);
        self.ctx = Some(ctx);
        ctx.final_pred
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let ctx = match self.ctx.take() {
            Some(c) if c.ip == ip => c,
            _ => self.compute(ip),
        };
        if let Some(lv) = ctx.loop_vote {
            if lv != ctx.tage_pred {
                self.with_loop.update(lv == taken);
            }
        }
        if let Some(lp) = &mut self.loop_pred {
            lp.update(ip, taken);
        }
        if let Some(sc) = &mut self.sc {
            sc.train(ip, ctx.pre_sc_pred, ctx.final_pred, taken);
        }
        self.tage.update(ip, taken, ctx.tage_pred);
    }

    fn storage_bits(&self) -> usize {
        self.tage.storage_bits()
            + self
                .sc
                .as_ref()
                .map_or(0, |sc| {
                    let cb = sc.config.counter_bits as usize;
                    sc.bias.len() * cb
                        + sc.gehl.iter().map(|t| t.len() * cb).sum::<usize>()
                        + 64
                })
            + self.loop_pred.as_ref().map_or(0, LoopPredictor::storage_bits)
            + 7
    }

    fn state_digest(&self) -> u64 {
        NaiveTageScL::state_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quick in-crate agreement check on synthetic streams; the full
    /// cross-workload proof lives in `tests/bit_identity.rs`.
    #[test]
    fn naive_and_optimized_agree_on_synthetic_stream() {
        let mut fast = crate::TageScL::kb8();
        let mut slow = NaiveTageScL::new(TageSclConfig::storage_kb(8));
        let mut state = 41u64;
        for i in 0..30_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x1000 + (state >> 20) % 97 * 4;
            let taken = match ip % 3 {
                0 => (state >> 33) % 100 < 85,
                1 => i % 5 != 0,
                _ => (state >> 45) & 1 == 1,
            };
            let pf = fast.predict(ip);
            let ps = slow.predict(ip);
            assert_eq!(pf, ps, "prediction diverged at branch {i}");
            fast.update(ip, taken, pf);
            slow.update(ip, taken, ps);
        }
        assert_eq!(fast.state_digest(), slow.state_digest());
    }

    #[test]
    fn naive_tage_agrees_with_optimized_tage() {
        let mut fast = crate::Tage::new(TageConfig::default());
        let mut slow = NaiveTage::new(TageConfig::default());
        let mut state = 7u64;
        for i in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x400 + (state >> 24) % 61 * 4;
            let taken = (state >> 38) % 100 < 70;
            let pf = fast.predict(ip);
            let ps = slow.predict(ip);
            assert_eq!(pf, ps, "prediction diverged at branch {i}");
            fast.update(ip, taken, pf);
            slow.update(ip, taken, ps);
        }
        assert_eq!(fast.state_digest(), slow.state_digest());
    }
}
