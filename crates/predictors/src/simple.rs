//! Classical baseline predictors: bimodal, gshare, and two-level local.

use crate::counter::SatCounter;
use crate::digest::Fnv;
use crate::Predictor;

fn index_mask(log2: u32) -> u64 {
    (1u64 << log2) - 1
}

/// Per-IP 2-bit counter table (Smith predictor).
///
/// # Examples
///
/// ```
/// use bp_predictors::{Bimodal, Predictor};
///
/// let mut p = Bimodal::new(10);
/// // A strongly biased branch becomes predictable after a few updates.
/// for _ in 0..4 {
///     let pred = p.predict(0x40);
///     p.update(0x40, true, pred);
/// }
/// assert!(p.predict(0x40));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<SatCounter>,
    log2: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log2` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2` is 0 or greater than 24.
    #[must_use]
    pub fn new(log2: u32) -> Self {
        assert!((1..=24).contains(&log2), "table log2 must be 1..=24");
        Bimodal {
            table: vec![SatCounter::weakly_not_taken(2); 1 << log2],
            log2,
        }
    }

    fn index(&self, ip: u64) -> usize {
        ((ip >> 2) & index_mask(self.log2)) as usize
    }
}

impl Predictor for Bimodal {
    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.table[self.index(ip)].taken()
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let idx = self.index(ip);
        self.table[idx].update(taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for c in &self.table {
            h.push(u64::from(c.value()));
        }
        h.finish()
    }
}

/// Global-history-XOR-IP indexed 2-bit counters (McFarling's gshare).
#[derive(Clone, Debug)]
pub struct GShare {
    table: Vec<SatCounter>,
    log2: u32,
    history: u64,
    history_bits: u32,
}

impl GShare {
    /// Creates a gshare predictor with `2^log2` counters and
    /// `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log2` is 0 or greater than 24, or `history_bits > 64`.
    #[must_use]
    pub fn new(log2: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&log2), "table log2 must be 1..=24");
        assert!(history_bits <= 64, "history limited to 64 bits");
        GShare {
            table: vec![SatCounter::weakly_not_taken(2); 1 << log2],
            log2,
            history: 0,
            history_bits,
        }
    }

    fn index(&self, ip: u64) -> usize {
        let h = self.history & ((1u64 << self.history_bits.min(63)) - 1);
        (((ip >> 2) ^ h) & index_mask(self.log2)) as usize
    }
}

impl Predictor for GShare {
    fn name(&self) -> &'static str {
        "gshare"
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.table[self.index(ip)].taken()
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let idx = self.index(ip);
        self.table[idx].update(taken);
        self.history = (self.history << 1) | u64::from(taken);
    }

    fn storage_bits(&self) -> usize {
        self.table.len() * 2 + self.history_bits as usize
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for c in &self.table {
            h.push(u64::from(c.value()));
        }
        h.push(self.history);
        h.finish()
    }
}

/// Two-level adaptive predictor with per-branch local histories
/// (Yeh & Patt).
#[derive(Clone, Debug)]
pub struct TwoLevelLocal {
    histories: Vec<u16>,
    pht: Vec<SatCounter>,
    hist_log2: u32,
    local_bits: u32,
}

impl TwoLevelLocal {
    /// Creates a local predictor with `2^hist_log2` history registers of
    /// `local_bits` bits each, and a `2^local_bits`-entry pattern table.
    ///
    /// # Panics
    ///
    /// Panics if `hist_log2` is 0 or greater than 20, or `local_bits` is 0
    /// or greater than 16.
    #[must_use]
    pub fn new(hist_log2: u32, local_bits: u32) -> Self {
        assert!((1..=20).contains(&hist_log2), "hist log2 must be 1..=20");
        assert!((1..=16).contains(&local_bits), "local bits must be 1..=16");
        TwoLevelLocal {
            histories: vec![0; 1 << hist_log2],
            pht: vec![SatCounter::weakly_not_taken(2); 1 << local_bits],
            hist_log2,
            local_bits,
        }
    }

    fn hist_index(&self, ip: u64) -> usize {
        ((ip >> 2) & index_mask(self.hist_log2)) as usize
    }

    fn pht_index(&self, ip: u64) -> usize {
        let h = self.histories[self.hist_index(ip)];
        (h & ((1u16 << self.local_bits) - 1)) as usize
    }
}

impl Predictor for TwoLevelLocal {
    fn name(&self) -> &'static str {
        "two-level-local"
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.pht[self.pht_index(ip)].taken()
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let pidx = self.pht_index(ip);
        self.pht[pidx].update(taken);
        let hidx = self.hist_index(ip);
        self.histories[hidx] = (self.histories[hidx] << 1) | u16::from(taken);
    }

    fn storage_bits(&self) -> usize {
        self.histories.len() * self.local_bits as usize + self.pht.len() * 2
    }

    fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for &r in &self.histories {
            h.push(u64::from(r));
        }
        for c in &self.pht {
            h.push(u64::from(c.value()));
        }
        h.finish()
    }
}

/// Trivial static predictor, useful as a floor baseline and in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysTaken;

impl Predictor for AlwaysTaken {
    fn name(&self) -> &'static str {
        "always-taken"
    }

    fn predict(&mut self, _ip: u64) -> bool {
        true
    }

    fn update(&mut self, _ip: u64, _taken: bool, _pred: bool) {}

    fn storage_bits(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut impl Predictor, seq: &[(u64, bool)]) -> usize {
        let mut correct = 0;
        for &(ip, taken) in seq {
            let pred = p.predict(ip);
            p.update(ip, taken, pred);
            correct += usize::from(pred == taken);
        }
        correct
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(8);
        let seq: Vec<_> = (0..100).map(|_| (0x80u64, true)).collect();
        let correct = train(&mut p, &seq);
        assert!(correct >= 97);
    }

    #[test]
    fn bimodal_fails_alternation() {
        let mut p = Bimodal::new(8);
        let seq: Vec<_> = (0..200).map(|i| (0x80u64, i % 2 == 0)).collect();
        let correct = train(&mut p, &seq);
        // 2-bit counters stuck near the threshold: at most ~50%.
        assert!(correct < 120, "bimodal should not learn alternation ({correct})");
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = GShare::new(12, 8);
        let seq: Vec<_> = (0..400).map(|i| (0x80u64, i % 2 == 0)).collect();
        let correct = train(&mut p, &seq);
        assert!(correct > 350, "gshare should learn alternation ({correct})");
    }

    #[test]
    fn local_learns_short_period_pattern() {
        let mut p = TwoLevelLocal::new(10, 10);
        // Period-3 pattern: T T N.
        let seq: Vec<_> = (0..600).map(|i| (0x90u64, i % 3 != 2)).collect();
        let correct = train(&mut p, &seq);
        assert!(correct > 520, "local should learn period-3 ({correct})");
    }

    #[test]
    fn gshare_distinguishes_history_contexts() {
        // Branch B's direction equals branch A's last direction.
        let mut p = GShare::new(12, 4);
        let mut correct_b = 0;
        let mut total_b = 0;
        let mut state = 7u64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a_dir = (state >> 33) & 1 == 1;
            let pa = p.predict(0x100);
            p.update(0x100, a_dir, pa);
            let pb = p.predict(0x200);
            p.update(0x200, a_dir, pb);
            total_b += 1;
            correct_b += usize::from(pb == a_dir);
        }
        assert!(
            correct_b as f64 / total_b as f64 > 0.9,
            "gshare should capture A->B correlation ({correct_b}/{total_b})"
        );
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(Bimodal::new(10).storage_bits(), 2048);
        assert_eq!(GShare::new(10, 16).storage_bits(), 2048 + 16);
        assert_eq!(
            TwoLevelLocal::new(10, 10).storage_bits(),
            1024 * 10 + 1024 * 2
        );
        assert_eq!(AlwaysTaken.storage_bits(), 0);
    }
}
