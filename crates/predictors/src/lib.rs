//! Branch predictor implementations for `branch-lab`.
//!
//! Implements the predictor landscape the paper surveys in §II:
//!
//! * classical baselines — [`Bimodal`], [`GShare`], [`TwoLevelLocal`];
//! * [`Perceptron`] (positional-weight learning);
//! * [`Ppm`] (tagged partial pattern matching);
//! * domain-specific models — [`LoopPredictor`];
//! * ensembles — [`StatisticalCorrector`] and the full [`TageScL`]
//!   (CBP2016 winner), with storage-budgeted configurations at
//!   8/64/128/256/512/1024 KB and allocation instrumentation reproducing
//!   the §IV-A table-thrashing measurements;
//! * oracles — [`PerfectPredictor`] and [`PerfectSetOracle`] for the
//!   paper's limit studies.
//!
//! Honest predictors implement [`Predictor`]; measurement drivers use the
//! [`DirectionPredictor`] interface, which oracles implement directly.
//!
//! # Examples
//!
//! ```
//! use bp_predictors::{measure, Predictor, TageScL};
//! use bp_workloads::specint_suite;
//!
//! let trace = specint_suite()[1].trace(0, 20_000);
//! let mut bpu = TageScL::kb8();
//! let stats = measure(&mut bpu, &trace);
//! assert!(stats.total > 1_000);
//! assert!(stats.accuracy() > 0.6);
//! ```

#![warn(missing_docs)]

mod counter;
mod digest;
mod eval;
mod history;
mod loop_pred;
pub mod naive;
mod oracle;
mod perceptron;
mod ppm;
mod sc;
mod simple;
mod spec;
mod tage;
mod tagescl;
mod tournament;

pub use counter::{sat_is_strong, sat_is_weak, sat_taken, sat_update, SatCounter, SignedCounter};
pub use eval::{measure, misprediction_flags, AccuracyStats};
pub use history::{BitHistory, FoldedHistory, PathHistory};
pub use loop_pred::{LoopPrediction, LoopPredictor};
pub use oracle::{DirectionPredictor, PerfectPredictor, PerfectSetOracle};
pub use perceptron::Perceptron;
pub use ppm::{Ppm, PpmConfig};
pub use sc::{ScConfig, ScDecision, ScOnly, StatisticalCorrector};
pub use simple::{AlwaysTaken, Bimodal, GShare, TwoLevelLocal};
pub use spec::{
    sweep_flags, sweep_flags_stream, sweep_flags_stream_observed, sweep_measure,
    sweep_measure_stream, PredictorSpec,
};
pub use tage::{AllocationTracker, Tage, TageConfig};
pub use tagescl::{TageScL, TageSclConfig};
pub use tournament::Tournament;

/// A trainable branch direction predictor.
///
/// The driver contract is: call [`Predictor::predict`], then
/// [`Predictor::update`] with the resolved direction for the same branch,
/// before the next `predict`. Stateful predictors (TAGE) carry prediction
/// context between the two calls, as the hardware pipeline does.
pub trait Predictor {
    /// A short stable identifier, e.g. `"tage-sc-l-8kb"`.
    fn name(&self) -> &str;

    /// Predicts the direction of the conditional branch at `ip`.
    fn predict(&mut self, ip: u64) -> bool;

    /// Trains with the resolved direction. `pred` is the value returned by
    /// the preceding `predict` (used by composite predictors to train their
    /// arbitration).
    fn update(&mut self, ip: u64, taken: bool, pred: bool);

    /// Estimated storage footprint in bits, for budget verification.
    fn storage_bits(&self) -> usize;

    /// FNV-1a digest of the predictor's complete mutable state.
    ///
    /// The differential suite (`tests/differential.rs`) replays the same
    /// configuration through the lockstep sweep path and a solo reference
    /// run, comparing digests at fixed branch counts: any divergence in
    /// the branch sequence a predictor observes surfaces as a digest
    /// mismatch at the next checkpoint. Stateless predictors keep the
    /// default of 0; every stateful predictor overrides this to hash all
    /// tables, histories, and policy counters.
    fn state_digest(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn predictors_are_send() {
        assert_send::<Bimodal>();
        assert_send::<GShare>();
        assert_send::<Perceptron>();
        assert_send::<Ppm>();
        assert_send::<TageScL>();
    }

    #[test]
    fn dyn_direction_predictor_is_object_safe() {
        let mut b: Box<dyn DirectionPredictor> = Box::new(Bimodal::new(8));
        let _ = b.predict_and_train(0x40, true);
        let mut o: Box<dyn DirectionPredictor> = Box::new(PerfectPredictor);
        assert!(o.predict_and_train(0x40, true));
    }
}
