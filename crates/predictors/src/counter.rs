//! Saturating counters — the basic hysteresis element of every BPU.

/// An unsigned saturating up/down counter of configurable width.
///
/// The canonical 2-bit counter predicts taken when in the upper half of its
/// range. Widths up to 8 bits are supported.
///
/// # Examples
///
/// ```
/// use bp_predictors::SatCounter;
///
/// let mut c = SatCounter::weakly_not_taken(2);
/// assert!(!c.taken());
/// c.update(true);
/// assert!(c.taken());
/// c.update(true);
/// c.update(true); // saturates
/// assert_eq!(c.value(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter of `bits` width initialized to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `value` exceeds the
    /// maximum for the width.
    #[must_use]
    pub fn new(bits: u32, value: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = if bits == 8 { u8::MAX } else { (1u8 << bits) - 1 };
        assert!(value <= max, "initial value exceeds counter range");
        SatCounter { value, max }
    }

    /// A counter at the weakly-taken threshold (e.g. 2 for a 2-bit counter).
    #[must_use]
    pub fn weakly_taken(bits: u32) -> Self {
        let mut c = Self::new(bits, 0);
        c.value = c.max / 2 + 1;
        c
    }

    /// A counter just below the taken threshold.
    #[must_use]
    pub fn weakly_not_taken(bits: u32) -> Self {
        let mut c = Self::new(bits, 0);
        c.value = c.max / 2;
        c
    }

    /// Current raw value.
    #[must_use]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[must_use]
    pub fn max(self) -> u8 {
        self.max
    }

    /// Predicted direction: taken when in the upper half of the range.
    #[must_use]
    pub fn taken(self) -> bool {
        self.value > self.max / 2
    }

    /// True when at either saturation point (confident).
    #[must_use]
    pub fn is_strong(self) -> bool {
        self.value == 0 || self.value == self.max
    }

    /// True at the two central (low-confidence) values.
    #[must_use]
    pub fn is_weak(self) -> bool {
        let mid = self.max / 2;
        self.value == mid || self.value == mid + 1
    }

    /// Moves the counter toward `taken`.
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to a specific value (used by allocation).
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the counter range.
    pub fn set(&mut self, value: u8) {
        assert!(value <= self.max, "value exceeds counter range");
        self.value = value;
    }
}

/// Branchless saturating-counter step over a raw counter lane.
///
/// The flattened TAGE tables (see [`crate::Tage`]) store counters as bare
/// `u8` lanes of a structure-of-arrays table rather than as
/// [`SatCounter`] values, so the hot path updates them with this free
/// function: it computes exactly `SatCounter::update` (guaranteed by the
/// `sat_helpers_match_sat_counter` exhaustive test) but compiles to two
/// compare/mask steps with no data-dependent branch, which matters when
/// the branch predictor being *simulated* makes the update direction
/// unpredictable.
#[inline]
#[must_use]
pub fn sat_update(value: u8, max: u8, taken: bool) -> u8 {
    let up = u8::from(taken) & u8::from(value < max);
    let down = u8::from(!taken) & u8::from(value > 0);
    value + up - down
}

/// Branchless form of [`SatCounter::taken`] over a raw counter lane:
/// taken when in the upper half of the `0..=max` range.
#[inline]
#[must_use]
pub fn sat_taken(value: u8, max: u8) -> bool {
    value > max / 2
}

/// Branchless form of [`SatCounter::is_weak`] over a raw counter lane:
/// true at the two central (low-confidence) values.
#[inline]
#[must_use]
pub fn sat_is_weak(value: u8, max: u8) -> bool {
    let mid = max / 2;
    value == mid || value == mid + 1
}

/// Branchless form of [`SatCounter::is_strong`] over a raw counter lane:
/// true at either saturation point.
#[inline]
#[must_use]
pub fn sat_is_strong(value: u8, max: u8) -> bool {
    value == 0 || value == max
}

/// A signed saturating counter, used by perceptron weights and the
/// statistical corrector.
///
/// # Examples
///
/// ```
/// use bp_predictors::SignedCounter;
///
/// let mut w = SignedCounter::new(6);
/// w.update(true);
/// w.update(true);
/// assert_eq!(w.value(), 2);
/// for _ in 0..100 { w.update(false); }
/// assert_eq!(w.value(), -32); // saturates at -(2^(bits-1))
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SignedCounter {
    value: i16,
    limit: i16,
}

impl SignedCounter {
    /// Creates a zero-initialized signed counter of `bits` total width
    /// (range `-(2^(bits-1)) ..= 2^(bits-1) - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 15.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=15).contains(&bits), "width must be 1..=15 bits");
        SignedCounter {
            value: 0,
            limit: 1 << (bits - 1),
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(self) -> i16 {
        self.value
    }

    /// Moves the counter toward positive for `taken`, negative otherwise.
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < self.limit - 1 {
                self.value += 1;
            }
        } else if self.value > -self.limit {
            self.value -= 1;
        }
    }

    /// Centered magnitude `2*v + 1`, the GEHL summation term: never zero,
    /// so every counter always votes a direction.
    #[must_use]
    pub fn centered(self) -> i32 {
        2 * i32::from(self.value) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SatCounter::new(2, 0);
        assert!(!c.taken());
        assert!(c.is_strong());
        c.update(true); // 1
        assert!(!c.taken());
        assert!(c.is_weak());
        c.update(true); // 2
        assert!(c.taken());
        assert!(c.is_weak());
        c.update(true); // 3
        assert!(c.taken());
        assert!(c.is_strong());
        c.update(false); // 2
        assert!(c.taken());
    }

    #[test]
    fn saturation_bounds() {
        let mut c = SatCounter::new(3, 7);
        c.update(true);
        assert_eq!(c.value(), 7);
        for _ in 0..20 {
            c.update(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn weakly_constructors() {
        assert!(SatCounter::weakly_taken(2).taken());
        assert!(!SatCounter::weakly_not_taken(2).taken());
        assert!(SatCounter::weakly_taken(3).is_weak());
    }

    #[test]
    fn signed_counter_saturates_both_ways() {
        let mut s = SignedCounter::new(4);
        for _ in 0..100 {
            s.update(true);
        }
        assert_eq!(s.value(), 7);
        for _ in 0..100 {
            s.update(false);
        }
        assert_eq!(s.value(), -8);
    }

    #[test]
    fn centered_is_never_zero() {
        let mut s = SignedCounter::new(6);
        assert_eq!(s.centered(), 1);
        s.update(false);
        assert_eq!(s.centered(), -1);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = SatCounter::new(0, 0);
    }

    /// The branchless lane helpers must agree with the `SatCounter` state
    /// machine at every (width, value, direction) — they are the hot-path
    /// form of the same hardware element.
    #[test]
    fn sat_helpers_match_sat_counter() {
        for bits in 1..=8u32 {
            let max = SatCounter::new(bits, 0).max();
            for value in 0..=max {
                let c = SatCounter::new(bits, value);
                assert_eq!(sat_taken(value, max), c.taken(), "taken {bits}/{value}");
                assert_eq!(sat_is_weak(value, max), c.is_weak(), "weak {bits}/{value}");
                assert_eq!(sat_is_strong(value, max), c.is_strong(), "strong {bits}/{value}");
                for taken in [false, true] {
                    let mut stepped = c;
                    stepped.update(taken);
                    assert_eq!(
                        sat_update(value, max, taken),
                        stepped.value(),
                        "update {bits}/{value}/{taken}"
                    );
                }
            }
        }
    }
}
