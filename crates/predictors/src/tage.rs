//! TAGE: TAgged GEometric history length predictor (Seznec).
//!
//! The backbone of TAGE-SC-L (§II). A bimodal base table is backed by a
//! series of tagged tables indexed with geometrically increasing history
//! lengths; the longest tag hit provides the prediction. Entries carry a
//! usefulness counter driving allocation and reclamation — the mechanism
//! whose thrashing on H2P branches the paper measures in §IV-A. The
//! [`AllocationTracker`] instrumentation reproduces those measurements.
//!
//! # Replay hot path
//!
//! This implementation is the throughput-critical inner loop of every
//! study (see `PERFORMANCE.md`): tagged entries live in flat
//! structure-of-arrays tables (`ctrs`/`tags`/`useful` lanes addressed by
//! `bank << table_log2 | index`), per-prediction state is a fixed-size
//! [`Copy`] struct so `predict` never allocates, per-bank index/tag
//! hash parameters are precomputed at construction, and saturating
//! counters step through the branchless [`crate::sat_update`] kernel.
//! The naive per-entry formulation is retained as
//! [`crate::naive::NaiveTage`] and `tests/bit_identity.rs` proves both
//! produce identical prediction streams and final state.

use std::collections::{HashMap, HashSet};

use bp_metrics::Counter;

use crate::counter::{sat_is_strong, sat_is_weak, sat_taken, sat_update, SignedCounter};
use crate::digest::Fnv;
use crate::history::{BitHistory, FoldedHistory, PathHistory};
use crate::Predictor;

/// Upper bound on `TageConfig::num_tables`, sized so per-prediction
/// index/tag arrays can live on the stack.
const MAX_BANKS: usize = 24;

/// Saturation points of the table counters: 3-bit tagged direction
/// counters, 2-bit usefulness counters, 2-bit bimodal counters.
const CTR_MAX: u8 = 7;
const USEFUL_MAX: u8 = 3;
const BIMODAL_MAX: u8 = 3;

/// Geometry and policy parameters for a [`Tage`] predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 entries of the bimodal base table.
    pub bimodal_log2: u32,
    /// Number of tagged tables.
    pub num_tables: usize,
    /// log2 entries per tagged table.
    pub table_log2: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Shortest tagged history length.
    pub min_hist: usize,
    /// Longest tagged history length (1,000 at 8KB, 3,000 at ≥64KB in the
    /// paper's configurations).
    pub max_hist: usize,
    /// Updates between graceful usefulness-counter aging events.
    pub u_reset_period: u64,
}

impl TageConfig {
    /// Validates and computes the geometric history-length series.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (see source asserts).
    #[must_use]
    pub fn history_lengths(&self) -> Vec<usize> {
        assert!((1..=24).contains(&self.bimodal_log2));
        assert!((2..=MAX_BANKS).contains(&self.num_tables));
        assert!((1..=24).contains(&self.table_log2));
        assert!((6..=15).contains(&self.tag_bits));
        assert!(self.min_hist >= 2 && self.max_hist > self.min_hist);
        let n = self.num_tables;
        let ratio = (self.max_hist as f64 / self.min_hist as f64).powf(1.0 / (n - 1) as f64);
        let mut lengths = Vec::with_capacity(n);
        let mut prev = 0usize;
        for i in 0..n {
            let mut l = (self.min_hist as f64 * ratio.powi(i as i32)).round() as usize;
            if l <= prev {
                l = prev + 1;
            }
            lengths.push(l);
            prev = l;
        }
        lengths
    }
}

impl Default for TageConfig {
    /// An 8KB-class TAGE (before SC/L components).
    fn default() -> Self {
        TageConfig {
            bimodal_log2: 12,
            num_tables: 10,
            table_log2: 8,
            tag_bits: 9,
            min_hist: 4,
            max_hist: 1000,
            u_reset_period: 1 << 18,
        }
    }
}

/// Records TAGE table-entry allocations per branch IP, reproducing the
/// §IV-A measurements (median allocations and unique entries per H2P vs
/// non-H2P branch).
#[derive(Clone, Debug, Default)]
pub struct AllocationTracker {
    allocations: HashMap<u64, u64>,
    unique: HashMap<u64, HashSet<u32>>,
}

impl AllocationTracker {
    fn record(&mut self, ip: u64, table: usize, index: usize) {
        *self.allocations.entry(ip).or_default() += 1;
        self.unique
            .entry(ip)
            .or_default()
            .insert(((table as u32) << 24) | index as u32);
    }

    /// Total allocations performed on behalf of `ip`.
    #[must_use]
    pub fn allocations(&self, ip: u64) -> u64 {
        self.allocations.get(&ip).copied().unwrap_or(0)
    }

    /// Number of distinct (table, entry) slots ever allocated for `ip`.
    #[must_use]
    pub fn unique_entries(&self, ip: u64) -> usize {
        self.unique.get(&ip).map_or(0, HashSet::len)
    }

    /// All IPs that triggered at least one allocation.
    pub fn ips(&self) -> impl Iterator<Item = u64> + '_ {
        self.allocations.keys().copied()
    }

    /// Grand total of allocations across all IPs.
    #[must_use]
    pub fn total_allocations(&self) -> u64 {
        self.allocations.values().sum()
    }
}

/// Global `bp-metrics` counter handles, resolved once per predictor
/// construction. All handles are no-ops unless `BRANCH_LAB_METRICS`
/// enables the registry, so the hot path pays one predictable branch.
/// Counters aggregate across every `Tage` instance in the process.
#[derive(Clone, Debug)]
struct TageCounters {
    /// Snapshot of [`bp_metrics::enabled`] at construction: the whole
    /// per-prediction counting block sits behind this one predictable
    /// branch, because even disabled `Counter` null-checks are measurable
    /// at several sites per lookup.
    on: bool,
    /// Prediction-context computations ("table lookups").
    lookups: Counter,
    /// Lookups where no tagged table hit (bimodal base provided).
    base_predictions: Counter,
    /// Per-bank provider hits: `tage.bankNN.hit`.
    bank_hits: Vec<Counter>,
    /// Per-bank successful allocations: `tage.bankNN.alloc`.
    bank_allocs: Vec<Counter>,
    /// Mispredictions where every candidate entry was useful (no room).
    alloc_failures: Counter,
    /// Predictions where the newly-allocated provider was overridden by
    /// the alternate prediction (`use_alt_on_na` policy).
    alt_overrides: Counter,
    /// Graceful usefulness-aging events.
    u_resets: Counter,
}

impl TageCounters {
    fn new(num_tables: usize) -> Self {
        TageCounters {
            on: bp_metrics::enabled(),
            lookups: Counter::get("tage.lookup"),
            base_predictions: Counter::get("tage.base_pred"),
            bank_hits: (0..num_tables)
                .map(|t| Counter::get(&format!("tage.bank{t:02}.hit")))
                .collect(),
            bank_allocs: (0..num_tables)
                .map(|t| Counter::get(&format!("tage.bank{t:02}.alloc")))
                .collect(),
            alloc_failures: Counter::get("tage.alloc_fail"),
            alt_overrides: Counter::get("tage.alt_override"),
            u_resets: Counter::get("tage.u_reset"),
        }
    }
}

/// Per-prediction state carried from `predict` to `update` so the bank
/// indices and tags — the expensive folded-history hashes — are computed
/// once per branch. Fixed-size arrays keep this `Copy` and off the heap.
#[derive(Clone, Copy, Debug)]
struct PredictionCtx {
    ip: u64,
    indices: [u32; MAX_BANKS],
    tags: [u16; MAX_BANKS],
    provider: Option<usize>,
    alt_pred: bool,
    provider_pred: bool,
    provider_new: bool,
    /// Provider (or bimodal) counter at a saturation point — cached here
    /// so [`Tage::last_confidence_high`] doesn't re-read the tables.
    confident: bool,
    pred: bool,
}

/// Per-bank index-hash parameters, fixed at construction: the path-history
/// mask (`lengths[t]` capped at 16 bits) and the second IP shift amount.
#[derive(Clone, Copy, Debug)]
struct BankGeom {
    path_mask: u64,
    ip_shift: u32,
}

/// The three folded-history registers of one bank, stored interleaved so
/// `push_history` walks one contiguous array per branch.
#[derive(Clone, Copy, Debug)]
struct BankFolded {
    idx: FoldedHistory,
    tag0: FoldedHistory,
    tag1: FoldedHistory,
}

/// The TAGE predictor.
///
/// `predict` must be followed by `update` for the same branch before the
/// next `predict` (the [`Predictor`] contract); internal prediction state
/// is carried between the two calls, as in hardware.
///
/// # Examples
///
/// ```
/// use bp_predictors::{Predictor, Tage, TageConfig};
///
/// let mut t = Tage::new(TageConfig::default());
/// // A period-2 branch is learned almost immediately.
/// let mut correct = 0;
/// for i in 0..400 {
///     let taken = i % 2 == 0;
///     let pred = t.predict(0x1234);
///     t.update(0x1234, taken, pred);
///     if i >= 200 { correct += u32::from(pred == taken); }
/// }
/// assert!(correct > 190);
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    config: TageConfig,
    lengths: Vec<usize>,
    /// Bimodal base counters (2-bit lanes).
    bimodal: Vec<u8>,
    /// Tagged-table lanes, structure-of-arrays: entry `(t, i)` lives at
    /// offset `(t << table_log2) + i` in each lane. One contiguous block
    /// per lane keeps the provider scan and update in a few cache lines.
    ctrs: Vec<u8>,
    tags: Vec<u16>,
    useful: Vec<u8>,
    folded: Vec<BankFolded>,
    geom: Vec<BankGeom>,
    ghist: BitHistory,
    path: PathHistory,
    use_alt_on_na: SignedCounter,
    lfsr: u64,
    updates: u64,
    ctx: Option<PredictionCtx>,
    tracker: Option<Box<AllocationTracker>>,
    counters: TageCounters,
}

impl Tage {
    /// Creates a TAGE predictor from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TageConfig::history_lengths`]).
    #[must_use]
    pub fn new(config: TageConfig) -> Self {
        let lengths = config.history_lengths();
        let tagged_entries = config.num_tables << config.table_log2;
        let folded = lengths
            .iter()
            .map(|&l| BankFolded {
                idx: FoldedHistory::new(l, config.table_log2),
                tag0: FoldedHistory::new(l, config.tag_bits),
                tag1: FoldedHistory::new(l, config.tag_bits - 1),
            })
            .collect();
        let geom = lengths
            .iter()
            .enumerate()
            .map(|(t, &l)| BankGeom {
                path_mask: (1u64 << l.min(16)) - 1,
                ip_shift: config.table_log2.saturating_sub((t % 4) as u32),
            })
            .collect();
        Tage {
            ghist: BitHistory::new(config.max_hist + 8),
            bimodal: vec![BIMODAL_MAX / 2; 1 << config.bimodal_log2],
            ctrs: vec![CTR_MAX / 2; tagged_entries],
            tags: vec![0; tagged_entries],
            useful: vec![0; tagged_entries],
            folded,
            geom,
            path: PathHistory::new(),
            use_alt_on_na: SignedCounter::new(4),
            lfsr: 0xACE1_u64,
            updates: 0,
            ctx: None,
            counters: TageCounters::new(config.num_tables),
            lengths,
            config,
            tracker: None,
        }
    }

    /// Enables per-IP allocation instrumentation (off by default; costs a
    /// hash-map update per allocation).
    pub fn enable_instrumentation(&mut self) {
        if self.tracker.is_none() {
            self.tracker = Some(Box::default());
        }
    }

    /// Allocation statistics, if instrumentation is enabled.
    #[must_use]
    pub fn tracker(&self) -> Option<&AllocationTracker> {
        self.tracker.as_deref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    /// The geometric history-length series.
    #[must_use]
    pub fn lengths(&self) -> &[usize] {
        &self.lengths
    }

    /// Lane offset of entry `idx` in tagged bank `t`.
    #[inline]
    fn off(&self, t: usize, idx: usize) -> usize {
        (t << self.config.table_log2) + idx
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.lfsr = x;
        x
    }

    #[inline]
    fn bimodal_index(&self, ip: u64) -> usize {
        ((ip >> 2) & ((1u64 << self.config.bimodal_log2) - 1)) as usize
    }

    #[inline]
    fn table_index(&self, ip: u64, t: usize) -> usize {
        let mask = (1u64 << self.config.table_log2) - 1;
        let g = self.geom[t];
        let h = self.folded[t].idx.value()
            ^ (ip >> 2)
            ^ ((ip >> 2) >> g.ip_shift)
            ^ (self.path.value() & g.path_mask);
        (h & mask) as usize
    }

    #[inline]
    fn tag(&self, ip: u64, t: usize) -> u16 {
        let mask = (1u64 << self.config.tag_bits) - 1;
        let f = &self.folded[t];
        (((ip >> 2) ^ f.tag0.value() ^ (f.tag1.value() << 1)) & mask) as u16
    }

    /// Computes the full prediction context (used by both `predict` and
    /// the statistical corrector, which needs provider confidence).
    fn compute(&mut self, ip: u64) -> PredictionCtx {
        let n = self.config.num_tables;
        let mut indices = [0u32; MAX_BANKS];
        let mut tags = [0u16; MAX_BANKS];
        for t in 0..n {
            indices[t] = self.table_index(ip, t) as u32;
            tags[t] = self.tag(ip, t);
        }
        let bimodal_ctr = self.bimodal[self.bimodal_index(ip)];
        let bimodal_pred = sat_taken(bimodal_ctr, BIMODAL_MAX);
        let mut provider = None;
        let mut alt = None;
        for t in (0..n).rev() {
            if self.tags[self.off(t, indices[t] as usize)] == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }
        let alt_pred = match alt {
            Some(t) => sat_taken(self.ctrs[self.off(t, indices[t] as usize)], CTR_MAX),
            None => bimodal_pred,
        };
        let (provider_pred, provider_new, confident) = match provider {
            Some(t) => {
                let off = self.off(t, indices[t] as usize);
                let ctr = self.ctrs[off];
                // An entry is "not yet trustworthy" until it has either
                // left the weak counter states or proven useful (predicted
                // correctly against the alternate at least once). Deferring
                // to the alternate until then keeps noise-allocated
                // entries from overriding the base predictor's long-run
                // per-IP statistics on rare branches.
                (
                    sat_taken(ctr, CTR_MAX),
                    sat_is_weak(ctr, CTR_MAX) || self.useful[off] == 0,
                    sat_is_strong(ctr, CTR_MAX),
                )
            }
            None => (bimodal_pred, false, sat_is_strong(bimodal_ctr, BIMODAL_MAX)),
        };
        let used_alt = provider.is_some() && provider_new && self.use_alt_on_na.value() >= 0;
        let pred = if used_alt { alt_pred } else { provider_pred };
        if self.counters.on {
            self.counters.lookups.incr();
            match provider {
                Some(t) => self.counters.bank_hits[t].incr(),
                None => self.counters.base_predictions.incr(),
            }
            if used_alt {
                self.counters.alt_overrides.incr();
            }
        }
        PredictionCtx {
            ip,
            indices,
            tags,
            provider,
            alt_pred,
            provider_pred,
            provider_new,
            confident,
            pred,
        }
    }

    /// Whether the last prediction came from a high-confidence provider
    /// (used by the statistical corrector to decide when to intervene).
    ///
    /// The confidence is captured at `predict` time, when the provider
    /// counter is already in hand — no table state changes between
    /// `predict` and this call under the [`Predictor`] contract.
    #[must_use]
    pub fn last_confidence_high(&self) -> bool {
        self.ctx.as_ref().is_some_and(|c| c.confident)
    }

    fn allocate(&mut self, ctx: &PredictionCtx, taken: bool) {
        let n = self.config.num_tables;
        let start = ctx.provider.map_or(0, |p| p + 1);
        if start >= n {
            return;
        }
        // Collect candidate tables with a free (u == 0) entry.
        let mut free = [0usize; MAX_BANKS];
        let mut free_len = 0usize;
        for t in start..n {
            if self.useful[self.off(t, ctx.indices[t] as usize)] == 0 {
                free[free_len] = t;
                free_len += 1;
            }
        }
        if free_len == 0 {
            // No room: age the would-be victims so future allocations can
            // succeed (TAGE's anti-ping-pong mechanism).
            for t in start..n {
                let off = self.off(t, ctx.indices[t] as usize);
                self.useful[off] = sat_update(self.useful[off], USEFUL_MAX, false);
            }
            if self.counters.on {
                self.counters.alloc_failures.incr();
            }
            return;
        }
        // Prefer shorter histories with geometric probability, as in the
        // reference implementation.
        let mut chosen = free[0];
        for &t in &free[1..free_len] {
            if self.next_rand().is_multiple_of(2) {
                break;
            }
            chosen = t;
        }
        let idx = ctx.indices[chosen] as usize;
        let off = self.off(chosen, idx);
        self.tags[off] = ctx.tags[chosen];
        self.ctrs[off] = CTR_MAX / 2 + u8::from(taken);
        self.useful[off] = 0;
        if self.counters.on {
            self.counters.bank_allocs[chosen].incr();
        }
        if let Some(tracker) = self.tracker.as_deref_mut() {
            tracker.record(ctx.ip, chosen, idx);
        }
    }

    fn age_useful(&mut self) {
        self.counters.u_resets.incr();
        for u in &mut self.useful {
            *u >>= 1;
        }
    }

    fn push_history(&mut self, ip: u64, taken: bool) {
        let ghist = &self.ghist;
        for (f, &olen) in self.folded.iter_mut().zip(&self.lengths) {
            let outgoing = ghist.bit(olen - 1);
            f.idx.update(taken, outgoing);
            f.tag0.update(taken, outgoing);
            f.tag1.update(taken, outgoing);
        }
        self.ghist.push(taken);
        self.path.push(ip);
    }

    /// FNV-1a digest of the complete architectural state: every table
    /// counter and tag, folded-history register, and policy counter.
    /// Used by the bit-identity suite to compare against
    /// [`crate::naive::NaiveTage`] — see `tests/bit_identity.rs`.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for &b in &self.bimodal {
            h.push(u64::from(b));
        }
        for off in 0..self.tags.len() {
            h.push(u64::from(self.ctrs[off]));
            h.push(u64::from(self.tags[off]));
            h.push(u64::from(self.useful[off]));
        }
        for f in &self.folded {
            h.push(f.idx.value());
            h.push(f.tag0.value());
            h.push(f.tag1.value());
        }
        h.push(self.path.value());
        h.push(self.use_alt_on_na.value() as u64);
        h.push(self.lfsr);
        h.push(self.updates);
        h.finish()
    }
}

impl Predictor for Tage {
    fn name(&self) -> &'static str {
        "tage"
    }

    fn predict(&mut self, ip: u64) -> bool {
        let ctx = self.compute(ip);
        let pred = ctx.pred;
        self.ctx = Some(ctx);
        pred
    }

    fn update(&mut self, ip: u64, taken: bool, _pred: bool) {
        let ctx = match self.ctx.take() {
            Some(c) if c.ip == ip => c,
            // Tolerate a missed predict (e.g. after clone) by recomputing.
            _ => self.compute(ip),
        };
        self.updates += 1;

        // Train the provider (or the bimodal base).
        match ctx.provider {
            Some(t) => {
                let off = self.off(t, ctx.indices[t] as usize);
                // Usefulness: provider proved better/worse than alt.
                if ctx.provider_pred != ctx.alt_pred {
                    let correct = ctx.provider_pred == taken;
                    self.useful[off] = sat_update(self.useful[off], USEFUL_MAX, correct);
                }
                self.ctrs[off] = sat_update(self.ctrs[off], CTR_MAX, taken);
                // When the provider entry is fresh, also train the alt
                // chooser.
                if ctx.provider_new && ctx.provider_pred != ctx.alt_pred {
                    self.use_alt_on_na.update(ctx.alt_pred == taken);
                }
                // Keep the bimodal warm when it served as the alternate.
                if ctx.provider_new {
                    let bidx = self.bimodal_index(ip);
                    self.bimodal[bidx] = sat_update(self.bimodal[bidx], BIMODAL_MAX, taken);
                }
            }
            None => {
                let bidx = self.bimodal_index(ip);
                self.bimodal[bidx] = sat_update(self.bimodal[bidx], BIMODAL_MAX, taken);
            }
        }

        // Allocate a longer-history entry on a TAGE misprediction.
        if ctx.pred != taken {
            self.allocate(&ctx, taken);
        }

        if self.updates.is_multiple_of(self.config.u_reset_period) {
            self.age_useful();
        }

        self.push_history(ip, taken);
    }

    fn storage_bits(&self) -> usize {
        let entry_bits = (3 + 2 + self.config.tag_bits) as usize;
        self.bimodal.len() * 2 + self.tags.len() * entry_bits + self.config.max_hist + 64
    }

    fn state_digest(&self) -> u64 {
        Tage::state_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_seq(t: &mut Tage, seq: &[(u64, bool)], skip: usize) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, &(ip, taken)) in seq.iter().enumerate() {
            let p = t.predict(ip);
            t.update(ip, taken, p);
            if i >= skip {
                total += 1;
                correct += usize::from(p == taken);
            }
        }
        correct as f64 / total.max(1) as f64
    }

    #[test]
    fn history_lengths_are_geometric_and_increasing() {
        let cfg = TageConfig::default();
        let l = cfg.history_lengths();
        assert_eq!(l.len(), cfg.num_tables);
        assert_eq!(*l.first().unwrap(), cfg.min_hist);
        assert_eq!(*l.last().unwrap(), cfg.max_hist);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn learns_biased_branch() {
        let mut t = Tage::new(TageConfig::default());
        let seq: Vec<_> = (0..300).map(|_| (0x400u64, true)).collect();
        assert!(train_seq(&mut t, &seq, 50) > 0.99);
    }

    #[test]
    fn learns_period_four_pattern() {
        let mut t = Tage::new(TageConfig::default());
        let seq: Vec<_> = (0..2000).map(|i| (0x400u64, i % 4 < 2)).collect();
        let acc = train_seq(&mut t, &seq, 500);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_cross_branch_correlation() {
        // B mirrors A, separated by two fixed noise branches.
        let mut t = Tage::new(TageConfig::default());
        let mut state = 5u64;
        let mut a = false;
        let mut seq = Vec::new();
        for i in 0..12000u64 {
            match i % 4 {
                0 => {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    a = (state >> 33) & 1 == 1;
                    seq.push((0x100, a));
                }
                1 => seq.push((0x110, true)),
                2 => seq.push((0x120, false)),
                _ => seq.push((0x200, a)),
            }
        }
        // Measure only branch B (0x200).
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, &(ip, taken)) in seq.iter().enumerate() {
            let p = t.predict(ip);
            t.update(ip, taken, p);
            if i > 4000 && ip == 0x200 {
                total += 1;
                correct += usize::from(p == taken);
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "correlated accuracy {acc}");
    }

    #[test]
    fn random_branch_is_not_learnable() {
        let mut t = Tage::new(TageConfig::default());
        let mut state = 17u64;
        let seq: Vec<_> = (0..4000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (0x400u64, (state >> 35) & 1 == 1)
            })
            .collect();
        let acc = train_seq(&mut t, &seq, 1000);
        assert!((0.35..0.65).contains(&acc), "random accuracy {acc}");
    }

    #[test]
    fn allocation_tracking_counts_unique_entries() {
        let mut t = Tage::new(TageConfig::default());
        t.enable_instrumentation();
        let mut state = 23u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = (state >> 37) & 1 == 1;
            let p = t.predict(0x700);
            t.update(0x700, taken, p);
        }
        let tr = t.tracker().unwrap();
        // A random branch triggers many allocations, reusing entries.
        assert!(tr.allocations(0x700) > 100);
        assert!(tr.unique_entries(0x700) > 10);
        assert!(tr.allocations(0x700) >= tr.unique_entries(0x700) as u64);
    }

    #[test]
    fn predictable_branch_allocates_little() {
        let mut t = Tage::new(TageConfig::default());
        t.enable_instrumentation();
        for i in 0..4000 {
            let taken = i % 2 == 0;
            let p = t.predict(0x900);
            t.update(0x900, taken, p);
        }
        let tr = t.tracker().unwrap();
        assert!(
            tr.allocations(0x900) < 30,
            "predictable branch allocated {} times",
            tr.allocations(0x900)
        );
    }

    #[test]
    fn storage_bits_scales_with_tables() {
        let small = Tage::new(TageConfig::default());
        let big = Tage::new(TageConfig {
            table_log2: 11,
            bimodal_log2: 14,
            max_hist: 3000,
            ..TageConfig::default()
        });
        assert!(big.storage_bits() > 4 * small.storage_bits());
    }

    #[test]
    fn update_without_predict_recovers() {
        let mut t = Tage::new(TageConfig::default());
        // Call update directly; the predictor must recompute context.
        t.update(0x40, true, true);
        let _ = t.predict(0x40);
    }

    #[test]
    fn state_digest_tracks_training() {
        let mut a = Tage::new(TageConfig::default());
        let b = Tage::new(TageConfig::default());
        assert_eq!(a.state_digest(), b.state_digest());
        let p = a.predict(0x40);
        a.update(0x40, true, p);
        assert_ne!(a.state_digest(), b.state_digest());
    }
}
