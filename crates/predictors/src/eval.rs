//! Trace-driven evaluation helpers shared by analyses and experiments.

use bp_trace::Trace;

use crate::oracle::DirectionPredictor;

/// Aggregate prediction accuracy over a branch stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccuracyStats {
    /// Dynamic conditional branches observed.
    pub total: u64,
    /// Correct predictions.
    pub correct: u64,
}

impl AccuracyStats {
    /// Fraction of correct predictions (1.0 for an empty stream).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Mispredictions per 1,000 *instructions*, given the instruction count
    /// the branches were drawn from.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            (self.total - self.correct) as f64 * 1000.0 / instructions as f64
        }
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        self.correct += u64::from(correct);
    }
}

/// Runs `predictor` over every conditional branch of `trace` and returns
/// aggregate accuracy.
///
/// # Examples
///
/// ```
/// use bp_predictors::{measure, Bimodal};
/// use bp_trace::{RetiredInst, Trace, TraceMeta};
///
/// let mut t = Trace::new(TraceMeta::new("t", 0));
/// for _ in 0..100 {
///     t.push(RetiredInst::cond_branch(0x40, true, 0x80, None, None));
/// }
/// let stats = measure(&mut Bimodal::new(8), &t);
/// assert_eq!(stats.total, 100);
/// assert!(stats.accuracy() > 0.9);
/// ```
pub fn measure(predictor: &mut dyn DirectionPredictor, trace: &Trace) -> AccuracyStats {
    let mut stats = AccuracyStats::default();
    for br in trace.conditional_branches() {
        let pred = predictor.predict_and_train(br.ip, br.taken);
        stats.record(pred == br.taken);
    }
    stats
}

/// Runs `predictor` over `trace` and returns one flag per dynamic
/// conditional branch (in retirement order): `true` when mispredicted.
///
/// The pipeline timing model consumes this to charge misprediction
/// penalties at the right dynamic instructions.
pub fn misprediction_flags(predictor: &mut dyn DirectionPredictor, trace: &Trace) -> Vec<bool> {
    let mut flags = Vec::with_capacity(trace.conditional_branch_count());
    for br in trace.conditional_branches() {
        let pred = predictor.predict_and_train(br.ip, br.taken);
        flags.push(pred != br.taken);
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::PerfectPredictor;
    use crate::simple::{AlwaysTaken, Bimodal};
    use bp_trace::{RetiredInst, TraceMeta};

    fn alternating_trace(n: usize) -> Trace {
        let mut t = Trace::new(TraceMeta::new("alt", 0));
        for i in 0..n {
            t.push(RetiredInst::cond_branch(0x40, i % 2 == 0, 0x80, None, None));
        }
        t
    }

    #[test]
    fn perfect_predictor_scores_one() {
        let t = alternating_trace(50);
        let stats = measure(&mut PerfectPredictor, &t);
        assert_eq!(stats.correct, 50);
        assert!((stats.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn always_taken_scores_half_on_alternation() {
        let t = alternating_trace(100);
        let stats = measure(&mut AlwaysTaken, &t);
        assert_eq!(stats.correct, 50);
    }

    #[test]
    fn flags_align_with_branch_order() {
        let t = alternating_trace(10);
        let flags = misprediction_flags(&mut PerfectPredictor, &t);
        assert_eq!(flags.len(), 10);
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn mpki_math() {
        let mut s = AccuracyStats::default();
        for i in 0..100 {
            s.record(i % 10 != 0); // 10 mispredicts
        }
        assert!((s.mpki(10_000) - 1.0).abs() < 1e-9);
        assert_eq!(AccuracyStats::default().accuracy(), 1.0);
    }

    #[test]
    fn measure_trains_across_calls() {
        let t = alternating_trace(400);
        let mut b = Bimodal::new(8);
        let first = measure(&mut b, &t);
        // Bimodal can't learn alternation regardless of training.
        assert!(first.accuracy() < 0.7);
    }
}
