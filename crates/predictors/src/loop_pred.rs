//! The loop predictor — the "L" of TAGE-SC-L.
//!
//! Recognizes branches that are taken a constant number of times and then
//! exit (or vice versa), and predicts the exit exactly once confidence is
//! established. Domain-specific models like this one are derived from
//! expert analysis of design-time benchmarks (§II).

use bp_metrics::Counter;

use crate::digest::Fnv;

/// One loop-table entry.
#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count: number of `dir` outcomes before the exit.
    trip: u16,
    /// Current iteration count within the loop.
    current: u16,
    /// Confidence: consecutive confirmations of `trip`.
    confidence: u8,
    /// The loop's body direction (usually taken).
    dir: bool,
    /// Entry age for replacement.
    age: u8,
    valid: bool,
}

/// Outcome of a loop-predictor lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// True when the entry has confirmed its trip count enough times to be
    /// trusted over TAGE.
    pub confident: bool,
}

/// A small associatively-tagged loop predictor.
///
/// # Examples
///
/// ```
/// use bp_predictors::LoopPredictor;
///
/// let mut lp = LoopPredictor::new(64);
/// // Branch taken 7 times then not taken, repeatedly.
/// let mut confident_wrong = 0;
/// let mut confident_seen = 0;
/// for lap in 0..40 {
///     for i in 0..8 {
///         let taken = i != 7;
///         if let Some(pred) = lp.predict(0x40) {
///             if lap >= 20 && pred.confident {
///                 confident_seen += 1;
///                 if pred.taken != taken { confident_wrong += 1; }
///             }
///         }
///         lp.update(0x40, taken);
///     }
/// }
/// assert!(confident_seen > 0);
/// assert_eq!(confident_wrong, 0, "confident loop predictions must be exact");
/// ```
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    /// Confidence required before `confident` is reported.
    threshold: u8,
    /// Snapshot of [`bp_metrics::enabled`] at construction, gating the
    /// per-lookup counting on one predictable branch.
    metrics_on: bool,
    /// `loop.hit` — lookups that found a tracked loop.
    hits: Counter,
    /// `loop.confident_hit` — tracked-loop lookups at full confidence.
    confident_hits: Counter,
}

/// Maximum trip count the table can represent.
const MAX_TRIP: u16 = u16::MAX - 1;

impl LoopPredictor {
    /// Creates a loop predictor with `entries` direct-mapped entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        LoopPredictor {
            entries: vec![LoopEntry::default(); entries],
            threshold: 3,
            metrics_on: bp_metrics::enabled(),
            hits: Counter::get("loop.hit"),
            confident_hits: Counter::get("loop.confident_hit"),
        }
    }

    fn index(&self, ip: u64) -> usize {
        ((ip >> 2) as usize) & (self.entries.len() - 1)
    }

    fn tag(&self, ip: u64) -> u16 {
        ((ip >> 2) >> self.entries.len().trailing_zeros()) as u16
    }

    /// Looks up a prediction for `ip`. Returns `None` when the branch is
    /// not being tracked as a loop.
    #[must_use]
    pub fn predict(&self, ip: u64) -> Option<LoopPrediction> {
        let e = &self.entries[self.index(ip)];
        if !e.valid || e.tag != self.tag(ip) || e.trip == 0 {
            return None;
        }
        // Predict the exit on the iteration matching the learned trip.
        let taken = if e.current >= e.trip { !e.dir } else { e.dir };
        let confident = e.confidence >= self.threshold;
        if self.metrics_on {
            self.hits.incr();
            if confident {
                self.confident_hits.incr();
            }
        }
        Some(LoopPrediction { taken, confident })
    }

    /// Trains the table with the resolved outcome of `ip`.
    pub fn update(&mut self, ip: u64, taken: bool) {
        let idx = self.index(ip);
        let tag = self.tag(ip);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            // Replace only aged-out entries, so hot loops are sticky.
            if e.valid && e.age > 0 {
                e.age -= 1;
                return;
            }
            // Treat the first observed outcome as the loop body direction,
            // with one body iteration already seen.
            *e = LoopEntry {
                tag,
                trip: 0,
                current: 1,
                confidence: 0,
                dir: taken,
                age: 7,
                valid: true,
            };
            return;
        }
        if taken == e.dir {
            if e.current < MAX_TRIP {
                e.current += 1;
            } else {
                // Not a loop at a representable scale; invalidate.
                e.valid = false;
            }
        } else {
            // Exit observed: confirm or relearn the trip count.
            if e.trip == e.current && e.trip > 0 {
                e.confidence = (e.confidence + 1).min(15);
                e.age = 7;
            } else {
                e.trip = e.current;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }

    /// Approximate storage in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        // tag 16 + trip 16 + current 16 + conf 4 + dir 1 + age 3 + valid 1
        self.entries.len() * 57
    }

    /// FNV-1a digest of every table entry. Used by the bit-identity
    /// suite — see `tests/bit_identity.rs`.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.entries {
            h.push(u64::from(e.tag));
            h.push(u64::from(e.trip));
            h.push(u64::from(e.current));
            h.push(u64::from(e.confidence));
            h.push(u64::from(e.dir));
            h.push(u64::from(e.age));
            h.push(u64::from(e.valid));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_loop(lp: &mut LoopPredictor, ip: u64, trip: usize, laps: usize) -> (usize, usize) {
        // Branch is taken (trip) times then not-taken once per lap.
        let mut confident_correct = 0;
        let mut confident_total = 0;
        for lap in 0..laps {
            for i in 0..=trip {
                let taken = i != trip;
                if let Some(p) = lp.predict(ip) {
                    if p.confident && lap >= laps / 2 {
                        confident_total += 1;
                        confident_correct += usize::from(p.taken == taken);
                    }
                }
                lp.update(ip, taken);
            }
        }
        (confident_correct, confident_total)
    }

    #[test]
    fn constant_trip_loop_is_perfect_once_confident() {
        let mut lp = LoopPredictor::new(64);
        let (correct, total) = run_loop(&mut lp, 0x80, 9, 30);
        assert!(total > 0, "should reach confidence");
        assert_eq!(correct, total);
    }

    #[test]
    fn variable_trip_loop_never_confident() {
        let mut lp = LoopPredictor::new(64);
        // Alternate trip counts 3 and 5: confidence must not build.
        for lap in 0..50 {
            let trip = if lap % 2 == 0 { 3 } else { 5 };
            for i in 0..=trip {
                lp.update(0x90, i != trip);
            }
        }
        let p = lp.predict(0x90);
        assert!(p.is_none_or(|p| !p.confident));
    }

    #[test]
    fn untracked_branch_returns_none() {
        let lp = LoopPredictor::new(64);
        assert!(lp.predict(0x1000).is_none());
    }

    #[test]
    fn sticky_replacement_protects_hot_loops() {
        let mut lp = LoopPredictor::new(2);
        // Establish a hot loop at ip A.
        let (_, total) = run_loop(&mut lp, 0x8, 4, 20);
        assert!(total > 0);
        // A single visit from a conflicting ip must not evict it.
        lp.update(0x8 + 4 * 2, true);
        assert!(lp.predict(0x8).is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = LoopPredictor::new(48);
    }
}
