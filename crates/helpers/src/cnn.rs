//! A small 1-D convolutional network over encoded branch history, with
//! full-precision offline training and 2-bit quantized online inference.
//!
//! Architecture (mirroring the companion paper's CNN helper predictors):
//! width-1 convolution filters over the one-hot `(IP, direction)` bucket at
//! each history position, ReLU, average pooling across positions, and a
//! linear classifier. Pooling makes detection *position-tolerant*: a
//! predictive dependency branch is recognized wherever it lands in the
//! history — exactly the invariance that defeats TAGE's exact matching on
//! variable-gap H2Ps (§IV-A).

use crate::encoder::EMPTY_BUCKET;

/// Trainable full-precision network.
#[derive(Clone, Debug)]
pub struct CnnNet {
    /// `filters x buckets` convolution weights.
    conv: Vec<Vec<f32>>,
    /// Per-filter bias.
    conv_bias: Vec<f32>,
    /// Classifier weights, one per `(filter, segment)` feature.
    fc: Vec<f32>,
    /// Classifier bias.
    fc_bias: f32,
    buckets: usize,
    /// Positional pooling segments: activations are averaged within each
    /// of `segments` contiguous position ranges, so the network is
    /// position-tolerant *within* a segment but can still distinguish
    /// recent from old history across segments.
    segments: usize,
}

/// Output of a forward pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CnnOutput {
    /// Decision score; taken iff `score >= 0`.
    pub score: f32,
}

impl CnnOutput {
    /// Predicted direction.
    #[must_use]
    pub fn taken(self) -> bool {
        self.score >= 0.0
    }

    /// Confidence magnitude.
    #[must_use]
    pub fn confidence(self) -> f32 {
        self.score.abs()
    }
}

impl CnnNet {
    /// Creates a network with deterministic small initial weights.
    ///
    /// # Panics
    ///
    /// Panics if `filters`, `buckets`, or `segments` is zero.
    #[must_use]
    pub fn new(filters: usize, buckets: usize, segments: usize) -> Self {
        assert!(
            filters > 0 && buckets > 0 && segments > 0,
            "filters, buckets, and segments must be positive"
        );
        // Deterministic pseudo-random init.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1 << 24) as f32 - 0.5) * 0.2
        };
        CnnNet {
            conv: (0..filters)
                .map(|_| (0..buckets).map(|_| next()).collect())
                .collect(),
            conv_bias: (0..filters).map(|_| next()).collect(),
            fc: (0..filters * segments).map(|_| next()).collect(),
            fc_bias: 0.0,
            buckets,
            segments,
        }
    }

    fn segment_of(&self, pos: usize, window_len: usize) -> usize {
        (pos * self.segments / window_len.max(1)).min(self.segments - 1)
    }

    /// Number of convolution filters.
    #[must_use]
    pub fn filters(&self) -> usize {
        self.conv.len()
    }

    /// Pooled filter activations per `(filter, segment)` feature.
    fn pooled(&self, window: &[u16]) -> Vec<f32> {
        let seg_len = (window.len().max(1) as f32 / self.segments as f32).max(1.0);
        let mut z = vec![0.0f32; self.conv.len() * self.segments];
        for (f, (filter, &bias)) in self.conv.iter().zip(&self.conv_bias).enumerate() {
            for (pos, &b) in window.iter().enumerate() {
                if b != EMPTY_BUCKET {
                    let a = filter[b as usize] + bias;
                    if a > 0.0 {
                        z[f * self.segments + self.segment_of(pos, window.len())] += a;
                    }
                }
            }
        }
        for x in &mut z {
            *x /= seg_len;
        }
        z
    }

    /// Forward pass over a bucketized history window.
    #[must_use]
    pub fn forward(&self, window: &[u16]) -> CnnOutput {
        let z = self.pooled(window);
        let score = self
            .fc
            .iter()
            .zip(&z)
            .map(|(v, zf)| v * zf)
            .sum::<f32>()
            + self.fc_bias;
        CnnOutput { score }
    }

    /// One SGD step on a labeled sample with logistic loss. Returns the
    /// pre-update score.
    pub fn train_step(&mut self, window: &[u16], taken: bool, lr: f32) -> f32 {
        let z = self.pooled(window);
        let score: f32 = self.fc.iter().zip(&z).map(|(v, zf)| v * zf).sum::<f32>() + self.fc_bias;
        let y = if taken { 1.0f32 } else { -1.0 };
        // dL/ds for L = ln(1 + exp(-y s)).
        let g = -y / (1.0 + (y * score).exp());
        let seg_len = (window.len().max(1) as f32 / self.segments as f32).max(1.0);

        // Classifier gradients (need old fc for conv backprop).
        let fc_old = self.fc.clone();
        for (v, zf) in self.fc.iter_mut().zip(&z) {
            *v -= lr * g * zf;
        }
        self.fc_bias -= lr * g;

        // Convolution gradients through ReLU and segmented avg pooling.
        let segments = self.segments;
        let window_len = window.len();
        for (f, filter) in self.conv.iter_mut().enumerate() {
            let bias = self.conv_bias[f];
            let mut dbias = 0.0f32;
            for (pos, &b) in window.iter().enumerate() {
                if b != EMPTY_BUCKET {
                    let idx = b as usize;
                    if filter[idx] + bias > 0.0 {
                        let seg = (pos * segments / window_len.max(1)).min(segments - 1);
                        let upstream = g * fc_old[f * segments + seg] / seg_len;
                        filter[idx] -= lr * upstream;
                        dbias += upstream;
                    }
                }
            }
            self.conv_bias[f] -= lr * dbias;
        }
        score
    }

    /// Quantizes the network for cheap online inference.
    ///
    /// Weights are mapped to the symmetric 2-bit code {-2, -1, 0, +1, +2}
    /// \ {±2 together}: concretely `round(w / scale)` clamped to
    /// `[-2, 2]` with `scale = maxabs / 2`, then `±2` encoded in the
    /// second bit — symmetric, so positive- and negative-dominated
    /// classifiers quantize without direction skew.
    #[must_use]
    pub fn quantize(&self) -> QuantizedCnn {
        let quant_layer = |w: &[f32]| -> (Vec<i8>, f32) {
            let maxabs = w.iter().fold(0.0f32, |m, &x| m.max(x.abs())).max(1e-6);
            let scale = maxabs / 2.0;
            (
                w.iter()
                    .map(|&x| (x / scale).round().clamp(-2.0, 2.0) as i8)
                    .collect(),
                scale,
            )
        };
        let mut conv_q = Vec::with_capacity(self.conv.len());
        let mut conv_scales = Vec::with_capacity(self.conv.len());
        for f in &self.conv {
            let (q, s) = quant_layer(f);
            conv_q.push(q);
            conv_scales.push(s);
        }
        let (fc_q, fc_scale) = quant_layer(&self.fc);
        QuantizedCnn {
            conv: conv_q,
            conv_scales,
            conv_bias: self.conv_bias.clone(),
            fc: fc_q,
            fc_scale,
            fc_bias: self.fc_bias,
            buckets: self.buckets,
            segments: self.segments,
        }
    }
}

impl CnnNet {
    /// Quantization-aware deployment: quantize the convolution to 2-bit
    /// weights, then retrain the (tiny, 8-bit) classifier on the frozen
    /// quantized features so the decision boundary adapts to quantization
    /// error. This mirrors the companion paper's recipe of training in
    /// full precision and deploying low-precision weights.
    #[must_use]
    pub fn quantize_finetuned(
        &self,
        samples: &[(Vec<u16>, bool)],
        epochs: usize,
        lr: f32,
    ) -> QuantizedCnn {
        let mut q = self.quantize();
        let mut fc: Vec<f32> = self.fc.clone();
        let mut fc_bias = self.fc_bias;
        for _ in 0..epochs {
            for (win, taken) in samples {
                let z = q.pooled(win);
                let score: f32 =
                    fc.iter().zip(&z).map(|(v, zf)| v * zf).sum::<f32>() + fc_bias;
                let y = if *taken { 1.0f32 } else { -1.0 };
                let g = -y / (1.0 + (y * score).exp());
                for (v, zf) in fc.iter_mut().zip(&z) {
                    *v -= lr * g * zf;
                }
                fc_bias -= lr * g;
            }
        }
        // 8-bit classifier (48-odd weights; negligible storage next to the
        // 2-bit convolution).
        let maxabs = fc.iter().fold(0.0f32, |m, &x| m.max(x.abs())).max(1e-6);
        let scale = maxabs / 127.0;
        q.fc = fc.iter().map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
        q.fc_scale = scale;
        q.fc_bias = fc_bias;
        q
    }
}

/// The 2-bit-weight inference network deployed on-BPU (§V-C: low-precision
/// networks reduce the forward pass to a handful of narrow integer
/// operations).
#[derive(Clone, Debug)]
pub struct QuantizedCnn {
    conv: Vec<Vec<i8>>,
    conv_scales: Vec<f32>,
    conv_bias: Vec<f32>,
    fc: Vec<i8>,
    fc_scale: f32,
    fc_bias: f32,
    buckets: usize,
    segments: usize,
}

impl QuantizedCnn {
    /// Pooled `(filter, segment)` features computed with the quantized
    /// convolution — used by forward inference and by quantization-aware
    /// classifier fine-tuning.
    fn pooled(&self, window: &[u16]) -> Vec<f32> {
        let seg_len = (window.len().max(1) as f32 / self.segments as f32).max(1.0);
        let mut z = vec![0.0f32; self.conv.len() * self.segments];
        for (f, filter) in self.conv.iter().enumerate() {
            let scale = self.conv_scales[f];
            let bias = self.conv_bias[f];
            for (pos, &b) in window.iter().enumerate() {
                if b != EMPTY_BUCKET {
                    let a = f32::from(filter[b as usize]) * scale + bias;
                    if a > 0.0 {
                        let seg =
                            (pos * self.segments / window.len().max(1)).min(self.segments - 1);
                        z[f * self.segments + seg] += a;
                    }
                }
            }
        }
        for x in &mut z {
            *x /= seg_len;
        }
        z
    }

    /// Forward pass using the quantized weights.
    #[must_use]
    pub fn forward(&self, window: &[u16]) -> CnnOutput {
        let z = self.pooled(window);
        let mut score = self.fc_bias;
        for (v, zf) in self.fc.iter().zip(&z) {
            score += f32::from(*v) * self.fc_scale * zf;
        }
        CnnOutput { score }
    }

    /// Number of embedding buckets expected in inputs.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Storage for the deployed weights in bits: 2 bits per convolution
    /// weight, 8 bits per classifier weight, plus 32-bit scales/biases.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        let conv_w: usize = self.conv.iter().map(|f| f.len() * 2).sum();
        conv_w + self.fc.len() * 8 + (self.conv_scales.len() + self.conv_bias.len() + 2) * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::HistoryEncoder;

    /// Builds a labeled dataset where the outcome equals the presence of a
    /// "signal" bucket anywhere in the window, amid random noise buckets.
    fn presence_dataset(n: usize, window: usize, buckets: usize) -> Vec<(Vec<u16>, bool)> {
        let signal = HistoryEncoder::bucket_of(0xDEAD, true, buckets);
        let mut state = 777u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        (0..n)
            .map(|_| {
                let label = rnd() % 2 == 0;
                let pos = (rnd() % window as u64) as usize;
                let mut win: Vec<u16> = (0..window)
                    .map(|_| {
                        // Noise buckets, excluding the signal bucket.
                        let mut b = (rnd() % buckets as u64) as u16;
                        if b == signal {
                            b = (b + 1) % buckets as u16;
                        }
                        b
                    })
                    .collect();
                if label {
                    win[pos] = signal;
                }
                (win, label)
            })
            .collect()
    }

    #[test]
    fn learns_position_tolerant_presence() {
        let (window, buckets) = (16, 32);
        let data = presence_dataset(3000, window, buckets);
        let mut net = CnnNet::new(8, buckets, 4);
        for _ in 0..6 {
            for (win, label) in &data {
                net.train_step(win, *label, 0.05);
            }
        }
        let correct = data
            .iter()
            .filter(|(win, label)| net.forward(win).taken() == *label)
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.95, "presence-detection accuracy {acc}");
    }

    #[test]
    fn quantized_network_tracks_float_network() {
        let (window, buckets) = (16, 32);
        let data = presence_dataset(2000, window, buckets);
        let mut net = CnnNet::new(8, buckets, 4);
        for _ in 0..6 {
            for (win, label) in &data {
                net.train_step(win, *label, 0.05);
            }
        }
        let q = net.quantize();
        let agree = data
            .iter()
            .filter(|(win, _)| net.forward(win).taken() == q.forward(win).taken())
            .count();
        let rate = agree as f64 / data.len() as f64;
        assert!(rate > 0.9, "quantized agreement {rate}");
        let qacc = data
            .iter()
            .filter(|(win, label)| q.forward(win).taken() == *label)
            .count() as f64
            / data.len() as f64;
        assert!(qacc > 0.85, "quantized accuracy {qacc}");
    }

    #[test]
    fn quantized_weights_are_two_bit() {
        let net = CnnNet::new(4, 16, 2);
        let q = net.quantize();
        assert!(q.conv.iter().flatten().all(|&w| (-2..=2).contains(&w)));
        assert!(q.fc.iter().all(|&w| (-2..=2).contains(&w)));
        assert!(q.storage_bits() < 4 * 16 * 32); // far below f32 storage
    }

    #[test]
    fn quantization_is_direction_symmetric() {
        // A positive-dominated and a negative-dominated classifier must
        // quantize without flipping predictions.
        for sign in [1.0f32, -1.0] {
            let mut net = CnnNet::new(4, 8, 2);
            let win: Vec<u16> = vec![1, 3, 5, 7];
            for _ in 0..200 {
                net.train_step(&win, sign > 0.0, 0.1);
            }
            let q = net.quantize();
            assert_eq!(
                net.forward(&win).taken(),
                q.forward(&win).taken(),
                "sign {sign} flipped under quantization"
            );
        }
    }

    #[test]
    fn empty_window_is_neutral() {
        let net = CnnNet::new(4, 16, 2);
        let win = vec![EMPTY_BUCKET; 8];
        // Must not panic, and bias-only output.
        let out = net.forward(&win);
        assert!(out.score.abs() < 1.0);
    }

    #[test]
    fn training_reduces_loss_on_constant_label() {
        let mut net = CnnNet::new(4, 16, 2);
        let win: Vec<u16> = vec![3, 5, 7, 9];
        let before = net.forward(&win).score;
        for _ in 0..50 {
            net.train_step(&win, true, 0.1);
        }
        let after = net.forward(&win).score;
        assert!(after > before, "score should move toward taken");
        assert!(net.forward(&win).taken());
    }
}
