//! Phase-conditioned rare-branch helper (§V-B).
//!
//! Rare branches supply too few samples within one invocation for online
//! learning (§IV-B). This helper learns *long-term* per-branch direction
//! statistics offline — aggregated over multiple traces/invocations — and
//! conditions them on the current program phase, recognized online by
//! matching a lightweight branch-frequency sketch of the recent window
//! against stored phase centroids.

use std::collections::HashMap;

use bp_trace::Trace;

/// Hyper-parameters for the phase helper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseHelperConfig {
    /// Sketch dimensionality for phase recognition.
    pub dims: usize,
    /// Window (in conditional branches) summarized by the online sketch.
    pub window: usize,
    /// Number of phases to learn.
    pub phases: usize,
    /// Minimum per-(phase, ip) samples before the conditioned bias is
    /// trusted over the global bias.
    pub min_samples: u64,
}

impl Default for PhaseHelperConfig {
    fn default() -> Self {
        PhaseHelperConfig {
            dims: 32,
            window: 512,
            phases: 8,
            min_samples: 4,
        }
    }
}

fn sketch_bucket(ip: u64, dims: usize) -> usize {
    ((ip >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % dims
}

/// The trained phase-conditioned direction table.
#[derive(Clone, Debug)]
pub struct PhaseHelper {
    config: PhaseHelperConfig,
    /// Phase centroids over normalized IP-frequency sketches.
    centroids: Vec<Vec<f64>>,
    /// `(phase, ip) -> (taken, total)` long-term statistics.
    table: HashMap<(usize, u64), (u64, u64)>,
    /// `ip -> (taken, total)` phase-agnostic fallback.
    global: HashMap<u64, (u64, u64)>,
    // --- online state ---
    recent: std::collections::VecDeque<u64>,
    sketch: Vec<f64>,
}

impl PhaseHelper {
    /// Trains the helper offline from one or more traces (`&[Trace]` or
    /// `&[Arc<Trace>]`).
    ///
    /// # Panics
    ///
    /// Panics if `traces` contains no conditional branches or the
    /// configuration is degenerate (zero dims/window/phases).
    #[must_use]
    pub fn train<T: std::borrow::Borrow<Trace>>(traces: &[T], config: PhaseHelperConfig) -> Self {
        assert!(config.dims > 0 && config.window > 0 && config.phases > 0);
        // Build per-window sketches and branch streams.
        let mut windows: Vec<Vec<f64>> = Vec::new();
        let mut window_branches: Vec<Vec<(u64, bool)>> = Vec::new();
        for trace in traces {
            let trace = trace.borrow();
            let mut cur = vec![0.0f64; config.dims];
            let mut brs = Vec::with_capacity(config.window);
            for b in trace.conditional_branches() {
                cur[sketch_bucket(b.ip, config.dims)] += 1.0;
                brs.push((b.ip, b.taken));
                if brs.len() == config.window {
                    let total: f64 = cur.iter().sum();
                    for x in &mut cur {
                        *x /= total;
                    }
                    windows.push(std::mem::replace(&mut cur, vec![0.0f64; config.dims]));
                    window_branches.push(std::mem::take(&mut brs));
                }
            }
        }
        assert!(!windows.is_empty(), "traces contain too few branches");

        let k = config.phases.min(windows.len());
        let (labels, _) = bp_analysis::kmeans(&windows, k, 25);
        let centroids = {
            let mut sums = vec![vec![0.0f64; config.dims]; k];
            let mut counts = vec![0usize; k];
            for (w, &l) in windows.iter().zip(&labels) {
                counts[l] += 1;
                for (s, x) in sums[l].iter_mut().zip(w) {
                    *s += x;
                }
            }
            sums.into_iter()
                .zip(counts)
                .map(|(s, c)| {
                    if c == 0 {
                        s
                    } else {
                        s.into_iter().map(|x| x / c as f64).collect()
                    }
                })
                .collect::<Vec<_>>()
        };

        let mut table: HashMap<(usize, u64), (u64, u64)> = HashMap::new();
        let mut global: HashMap<u64, (u64, u64)> = HashMap::new();
        for (brs, &phase) in window_branches.iter().zip(&labels) {
            for &(ip, taken) in brs {
                let e = table.entry((phase, ip)).or_default();
                e.0 += u64::from(taken);
                e.1 += 1;
                let g = global.entry(ip).or_default();
                g.0 += u64::from(taken);
                g.1 += 1;
            }
        }
        PhaseHelper {
            recent: std::collections::VecDeque::with_capacity(config.window),
            sketch: vec![0.0f64; config.dims],
            config,
            centroids,
            table,
            global,
        }
    }

    /// Number of learned phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.centroids.len()
    }

    /// Observes a retired conditional branch, updating the online sketch.
    pub fn observe(&mut self, ip: u64, _taken: bool) {
        if self.recent.len() == self.config.window {
            if let Some(old) = self.recent.pop_back() {
                self.sketch[sketch_bucket(old, self.config.dims)] -= 1.0;
            }
        }
        self.recent.push_front(ip);
        self.sketch[sketch_bucket(ip, self.config.dims)] += 1.0;
    }

    /// The phase the current window most resembles.
    #[must_use]
    pub fn current_phase(&self) -> usize {
        let total: f64 = self.sketch.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let norm: Vec<f64> = self.sketch.iter().map(|x| x / total).collect();
        self.centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| dist2(&norm, a).total_cmp(&dist2(&norm, b)))
            .map_or(0, |(i, _)| i)
    }

    /// Predicts `ip` from phase-conditioned long-term statistics. Returns
    /// `None` when the branch was never seen in training.
    #[must_use]
    pub fn predict(&self, ip: u64) -> Option<bool> {
        let phase = self.current_phase();
        if let Some(&(t, n)) = self.table.get(&(phase, ip)) {
            if n >= self.config.min_samples {
                return Some(2 * t >= n);
            }
        }
        self.global.get(&ip).map(|&(t, n)| 2 * t >= n)
    }

    /// Storage estimate in bits for the deployed tables.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        // Per table entry: ~16-bit tag + two 16-bit counters.
        self.table.len() * 48 + self.global.len() * 48 + self.centroids.len() * self.config.dims * 16
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{RetiredInst, TraceMeta};

    /// Two alternating phases: phase A executes branches 0x1000.. with
    /// direction taken; phase B executes branches 0x2000.. not-taken.
    /// Crucially, IP 0x3000 appears in both phases with *opposite*
    /// directions — only phase conditioning predicts it.
    fn phased_trace(laps: usize) -> Trace {
        let mut t = Trace::new(TraceMeta::new("ph", 0));
        for lap in 0..laps {
            let phase_a = lap % 2 == 0;
            for i in 0..512u64 {
                let (ip, taken) = if phase_a {
                    (0x1000 + (i % 16) * 4, true)
                } else {
                    (0x2000 + (i % 16) * 4, false)
                };
                t.push(RetiredInst::cond_branch(ip, taken, 0, None, None));
                if i % 16 == 7 {
                    t.push(RetiredInst::cond_branch(0x3000, phase_a, 0, None, None));
                }
            }
        }
        t
    }

    fn cfg() -> PhaseHelperConfig {
        PhaseHelperConfig {
            dims: 16,
            window: 64,
            phases: 2,
            min_samples: 2,
        }
    }

    #[test]
    fn learns_two_phases() {
        let t = phased_trace(8);
        let h = PhaseHelper::train(&[t], cfg());
        assert_eq!(h.phase_count(), 2);
    }

    #[test]
    fn phase_conditioning_beats_global_bias() {
        let train = phased_trace(8);
        let mut h = PhaseHelper::train(&[train], cfg());
        // Replay a fresh trace; 0x3000's direction flips with the phase,
        // so its global bias is ~50% but phase-conditioned is exact.
        let test = phased_trace(6);
        let mut total = 0u64;
        let mut correct = 0u64;
        for b in test.conditional_branches() {
            if b.ip == 0x3000 {
                if let Some(p) = h.predict(b.ip) {
                    total += 1;
                    correct += u64::from(p == b.taken);
                }
            }
            h.observe(b.ip, b.taken);
        }
        let acc = correct as f64 / total.max(1) as f64;
        assert!(acc > 0.85, "phase-conditioned accuracy {acc}");
    }

    #[test]
    fn unseen_ip_returns_none() {
        let t = phased_trace(4);
        let h = PhaseHelper::train(&[t], cfg());
        assert_eq!(h.predict(0xFFFF_FFFF), None);
    }

    #[test]
    fn storage_is_reported() {
        let t = phased_trace(4);
        let h = PhaseHelper::train(&[t], cfg());
        assert!(h.storage_bits() > 0);
    }

    #[test]
    #[should_panic(expected = "too few branches")]
    fn empty_training_panics() {
        let t = Trace::new(TraceMeta::new("e", 0));
        let _ = PhaseHelper::train(&[t], cfg());
    }
}
