//! The §V deployment model: a baseline TAGE-SC-L augmented with
//! offline-trained helper predictors for designated branches.
//!
//! Helpers are frozen models loaded "as application metadata" (§V-D); the
//! baseline predictor keeps running — and training — for every branch, but
//! the final prediction for a helped IP comes from its helper.

use std::collections::HashMap;

use bp_predictors::Predictor;

use crate::phase_helper::PhaseHelper;
use crate::trainer::CnnHelper;

/// A baseline predictor plus per-IP helper overrides.
///
/// Implements [`Predictor`] honestly: helpers only see retired outcomes
/// through `update`, never the outcome being predicted.
#[derive(Clone, Debug)]
pub struct HybridPredictor<P> {
    baseline: P,
    cnn_helpers: HashMap<u64, CnnHelper>,
    phase_helper: Option<PhaseHelper>,
    name: String,
    /// Dynamic predictions served by a helper rather than the baseline.
    pub helper_overrides: u64,
}

impl<P: Predictor> HybridPredictor<P> {
    /// Wraps `baseline` with no helpers attached.
    #[must_use]
    pub fn new(baseline: P) -> Self {
        let name = format!("hybrid({})", baseline.name());
        HybridPredictor {
            baseline,
            cnn_helpers: HashMap::new(),
            phase_helper: None,
            name,
            helper_overrides: 0,
        }
    }

    /// Attaches a CNN helper for its target IP.
    pub fn attach_cnn(&mut self, helper: CnnHelper) {
        self.cnn_helpers.insert(helper.target_ip, helper);
    }

    /// Attaches a phase-conditioned rare-branch helper (consulted for any
    /// IP without a CNN helper).
    pub fn attach_phase_helper(&mut self, helper: PhaseHelper) {
        self.phase_helper = Some(helper);
    }

    /// Number of attached CNN helpers.
    #[must_use]
    pub fn cnn_helper_count(&self) -> usize {
        self.cnn_helpers.len()
    }

    /// Access to the wrapped baseline predictor.
    #[must_use]
    pub fn baseline(&self) -> &P {
        &self.baseline
    }
}

impl<P: Predictor> Predictor for HybridPredictor<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&mut self, ip: u64) -> bool {
        let base = self.baseline.predict(ip);
        if let Some(h) = self.cnn_helpers.get(&ip) {
            self.helper_overrides += 1;
            return h.predict();
        }
        if let Some(ph) = &self.phase_helper {
            if let Some(p) = ph.predict(ip) {
                self.helper_overrides += 1;
                return p;
            }
        }
        base
    }

    fn update(&mut self, ip: u64, taken: bool, pred: bool) {
        self.baseline.update(ip, taken, pred);
        for h in self.cnn_helpers.values_mut() {
            h.observe(ip, taken);
        }
        if let Some(ph) = &mut self.phase_helper {
            ph.observe(ip, taken);
        }
    }

    fn storage_bits(&self) -> usize {
        self.baseline.storage_bits()
            + self
                .cnn_helpers
                .values()
                .map(CnnHelper::storage_bits)
                .sum::<usize>()
            + self.phase_helper.as_ref().map_or(0, PhaseHelper::storage_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_helper, TrainerConfig};
    use bp_predictors::{measure, Bimodal};
    use bp_trace::{RetiredInst, Trace, TraceMeta};

    fn alternating_pair_trace(laps: usize) -> Trace {
        // D random-ish, target mirrors D after two fixed branches.
        let mut t = Trace::new(TraceMeta::new("h", 0));
        let mut state = 5u64;
        for _ in 0..laps {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let d = (state >> 30) & 1 == 1;
            t.push(RetiredInst::cond_branch(0x100, d, 0, None, None));
            t.push(RetiredInst::cond_branch(0x110, true, 0, None, None));
            t.push(RetiredInst::cond_branch(0x200, d, 0, None, None));
        }
        t
    }

    #[test]
    fn hybrid_beats_weak_baseline_on_target_ip() {
        let train = vec![alternating_pair_trace(1500)];
        let cfg = TrainerConfig {
            window: 8,
            buckets: 32,
            filters: 8,
            segments: 4,
            epochs: 4,
            learning_rate: 0.05,
        };
        let helper = train_helper(&train, 0x200, &cfg);

        let test = alternating_pair_trace(1500);
        // Baseline alone: bimodal can't predict a random-mirroring branch.
        let base_acc = measure(&mut Bimodal::new(10), &test).accuracy();
        let mut hybrid = HybridPredictor::new(Bimodal::new(10));
        hybrid.attach_cnn(helper);
        let hybrid_acc = measure(&mut hybrid, &test).accuracy();
        assert!(
            hybrid_acc > base_acc + 0.1,
            "hybrid {hybrid_acc:.3} vs baseline {base_acc:.3}"
        );
        assert!(hybrid.helper_overrides > 0);
    }

    #[test]
    fn baseline_keeps_training_under_hybrid() {
        // For non-helped IPs the hybrid must behave exactly like the
        // baseline.
        let test = alternating_pair_trace(500);
        let plain = measure(&mut Bimodal::new(10), &test);
        let mut hybrid = HybridPredictor::new(Bimodal::new(10));
        let hybrid_stats = measure(&mut hybrid, &test);
        assert_eq!(plain.total, hybrid_stats.total);
        assert_eq!(plain.correct, hybrid_stats.correct);
        assert_eq!(hybrid.helper_overrides, 0);
    }

    #[test]
    fn storage_includes_helpers() {
        let train = vec![alternating_pair_trace(200)];
        let helper = train_helper(&train, 0x200, &TrainerConfig::default());
        let mut hybrid = HybridPredictor::new(Bimodal::new(10));
        let base_bits = hybrid.storage_bits();
        hybrid.attach_cnn(helper);
        assert!(hybrid.storage_bits() > base_bits);
        assert_eq!(hybrid.cnn_helper_count(), 1);
        assert!(hybrid.name().contains("bimodal"));
    }
}
