//! Offline training of per-branch CNN helper predictors (§V).
//!
//! Training data is gathered from *multiple application inputs* of the
//! same workload — the paper's key departure from CBP-style single-trace
//! methodology (§V-B): aggregating over inputs yields predictive
//! signatures that generalize to unseen inputs.

use bp_trace::Trace;

use crate::cnn::{CnnNet, QuantizedCnn};
use crate::encoder::HistoryEncoder;

/// Hyper-parameters for offline helper training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainerConfig {
    /// History window length `W`.
    pub window: usize,
    /// Embedding buckets `E`.
    pub buckets: usize,
    /// Convolution filters.
    pub filters: usize,
    /// Positional pooling segments.
    pub segments: usize,
    /// Training epochs over the gathered samples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            window: 32,
            buckets: 64,
            filters: 12,
            segments: 4,
            epochs: 4,
            learning_rate: 0.05,
        }
    }
}

/// A trained, frozen helper predictor for one branch IP.
///
/// Deployed alongside a baseline predictor: it observes every retired
/// conditional branch (to maintain its history window) and predicts only
/// its target IP using the 2-bit quantized network.
#[derive(Clone, Debug)]
pub struct CnnHelper {
    /// The branch this helper predicts.
    pub target_ip: u64,
    net: QuantizedCnn,
    encoder: HistoryEncoder,
}

impl CnnHelper {
    /// Observes a retired conditional branch (any IP).
    pub fn observe(&mut self, ip: u64, taken: bool) {
        self.encoder.push(ip, taken);
    }

    /// Predicts the target branch from the current history window.
    #[must_use]
    pub fn predict(&self) -> bool {
        self.net.forward(&self.encoder.buckets()).taken()
    }

    /// Storage of the deployed model in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.net.storage_bits()
    }
}

/// Gathers `(window, outcome)` samples for `target_ip` from a trace.
fn gather_samples(
    trace: &Trace,
    target_ip: u64,
    config: &TrainerConfig,
    out: &mut Vec<(Vec<u16>, bool)>,
) {
    let mut enc = HistoryEncoder::new(config.window, config.buckets);
    for br in trace.conditional_branches() {
        if br.ip == target_ip {
            out.push((enc.buckets(), br.taken));
        }
        enc.push(br.ip, br.taken);
    }
}

/// Trains a [`CnnHelper`] for `target_ip` on the given training traces
/// (typically several application inputs of one workload). Accepts any
/// slice of trace-like values — `&[Trace]` or the `Arc<Trace>`s handed out
/// by `bp_workloads::TraceStore`.
///
/// # Panics
///
/// Panics if no training samples are found for `target_ip`.
///
/// # Examples
///
/// ```
/// use bp_helpers::{train_helper, TrainerConfig};
/// use bp_workloads::specint_suite;
///
/// let spec = &specint_suite()[1]; // mcf-like
/// let trace = spec.trace(0, 15_000);
/// // Pick some frequently-executed branch as the target.
/// let mut counts = std::collections::HashMap::new();
/// for b in trace.conditional_branches() {
///     *counts.entry(b.ip).or_insert(0u64) += 1;
/// }
/// let (&ip, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
/// let cfg = TrainerConfig { epochs: 1, ..TrainerConfig::default() };
/// let helper = train_helper(&[trace], ip, &cfg);
/// assert_eq!(helper.target_ip, ip);
/// ```
#[must_use]
pub fn train_helper<T: std::borrow::Borrow<Trace>>(
    traces: &[T],
    target_ip: u64,
    config: &TrainerConfig,
) -> CnnHelper {
    let mut samples = Vec::new();
    for t in traces {
        gather_samples(t.borrow(), target_ip, config, &mut samples);
    }
    assert!(
        !samples.is_empty(),
        "no executions of {target_ip:#x} in the training traces"
    );
    let mut net = CnnNet::new(config.filters, config.buckets, config.segments);
    for _ in 0..config.epochs {
        for (win, taken) in &samples {
            net.train_step(win, *taken, config.learning_rate);
        }
    }
    // Deploy with 2-bit convolution weights, fine-tuning the classifier on
    // the quantized features (see `CnnNet::quantize_finetuned`).
    CnnHelper {
        target_ip,
        net: net.quantize_finetuned(&samples, 2.max(config.epochs / 2), config.learning_rate),
        encoder: HistoryEncoder::new(config.window, config.buckets),
    }
}

/// Evaluates a helper on a held-out trace, returning its accuracy on the
/// target IP (None when the IP never executes there).
#[must_use]
pub fn evaluate_helper(helper: &CnnHelper, trace: &Trace) -> Option<f64> {
    let mut h = helper.clone();
    h.encoder.reset();
    let mut total = 0u64;
    let mut correct = 0u64;
    for br in trace.conditional_branches() {
        if br.ip == h.target_ip {
            total += 1;
            correct += u64::from(h.predict() == br.taken);
        }
        h.observe(br.ip, br.taken);
    }
    (total > 0).then(|| correct as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{RetiredInst, TraceMeta};

    /// A synthetic variable-gap workload: branch D (random), then 1..=4
    /// noise branches, then the target mirroring D.
    fn var_gap_trace(seed: u64, laps: usize) -> Trace {
        let mut t = Trace::new(TraceMeta::new("vg", 0));
        let mut state = seed;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..laps {
            let d = rnd() % 2 == 0;
            t.push(RetiredInst::cond_branch(0x100, d, 0, None, None));
            let gap = 1 + (rnd() % 4) as usize;
            for k in 0..gap {
                let n = rnd() % 100 < 70;
                t.push(RetiredInst::cond_branch(0x200 + k as u64 * 4, n, 0, None, None));
            }
            t.push(RetiredInst::cond_branch(0x300, d, 0, None, None));
        }
        t
    }

    #[test]
    fn helper_learns_variable_gap_correlation_and_generalizes() {
        let cfg = TrainerConfig {
            window: 12,
            buckets: 32,
            filters: 8,
            segments: 4,
            epochs: 5,
            learning_rate: 0.05,
        };
        let train: Vec<Trace> = vec![var_gap_trace(1, 1200), var_gap_trace(2, 1200)];
        let helper = train_helper(&train, 0x300, &cfg);
        // Held-out input (different seed).
        let test = var_gap_trace(99, 1200);
        let acc = evaluate_helper(&helper, &test).unwrap();
        assert!(acc > 0.9, "held-out accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "no executions")]
    fn training_without_samples_panics() {
        let t = var_gap_trace(1, 10);
        let _ = train_helper(&[t], 0xDEAD_BEEF, &TrainerConfig::default());
    }

    #[test]
    fn evaluate_returns_none_for_absent_ip() {
        let train = vec![var_gap_trace(1, 100)];
        let helper = train_helper(&train, 0x300, &TrainerConfig::default());
        let empty = Trace::new(TraceMeta::new("none", 0));
        assert!(evaluate_helper(&helper, &empty).is_none());
    }

    #[test]
    fn helper_storage_is_small() {
        let train = vec![var_gap_trace(1, 200)];
        let helper = train_helper(&train, 0x300, &TrainerConfig::default());
        // Under 1 KB of weights per helper.
        assert!(helper.storage_bits() < 8 * 1024);
    }
}
