//! Global-history encoding for CNN helper predictors.
//!
//! Following the companion paper's input encoding, the most recent `W`
//! retired conditional branches are encoded as one-hot vectors: each
//! `(IP, direction)` pair hashes into one of `E` embedding buckets, giving
//! a binary `W x E` input that a low-precision convolutional network can
//! process with a handful of integer operations.

use std::collections::VecDeque;

/// Maintains a sliding window of `(IP, direction)` pairs and exposes the
/// bucketized encoding.
///
/// # Examples
///
/// ```
/// use bp_helpers::HistoryEncoder;
///
/// let mut enc = HistoryEncoder::new(8, 32);
/// enc.push(0x40, true);
/// enc.push(0x44, false);
/// let buckets = enc.buckets();
/// assert_eq!(buckets.len(), 8);
/// // Position 0 is the most recent branch.
/// assert_eq!(buckets[0], HistoryEncoder::bucket_of(0x44, false, 32));
/// ```
#[derive(Clone, Debug)]
pub struct HistoryEncoder {
    window: VecDeque<u16>,
    window_len: usize,
    buckets: usize,
}

/// Bucket index reserved for "no history yet".
pub const EMPTY_BUCKET: u16 = u16::MAX;

impl HistoryEncoder {
    /// Creates an encoder over a window of `window_len` branches hashed
    /// into `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is 0 or greater than 512, or `buckets` is 0
    /// or greater than 4,096.
    #[must_use]
    pub fn new(window_len: usize, buckets: usize) -> Self {
        assert!(
            (1..=512).contains(&window_len),
            "window length must be 1..=512"
        );
        assert!((1..=4096).contains(&buckets), "buckets must be 1..=4096");
        HistoryEncoder {
            window: VecDeque::with_capacity(window_len),
            window_len,
            buckets,
        }
    }

    /// The bucket an `(ip, direction)` pair hashes to.
    #[must_use]
    pub fn bucket_of(ip: u64, taken: bool, buckets: usize) -> u16 {
        let key = ((ip >> 2) << 1) | u64::from(taken);
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 33) % buckets as u64) as u16
    }

    /// Records a retired conditional branch.
    pub fn push(&mut self, ip: u64, taken: bool) {
        if self.window.len() == self.window_len {
            self.window.pop_back();
        }
        self.window
            .push_front(Self::bucket_of(ip, taken, self.buckets));
    }

    /// The current window as bucket indices, position 0 = most recent;
    /// positions beyond the observed history hold [`EMPTY_BUCKET`].
    #[must_use]
    pub fn buckets(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.window.iter().copied().collect();
        v.resize(self.window_len, EMPTY_BUCKET);
        v
    }

    /// Window length `W`.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of embedding buckets `E`.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_slides_most_recent_first() {
        let mut e = HistoryEncoder::new(3, 64);
        e.push(0x10, true);
        e.push(0x20, false);
        e.push(0x30, true);
        e.push(0x40, true); // evicts 0x10
        let b = e.buckets();
        assert_eq!(b[0], HistoryEncoder::bucket_of(0x40, true, 64));
        assert_eq!(b[1], HistoryEncoder::bucket_of(0x30, true, 64));
        assert_eq!(b[2], HistoryEncoder::bucket_of(0x20, false, 64));
    }

    #[test]
    fn short_history_pads_with_empty() {
        let mut e = HistoryEncoder::new(4, 64);
        e.push(0x10, true);
        let b = e.buckets();
        assert_ne!(b[0], EMPTY_BUCKET);
        assert!(b[1..].iter().all(|&x| x == EMPTY_BUCKET));
    }

    #[test]
    fn direction_changes_bucket() {
        let t = HistoryEncoder::bucket_of(0x100, true, 256);
        let n = HistoryEncoder::bucket_of(0x100, false, 256);
        assert_ne!(t, n);
    }

    #[test]
    fn buckets_are_in_range() {
        for ip in (0..4096u64).step_by(4) {
            for taken in [true, false] {
                assert!(HistoryEncoder::bucket_of(ip, taken, 32) < 32);
            }
        }
    }

    #[test]
    fn reset_clears_window() {
        let mut e = HistoryEncoder::new(2, 16);
        e.push(0x10, true);
        e.reset();
        assert!(e.buckets().iter().all(|&b| b == EMPTY_BUCKET));
    }
}
