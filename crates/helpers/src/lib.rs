//! Offline-trained helper predictors — the paper's §V future directions,
//! implemented end-to-end.
//!
//! * [`HistoryEncoder`] — one-hot hashed `(IP, direction)` history input;
//! * [`CnnNet`]/[`QuantizedCnn`] — a small 1-D CNN trained offline in
//!   full precision and deployed with 2-bit weights (§V-C);
//! * [`train_helper`] — the offline training pipeline over multi-input
//!   trace sets (§V-B), producing per-branch [`CnnHelper`]s;
//! * [`PhaseHelper`] — phase-conditioned long-term statistics for rare
//!   branches (§V-B);
//! * [`HybridPredictor`] — the deployment model: TAGE-SC-L left in place,
//!   helpers overriding designated IPs (§V-D).

#![warn(missing_docs)]

mod cnn;
mod encoder;
mod hybrid;
mod phase_helper;
mod trainer;

pub use cnn::{CnnNet, CnnOutput, QuantizedCnn};
pub use encoder::{HistoryEncoder, EMPTY_BUCKET};
pub use hybrid::HybridPredictor;
pub use phase_helper::{PhaseHelper, PhaseHelperConfig};
pub use trainer::{evaluate_helper, train_helper, CnnHelper, TrainerConfig};
