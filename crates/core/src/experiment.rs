//! The IPC limit studies: Figs. 1, 5, 7 and 8.
//!
//! All studies share one structure: step every predictor configuration
//! through **one** pass over the trace
//! ([`sweep_flags`](bp_predictors::sweep_flags)) to get misprediction
//! streams, then replay those streams in lockstep through the pipeline
//! timing model ([`SweepReplay`]) at several capacity scalings.
//! Misprediction streams are scale-independent, so each predictor pass is
//! reused across all pipeline configurations; the prepared trace is
//! decoded once per workload instead of once per (config, scale) cell.

use std::collections::HashSet;
use std::sync::Arc;

use bp_analysis::{BranchProfile, H2pCriteria};
use bp_pipeline::{simulate, PipelineConfig, SweepReplay};
use bp_predictors::{
    misprediction_flags, sweep_flags, sweep_flags_stream, DirectionPredictor, PerfectSetOracle,
    PredictorSpec, TageScL, TageSclConfig,
};
use bp_trace::Trace;
use bp_workloads::{TraceStore, WorkloadSpec};

use crate::config::DatasetConfig;
use crate::parallel::Engine;

/// IPC of one predictor across pipeline scales, relative to a baseline.
#[derive(Clone, Debug)]
pub struct ScalingSeries {
    /// Series label, e.g. `"TAGE-SC-L 8KB"`.
    pub label: String,
    /// Mean relative IPC per scale (geometric mean across workloads),
    /// aligned with [`ScalingStudy::scales`].
    pub relative_ipc: Vec<f64>,
}

/// The Fig. 1 / Fig. 5 study result.
#[derive(Clone, Debug)]
pub struct ScalingStudy {
    /// Pipeline capacity scaling factors.
    pub scales: Vec<u32>,
    /// One series per predictor configuration.
    pub series: Vec<ScalingSeries>,
}

impl ScalingStudy {
    /// The relative IPC of `label` at `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the label or scale is unknown.
    #[must_use]
    pub fn value(&self, label: &str, scale: u32) -> f64 {
        let si = self
            .scales
            .iter()
            .position(|&s| s == scale)
            .unwrap_or_else(|| panic!("unknown scale {scale}"));
        let series = self
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("unknown series {label}"));
        series.relative_ipc[si]
    }
}

/// Per-workload mispredict streams for the four Fig. 1 predictor
/// configurations.
struct WorkloadStreams {
    trace: Arc<Trace>,
    tage8: Vec<bool>,
    tage64: Vec<bool>,
    perfect_h2p: Vec<bool>,
    perfect: Vec<bool>,
}

fn streams_for(spec: &WorkloadSpec, config: &DatasetConfig) -> WorkloadStreams {
    let trace = spec.cached_trace(0, config.trace_len);

    // Per-slice H2P screen (fresh 8KB predictor) for the oracle set.
    let criteria = H2pCriteria::paper();
    let mut h2ps: HashSet<u64> = HashSet::new();
    {
        let mut screen_pred = TageScL::kb8();
        for slice in trace.slices(config.slice) {
            let profile = BranchProfile::collect(&mut screen_pred, slice);
            h2ps.extend(criteria.screen(&profile, config.slice));
        }
    }
    // All three honest configurations share one pass over the branch
    // stream; each still sees exactly its solo training sequence.
    let mut predictors: Vec<Box<dyn DirectionPredictor>> = vec![
        Box::new(TageScL::kb8()),
        Box::new(TageScL::kb64()),
        Box::new(PerfectSetOracle::new(TageScL::kb8(), h2ps)),
    ];
    let mut flags = sweep_flags(&mut predictors, &trace);
    let perfect_h2p_flags = flags.pop().expect("three streams");
    let tage64_flags = flags.pop().expect("two streams");
    let tage8_flags = flags.pop().expect("one stream");
    let perfect = vec![false; trace.conditional_branch_count()];
    WorkloadStreams {
        trace,
        tage8: tage8_flags,
        tage64: tage64_flags,
        perfect_h2p: perfect_h2p_flags,
        perfect,
    }
}

/// Runs the Fig. 1 (SPECint) / Fig. 5 (LCF) pipeline-scaling study over
/// `specs`, reporting IPC relative to TAGE-SC-L 8KB at 1x (geometric mean
/// across workloads). Workloads run in parallel on [`Engine::from_env`].
#[must_use]
pub fn scaling_study(specs: &[WorkloadSpec], config: &DatasetConfig) -> ScalingStudy {
    scaling_study_with(Engine::from_env(), specs, config)
}

/// [`scaling_study`] on an explicit [`Engine`]. Results are identical for
/// any thread count: per-workload log-ratios are computed independently
/// and reduced serially in workload order.
#[must_use]
pub fn scaling_study_with(
    engine: Engine,
    specs: &[WorkloadSpec],
    config: &DatasetConfig,
) -> ScalingStudy {
    let _timer = bp_metrics::stage("study.scaling");
    bp_metrics::Counter::get("study.scaling.workloads").add(specs.len() as u64);
    let scales = PipelineConfig::SCALES.to_vec();
    let base_cfg = PipelineConfig::skylake();
    let labels = [
        "TAGE-SC-L 8KB",
        "TAGE-SC-L 64KB",
        "Perfect H2Ps",
        "Perfect BP",
    ];
    // Per workload: log(ipc ratio) for every (series, scale) cell. The
    // four series replay in lockstep through one prepared trace.
    let contribs: Vec<Vec<Vec<f64>>> = engine.map(specs, |_, spec| {
        let st = streams_for(spec, config);
        let sweep = SweepReplay::new(&st.trace, &base_cfg);
        let base_ipc = sweep.simulate(&st.tage8, &base_cfg).ipc();
        let lanes: [&[bool]; 4] = [&st.tage8, &st.tage64, &st.perfect_h2p, &st.perfect];
        let mut contrib = vec![vec![0.0f64; scales.len()]; labels.len()];
        for (si, &scale) in scales.iter().enumerate() {
            let cfg = base_cfg.scaled(scale);
            for (li, stats) in sweep.simulate_many(&lanes, &cfg).iter().enumerate() {
                contrib[li][si] = (stats.ipc() / base_ipc).ln();
            }
        }
        contrib
    });
    // Serial reduction in workload order keeps the floating-point sum
    // identical to the serial implementation.
    let mut acc = vec![vec![0.0f64; scales.len()]; labels.len()];
    for contrib in &contribs {
        for (li, per_scale) in contrib.iter().enumerate() {
            for (si, &l) in per_scale.iter().enumerate() {
                acc[li][si] += l;
            }
        }
    }
    let n = specs.len().max(1) as f64;
    ScalingStudy {
        scales,
        series: labels
            .iter()
            .zip(acc)
            .map(|(label, logs)| ScalingSeries {
                label: (*label).to_owned(),
                relative_ipc: logs.into_iter().map(|l| (l / n).exp()).collect(),
            })
            .collect(),
    }
}

/// One application's Fig. 7 result: fraction of the TAGE8→perfect IPC gap
/// closed by each storage configuration, at each pipeline scale.
#[derive(Clone, Debug)]
pub struct StorageScalingRow {
    /// Workload name.
    pub name: String,
    /// `gap_closed[scale_index][storage_index]`.
    pub gap_closed: Vec<Vec<f64>>,
}

/// The Fig. 7 study result.
#[derive(Clone, Debug)]
pub struct StorageScalingStudy {
    /// Pipeline scaling factors.
    pub scales: Vec<u32>,
    /// Storage budgets in KB.
    pub storages_kb: Vec<usize>,
    /// One row per application.
    pub rows: Vec<StorageScalingRow>,
}

/// Runs the Fig. 7 limit study: TAGE-SC-L storage from 8KB to 1024KB
/// across pipeline scales, reporting the fraction of the 8KB→perfect IPC
/// gap closed. Workloads run in parallel on [`Engine::from_env`]; within
/// a workload, all storage points share a single trace pass
/// ([`sweep_flags`]) and replay in lockstep ([`SweepReplay`]).
#[must_use]
pub fn storage_scaling_study(
    specs: &[WorkloadSpec],
    config: &DatasetConfig,
) -> StorageScalingStudy {
    storage_scaling_study_with(Engine::from_env(), specs, config)
}

/// [`storage_scaling_study`] on an explicit [`Engine`].
///
/// Fully streamed: both the lockstep predictor pass and the replay
/// preparation consume the trace through [`TraceStore::stream`], so a
/// workload whose trace lives on disk is never materialized — peak
/// memory is bounded by the prepared 12-byte records plus one flag
/// stream per storage point, independent of decode blocking.
#[must_use]
pub fn storage_scaling_study_with(
    engine: Engine,
    specs: &[WorkloadSpec],
    config: &DatasetConfig,
) -> StorageScalingStudy {
    let _timer = bp_metrics::stage("study.storage_scaling");
    bp_metrics::Counter::get("study.storage_scaling.workloads").add(specs.len() as u64);
    let scales = PipelineConfig::SCALES.to_vec();
    let storages = TageSclConfig::STORAGE_POINTS_KB.to_vec();
    let base_cfg = PipelineConfig::skylake();
    let rows: Vec<StorageScalingRow> = engine.map(specs, |_, spec| {
        // All storage points train through one pass over the branch
        // stream — this is the sweep the single-pass engine exists for.
        let mut predictors: Vec<Box<dyn DirectionPredictor>> = storages
            .iter()
            .map(|&kb| {
                Box::new(TageScL::new(TageSclConfig::storage_kb(kb))) as Box<dyn DirectionPredictor>
            })
            .collect();
        let store = TraceStore::global();
        let flags_per_storage =
            sweep_flags_stream(&mut predictors, store.stream(spec, 0, config.trace_len))
                .expect("stream trace for storage sweep");
        let perfect = vec![false; flags_per_storage[0].len()];
        // Lane order: the 8KB baseline, the perfect bound, then every
        // storage point (8KB replays twice so each lane maps 1:1 onto
        // the per-config sims it replaced).
        let mut lanes: Vec<&[bool]> = Vec::with_capacity(storages.len() + 2);
        lanes.push(&flags_per_storage[0]);
        lanes.push(&perfect);
        lanes.extend(flags_per_storage.iter().map(Vec::as_slice));
        let sweep = SweepReplay::prepare(store.stream(spec, 0, config.trace_len), &base_cfg)
            .expect("stream trace for replay prepare");
        let mut gap_closed = Vec::with_capacity(scales.len());
        for &scale in &scales {
            let cfg = base_cfg.scaled(scale);
            let stats = sweep.simulate_many(&lanes, &cfg);
            let ipc8 = stats[0].ipc();
            let ipc_perfect = stats[1].ipc();
            let gap = (ipc_perfect - ipc8).max(1e-9);
            gap_closed.push(
                stats[2..]
                    .iter()
                    .map(|s| ((s.ipc() - ipc8) / gap).max(0.0))
                    .collect(),
            );
        }
        StorageScalingRow {
            name: spec.name.clone(),
            gap_closed,
        }
    });
    StorageScalingStudy {
        scales,
        storages_kb: storages,
        rows,
    }
}

/// One application's heterogeneous-grid result.
#[derive(Clone, Debug)]
pub struct HeteroGridRow {
    /// Workload name.
    pub name: String,
    /// `ipc[scale_index][spec_index]`, aligned with
    /// [`HeteroGridStudy::scales`] and [`HeteroGridStudy::specs`].
    pub ipc: Vec<Vec<f64>>,
    /// Mispredictions per kilo-instruction per spec (scale-independent:
    /// the misprediction stream is fixed before replay).
    pub mpki: Vec<f64>,
}

/// The heterogeneous per-workload grid: every registered predictor
/// configuration at every pipeline scale.
#[derive(Clone, Debug)]
pub struct HeteroGridStudy {
    /// Pipeline scaling factors.
    pub scales: Vec<u32>,
    /// Predictor lineup, in lane order.
    pub specs: Vec<PredictorSpec>,
    /// One row per application.
    pub rows: Vec<HeteroGridRow>,
}

/// Runs the heterogeneous predictor grid over `workloads`: the
/// [`PredictorSpec::hetero_grid`] lineup (mixed TAGE-SC-L storage
/// points, TAGE-only/TAGE-L ablations, classical baselines, and the
/// always-taken/perfect bounds) trained as lanes in **one** lockstep
/// walk of each trace, then replayed as 16 lane-vector streams at every
/// pipeline scale from **one** prepared trace.
///
/// This is the single-pass form of the paper's per-workload grids: per
/// workload, the trace is streamed twice ([`TraceStore::stream`] — once
/// to train all predictors, once to prepare the replay) regardless of
/// how many (predictor, scale) cells the grid has, and never
/// materialized when the on-disk cache holds it.
#[must_use]
pub fn hetero_grid_study(workloads: &[WorkloadSpec], config: &DatasetConfig) -> HeteroGridStudy {
    hetero_grid_study_with(Engine::from_env(), workloads, config)
}

/// [`hetero_grid_study`] on an explicit [`Engine`]. Results are
/// identical for any thread count: each workload's grid is computed
/// independently and collected in workload order.
#[must_use]
pub fn hetero_grid_study_with(
    engine: Engine,
    workloads: &[WorkloadSpec],
    config: &DatasetConfig,
) -> HeteroGridStudy {
    let _timer = bp_metrics::stage("study.hetero_grid");
    bp_metrics::Counter::get("study.hetero_grid.workloads").add(workloads.len() as u64);
    let scales = PipelineConfig::SCALES.to_vec();
    let grid_specs = PredictorSpec::hetero_grid();
    let base_cfg = PipelineConfig::skylake();
    let rows: Vec<HeteroGridRow> = engine.map(workloads, |_, spec| {
        let store = TraceStore::global();
        let mut predictors = PredictorSpec::build_all(&grid_specs);
        let flags = sweep_flags_stream(&mut predictors, store.stream(spec, 0, config.trace_len))
            .expect("stream trace for grid sweep");
        let lanes: Vec<&[bool]> = flags.iter().map(Vec::as_slice).collect();
        let sweep = SweepReplay::prepare(store.stream(spec, 0, config.trace_len), &base_cfg)
            .expect("stream trace for replay prepare");
        let insts = sweep.len().max(1) as f64;
        let mut ipc = Vec::with_capacity(scales.len());
        let mut mpki = Vec::new();
        for &scale in &scales {
            let cfg = base_cfg.scaled(scale);
            let stats = sweep.simulate_many(&lanes, &cfg);
            if mpki.is_empty() {
                mpki = stats
                    .iter()
                    .map(|s| s.mispredictions as f64 * 1000.0 / insts)
                    .collect();
            }
            ipc.push(stats.iter().map(bp_pipeline::SimStats::ipc).collect());
        }
        HeteroGridRow {
            name: spec.name.clone(),
            ipc,
            mpki,
        }
    });
    HeteroGridStudy {
        scales,
        specs: grid_specs,
        rows,
    }
}

/// One application's Fig. 8 result.
#[derive(Clone, Debug)]
pub struct RareOracleRow {
    /// Workload name.
    pub name: String,
    /// Fraction of the TAGE8 IPC opportunity remaining after perfectly
    /// predicting all branches with more than 1,000 (paper-equivalent)
    /// dynamic executions.
    pub remaining_after_1000: f64,
    /// Same with the >100 threshold.
    pub remaining_after_100: f64,
}

/// Runs the Fig. 8 study: on a TAGE-SC-L 1024KB baseline, perfectly
/// predict all branches above a dynamic-execution threshold and measure
/// how much of the TAGE8 IPC opportunity remains (attributable to the
/// rare branches below the threshold).
#[must_use]
pub fn rare_oracle_study(specs: &[WorkloadSpec], config: &DatasetConfig) -> Vec<RareOracleRow> {
    rare_oracle_study_with(Engine::from_env(), specs, config)
}

/// [`rare_oracle_study`] on an explicit [`Engine`].
///
/// The 1024KB predictor's training sequence is independent of the oracle
/// set (a [`PerfectSetOracle`] always trains its inner predictor on the
/// real outcome), so its misprediction stream is computed **once** per
/// workload and both threshold streams are derived from it by masking out
/// branches inside the oracle set — rather than replaying the full trace
/// through a fresh 1024KB TAGE-SC-L per threshold.
#[must_use]
pub fn rare_oracle_study_with(
    engine: Engine,
    specs: &[WorkloadSpec],
    config: &DatasetConfig,
) -> Vec<RareOracleRow> {
    let _timer = bp_metrics::stage("study.rare_oracle");
    bp_metrics::Counter::get("study.rare_oracle.workloads").add(specs.len() as u64);
    let cfg = PipelineConfig::skylake();
    engine.map(specs, |_, spec| {
        let trace = spec.cached_trace(0, config.trace_len);
        // Dynamic execution counts over the whole trace, converted to the
        // paper's 30M-instruction scale for the >1000/>100 thresholds.
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for b in trace.conditional_branches() {
            *counts.entry(b.ip).or_default() += 1;
        }
        let scale = trace.len() as f64 / bp_trace::SliceConfig::PAPER_LEN as f64;
        let ips_above = |paper_threshold: f64| -> HashSet<u64> {
            let native = paper_threshold * scale;
            counts
                .iter()
                .filter(|(_, &c)| c as f64 > native)
                .map(|(&ip, _)| ip)
                .collect()
        };

        // One shared pass trains the 8KB baseline and the 1024KB
        // predictor; an oracle over set S mispredicts exactly where the
        // big predictor mispredicts outside S.
        let mut predictors: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(TageScL::kb8()),
            Box::new(TageScL::new(TageSclConfig::storage_kb(1024))),
        ];
        let mut streams = sweep_flags(&mut predictors, &trace);
        let big_flags = streams.pop().expect("two streams");
        let flags8 = streams.pop().expect("one stream");
        let perfect = vec![false; trace.conditional_branch_count()];
        let masked = |threshold: f64| -> Vec<bool> {
            let set = ips_above(threshold);
            trace
                .conditional_branches()
                .zip(&big_flags)
                .map(|(b, &missed)| missed && !set.contains(&b.ip))
                .collect()
        };
        let after_1000 = masked(1000.0);
        let after_100 = masked(100.0);

        // All four IPC points come from one lockstep replay.
        let sweep = SweepReplay::new(&trace, &cfg);
        let stats = sweep.simulate_many(&[&flags8, &perfect, &after_1000, &after_100], &cfg);
        let ipc8 = stats[0].ipc();
        let ipc_perfect = stats[1].ipc();
        let opportunity = (ipc_perfect - ipc8).max(1e-9);
        let remaining =
            |ipc: f64| -> f64 { ((ipc_perfect - ipc) / opportunity).clamp(0.0, 1.0) };
        RareOracleRow {
            name: spec.name.clone(),
            remaining_after_1000: remaining(stats[2].ipc()),
            remaining_after_100: remaining(stats[3].ipc()),
        }
    })
}

/// Computes the IPC of an arbitrary predictor on a workload at a given
/// pipeline scale — a convenience for examples and ablations.
#[must_use]
pub fn ipc_of(
    spec: &WorkloadSpec,
    config: &DatasetConfig,
    predictor: &mut dyn DirectionPredictor,
    scale: u32,
) -> f64 {
    let trace = spec.cached_trace(0, config.trace_len);
    let flags = misprediction_flags(predictor, &trace);
    simulate(&trace, &flags, &PipelineConfig::skylake().scaled(scale)).ipc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_workloads::{lcf_suite, specint_suite};

    fn tiny() -> DatasetConfig {
        DatasetConfig::quick()
    }

    #[test]
    fn scaling_study_orders_series() {
        let specs = vec![specint_suite()[1].clone()];
        let study = scaling_study(&specs, &tiny());
        // At 1x, TAGE8 is the baseline (1.0) and perfect is above it.
        assert!((study.value("TAGE-SC-L 8KB", 1) - 1.0).abs() < 1e-9);
        assert!(study.value("Perfect BP", 1) > 1.0);
        // Perfect H2P sits between TAGE8 and perfect.
        let ph = study.value("Perfect H2Ps", 1);
        assert!(ph >= 1.0 && ph <= study.value("Perfect BP", 1) + 1e-9);
        // Perfect BP keeps scaling: 32x much higher than 1x.
        assert!(study.value("Perfect BP", 32) > 2.0 * study.value("Perfect BP", 1));
    }

    #[test]
    fn storage_scaling_fractions_are_sane() {
        let specs = vec![lcf_suite()[5].clone()];
        let study = storage_scaling_study(&specs, &tiny());
        let row = &study.rows[0];
        for per_scale in &row.gap_closed {
            // 8KB closes zero gap by definition.
            assert!(per_scale[0].abs() < 1e-9);
            for &v in per_scale {
                assert!((0.0..=1.5).contains(&v), "fraction {v}");
            }
        }
    }

    #[test]
    fn rare_oracle_thresholds_nest() {
        let specs = vec![lcf_suite()[1].clone()]; // game-like
        let rows = rare_oracle_study(&specs, &tiny());
        let r = &rows[0];
        // Fixing more branches (>100 covers more than >1000) leaves less
        // opportunity remaining.
        assert!(
            r.remaining_after_100 <= r.remaining_after_1000 + 1e-9,
            "{r:?}"
        );
        assert!((0.0..=1.0).contains(&r.remaining_after_1000));
    }
}
