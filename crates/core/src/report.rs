//! Plain-text table rendering and CSV export for experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use bp_core::Table;
///
/// let mut t = Table::new(vec!["name", "ipc"]);
/// t.row(vec!["mcf".into(), "1.23".into()]);
/// let text = t.render();
/// assert!(text.contains("mcf"));
/// assert!(t.to_csv().starts_with("name,ipc"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        assert!(!headers.is_empty(), "need at least one column");
        Table {
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:>w$}", w = w);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Serializes to CSV (no quoting; cells must not contain commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// One element of a [`Report`], in output order.
pub enum ReportItem {
    /// A table under a `== heading ==` banner; `name` keys the CSV file.
    Section {
        /// Human-readable heading.
        heading: String,
        /// CSV/file stem, e.g. `"fig3_accuracy"`.
        name: String,
        /// The rendered table.
        table: Table,
    },
    /// A free-form line printed verbatim (may itself contain newlines).
    Note(String),
}

/// A study's complete printable output.
///
/// Every registered [`Study`](crate::Study) returns one of these;
/// [`Report::render`] reproduces the study's stdout byte-for-byte
/// (without CSV export), which is what the golden-master suite
/// snapshots. The CLI layer walks [`Report::items`] to print sections
/// and write CSVs.
#[derive(Default)]
pub struct Report {
    /// Items in output order.
    pub items: Vec<ReportItem>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a table section.
    pub fn section(&mut self, heading: impl Into<String>, name: impl Into<String>, table: Table) {
        self.items.push(ReportItem::Section {
            heading: heading.into(),
            name: name.into(),
            table,
        });
    }

    /// Appends a note line (printed as `println!` would).
    pub fn note(&mut self, line: impl Into<String>) {
        self.items.push(ReportItem::Note(line.into()));
    }

    /// The exact stdout of the owning study when run without CSV export.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                ReportItem::Section { heading, table, .. } => {
                    out.push_str(&format!("\n== {heading} ==\n"));
                    out.push_str(&table.render());
                }
                ReportItem::Note(line) => {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Formats a float with 3 decimals (the common cell format).
#[must_use]
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with 1 decimal.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines are equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(2), Some("3,4"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.553), "55.3%");
    }
}
