//! High-level experiment API for `branch-lab`.
//!
//! Ties the workspace together: dataset construction at a configurable
//! scale ([`DatasetConfig`]), the Table I/II characterization runner
//! ([`characterize_workload`]), the IPC limit studies of Figs. 1/5/7/8
//! ([`scaling_study`], [`storage_scaling_study`], [`rare_oracle_study`]),
//! the study registry the `branch-lab` CLI dispatches from ([`Study`],
//! [`StudyRegistry`]), and plain-text/CSV reporting ([`Table`],
//! [`Report`]).
//!
//! # Examples
//!
//! ```
//! use bp_core::{characterize_workload, DatasetConfig};
//! use bp_predictors::TageScL;
//! use bp_workloads::specint_suite;
//!
//! let leela = &specint_suite()[6];
//! let c = characterize_workload(leela, &DatasetConfig::quick(), || TageScL::kb8());
//! // leela-like is the least predictable SPECint workload.
//! assert!(c.avg_accuracy < 0.97);
//! assert!(!c.h2p_union.is_empty());
//! ```

#![warn(missing_docs)]

mod characterize;
mod config;
pub mod exec;
mod experiment;
mod parallel;
mod report;
pub mod serve;
mod study;

pub use characterize::{
    characterize_input, characterize_workload, characterize_workload_with, InputCharacterization,
    WorkloadCharacterization,
};
pub use config::{DatasetConfig, ResolvedSampling, SamplingConfig};
pub use experiment::{
    hetero_grid_study, hetero_grid_study_with, ipc_of, rare_oracle_study, rare_oracle_study_with,
    scaling_study, scaling_study_with, storage_scaling_study, storage_scaling_study_with,
    HeteroGridRow, HeteroGridStudy, RareOracleRow, ScalingSeries, ScalingStudy, StorageScalingRow,
    StorageScalingStudy,
};
pub use parallel::{thread_count, Engine, TaskError};
pub use report::{f3, pct, Report, ReportItem, Table};
pub use study::{FnStudy, Study, StudyCtx, StudyInfo, StudyKind, StudyRegistry};

/// Deterministic fault injection (re-export of [`bp_metrics::faultpoint`]).
///
/// Lives in `bp-metrics` so the lowest layers (trace store, engine) can
/// host fault sites, but `bp_core::faultpoint` is the canonical path for
/// experiment code and tests.
pub use bp_metrics::faultpoint;

/// Cooperative cancellation (re-export of [`bp_metrics::cancel`]).
///
/// Lives in `bp-metrics` so the replay block loops below `bp-core` can
/// host cancellation checkpoints; `bp_core::cancel` is the canonical
/// path for experiment code, and [`exec`] builds the fault-tolerant
/// executor on top of it.
pub use bp_metrics::cancel;
