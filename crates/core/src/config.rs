//! Experiment-wide configuration.

use bp_trace::SliceConfig;

/// How much of each workload to trace and how to slice it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Instructions per workload trace.
    pub trace_len: usize,
    /// Slice configuration for per-slice statistics.
    pub slice: SliceConfig,
    /// Cap on application inputs per workload (`None` = use the spec's
    /// declared input count).
    pub max_inputs: Option<u32>,
}

impl DatasetConfig {
    /// The default experiment scale: 1M-instruction traces in
    /// 100K-instruction slices (paper: 10B traces in 30M slices — all
    /// count thresholds scale automatically; see `bp-analysis`).
    #[must_use]
    pub fn standard() -> Self {
        DatasetConfig {
            trace_len: 1_000_000,
            slice: SliceConfig::new(100_000),
            max_inputs: None,
        }
    }

    /// A reduced scale for tests and quick runs.
    #[must_use]
    pub fn quick() -> Self {
        DatasetConfig {
            trace_len: 120_000,
            slice: SliceConfig::new(30_000),
            max_inputs: Some(2),
        }
    }

    /// Overrides the trace length, keeping ten slices per trace.
    ///
    /// # Panics
    ///
    /// Panics if `len < 10`.
    #[must_use]
    pub fn with_trace_len(self, len: usize) -> Self {
        assert!(len >= 10, "trace length too small");
        DatasetConfig {
            trace_len: len,
            slice: SliceConfig::new(len / 10),
            ..self
        }
    }

    /// Number of inputs to actually trace for a workload declaring
    /// `declared` inputs.
    #[must_use]
    pub fn inputs_for(&self, declared: u32) -> u32 {
        match self.max_inputs {
            Some(cap) => declared.min(cap),
            None => declared,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// SimPoint-style sampled-replay configuration.
///
/// When enabled, replay-backed studies cluster fixed-length intervals by
/// BBV, simulate one medoid representative per phase (preceded by an
/// architectural warm-up prefix whose contribution is discarded), and
/// reconstruct whole-trace MPKI/IPC as cluster-weighted estimates with
/// confidence intervals. `None` fields resolve against the dataset via
/// [`SamplingConfig::resolve`], so the same config adapts to `--quick`
/// and `--len` scales.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Master switch; `false` means full replay everywhere.
    pub enabled: bool,
    /// Clustering interval length in instructions (`None` = 1/20 of the
    /// trace length, giving 20 intervals per trace).
    pub interval_len: Option<usize>,
    /// Architectural warm-up prefix per representative, in instructions,
    /// discarded from the statistics (`None` = 1/5 of the interval).
    pub warmup: Option<usize>,
    /// Cap on phases (= representatives). The default of 4 keeps worst-case
    /// coverage at `4 × 1.2 × interval / trace = 24%` of the records.
    pub max_phases: usize,
}

impl SamplingConfig {
    /// Sampling off — the default.
    #[must_use]
    pub fn disabled() -> Self {
        SamplingConfig {
            enabled: false,
            interval_len: None,
            warmup: None,
            max_phases: 4,
        }
    }

    /// Sampling on with every knob at its dataset-relative default.
    #[must_use]
    pub fn enabled() -> Self {
        SamplingConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Concrete interval geometry for a dataset: every `None` is replaced
    /// by its dataset-relative default. Execution and cache-key
    /// canonicalization both go through this, so an explicit knob equal to
    /// its default is indistinguishable from leaving it unset.
    #[must_use]
    pub fn resolve(&self, dataset: &DatasetConfig) -> ResolvedSampling {
        let interval_len = self
            .interval_len
            .unwrap_or_else(|| (dataset.trace_len / 20).max(1))
            .max(1);
        ResolvedSampling {
            interval_len,
            warmup: self.warmup.unwrap_or(interval_len / 5),
            max_phases: self.max_phases.max(1),
        }
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// [`SamplingConfig`] with every knob resolved to a concrete number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedSampling {
    /// Clustering interval length in instructions.
    pub interval_len: usize,
    /// Warm-up prefix per representative, in instructions.
    pub warmup: usize,
    /// Cap on phases (= representatives).
    pub max_phases: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_ten_slices() {
        let c = DatasetConfig::standard();
        assert_eq!(c.trace_len / c.slice.len(), 10);
    }

    #[test]
    fn with_trace_len_rescales_slices() {
        let c = DatasetConfig::standard().with_trace_len(500_000);
        assert_eq!(c.slice.len(), 50_000);
    }

    #[test]
    fn sampling_resolves_dataset_relative_defaults() {
        let standard = DatasetConfig::standard();
        let r = SamplingConfig::enabled().resolve(&standard);
        assert_eq!(r.interval_len, 50_000);
        assert_eq!(r.warmup, 10_000);
        assert_eq!(r.max_phases, 4);
        // Explicit values pass through; explicit-equal-to-default
        // canonicalizes to the same resolved shape.
        let explicit = SamplingConfig {
            interval_len: Some(50_000),
            warmup: Some(10_000),
            ..SamplingConfig::enabled()
        };
        assert_eq!(explicit.resolve(&standard), r);
        let custom = SamplingConfig {
            interval_len: Some(10_000),
            warmup: None,
            ..SamplingConfig::enabled()
        };
        assert_eq!(custom.resolve(&standard).warmup, 2_000);
    }

    #[test]
    fn inputs_cap() {
        let c = DatasetConfig {
            max_inputs: Some(3),
            ..DatasetConfig::standard()
        };
        assert_eq!(c.inputs_for(10), 3);
        assert_eq!(c.inputs_for(2), 2);
        assert_eq!(DatasetConfig::standard().inputs_for(10), 10);
    }
}
