//! Experiment-wide configuration.

use bp_trace::SliceConfig;

/// How much of each workload to trace and how to slice it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Instructions per workload trace.
    pub trace_len: usize,
    /// Slice configuration for per-slice statistics.
    pub slice: SliceConfig,
    /// Cap on application inputs per workload (`None` = use the spec's
    /// declared input count).
    pub max_inputs: Option<u32>,
}

impl DatasetConfig {
    /// The default experiment scale: 1M-instruction traces in
    /// 100K-instruction slices (paper: 10B traces in 30M slices — all
    /// count thresholds scale automatically; see `bp-analysis`).
    #[must_use]
    pub fn standard() -> Self {
        DatasetConfig {
            trace_len: 1_000_000,
            slice: SliceConfig::new(100_000),
            max_inputs: None,
        }
    }

    /// A reduced scale for tests and quick runs.
    #[must_use]
    pub fn quick() -> Self {
        DatasetConfig {
            trace_len: 120_000,
            slice: SliceConfig::new(30_000),
            max_inputs: Some(2),
        }
    }

    /// Overrides the trace length, keeping ten slices per trace.
    ///
    /// # Panics
    ///
    /// Panics if `len < 10`.
    #[must_use]
    pub fn with_trace_len(self, len: usize) -> Self {
        assert!(len >= 10, "trace length too small");
        DatasetConfig {
            trace_len: len,
            slice: SliceConfig::new(len / 10),
            ..self
        }
    }

    /// Number of inputs to actually trace for a workload declaring
    /// `declared` inputs.
    #[must_use]
    pub fn inputs_for(&self, declared: u32) -> u32 {
        match self.max_inputs {
            Some(cap) => declared.min(cap),
            None => declared,
        }
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_ten_slices() {
        let c = DatasetConfig::standard();
        assert_eq!(c.trace_len / c.slice.len(), 10);
    }

    #[test]
    fn with_trace_len_rescales_slices() {
        let c = DatasetConfig::standard().with_trace_len(500_000);
        assert_eq!(c.slice.len(), 50_000);
    }

    #[test]
    fn inputs_cap() {
        let c = DatasetConfig {
            max_inputs: Some(3),
            ..DatasetConfig::standard()
        };
        assert_eq!(c.inputs_for(10), 3);
        assert_eq!(c.inputs_for(2), 2);
        assert_eq!(DatasetConfig::standard().inputs_for(10), 10);
    }
}
