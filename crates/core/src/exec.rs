//! A reusable in-process fault-tolerant task executor.
//!
//! The `all` runner used to spawn one child *process* per study so a
//! crash or hang could be contained and `kill`ed. This module provides
//! the same containment in-process — cheaper, debuggable, and reusable
//! by a future `branch-lab serve` (ROADMAP item 2) — by composing four
//! mechanisms:
//!
//! * **Panic isolation.** Every attempt runs under `catch_unwind`; a
//!   panicking study costs exactly its own slot.
//! * **Cooperative cancellation + deadlines.** Each attempt gets a fresh
//!   [`CancelToken`], installed as the thread's cancel scope
//!   ([`bp_metrics::cancel`]) and handed to the task body. A per-task
//!   deadline arms both the token (observed lazily at every block
//!   checkpoint) and a watchdog thread that cancels the token the moment
//!   the deadline passes — so a study stuck *between* checkpoints is
//!   still marked cancelled, and a study inside the replay loop stops
//!   within one 16K-record block.
//! * **Bounded retries with deterministic jittered backoff.** Retry
//!   delays are `[0.5, 1.5) × base`, drawn from an FNV hash of
//!   (seed, task name, attempt) — see [`Backoff`] — so a fleet of
//!   retrying tasks decorrelates without losing reproducibility.
//! * **Checkpoint/resume at task granularity.** Completed task names
//!   (and their attempt counts) append to a checkpoint file; a resumed
//!   run skips them and reports byte-identical merged manifests.
//!
//! Fault sites: `{fault_prefix}.{name}` simulates a task failure (the
//! direct descendant of the old `all.child.<bin>` site) and
//! `exec.deadline.{name}` force-expires the attempt's deadline — both
//! drive the chaos CI leg through injected failures.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use bp_metrics::cancel::{self, CancelToken, Cancelled};
use bp_metrics::faultpoint;

use crate::parallel::panic_message;

/// Deterministic seeded jittered retry backoff.
///
/// The delay before retry `attempt` of task `label` is
/// `[0.5, 1.5) × base`, where the jitter fraction comes from an FNV-1a
/// hash of (seed, label, attempt). Same seed → same delays; different
/// tasks/attempts → decorrelated delays.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// Center of the jitter window.
    pub base: Duration,
    /// Jitter seed (normally `BRANCH_LAB_CHAOS_SEED`).
    pub seed: u64,
}

impl Backoff {
    /// A backoff with an explicit base delay and seed.
    #[must_use]
    pub fn new(base: Duration, seed: u64) -> Backoff {
        Backoff { base, seed }
    }

    /// Reads `BRANCH_LAB_RETRY_DELAY_MS` (default 500) and
    /// `BRANCH_LAB_CHAOS_SEED` (default 0).
    #[must_use]
    pub fn from_env() -> Backoff {
        let ms = std::env::var("BRANCH_LAB_RETRY_DELAY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(500);
        Backoff::new(Duration::from_millis(ms), faultpoint::env_seed())
    }

    /// The deterministic jittered delay before the given retry.
    #[must_use]
    pub fn jittered(&self, label: &str, attempt: u32) -> Duration {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in label.bytes() {
            mix(b);
        }
        for b in attempt.to_le_bytes() {
            mix(b);
        }
        // Jitter fraction in [0.5, 1.5): hash → [0, 1) + 0.5.
        #[allow(clippy::cast_precision_loss)] // 20-bit hash slice: exact in f64
        let frac = 0.5 + ((h >> 44) as f64) / ((1u64 << 20) as f64);
        self.base.mul_f64(frac)
    }
}

/// A task body: fallible, cancellable via the attempt's token.
type TaskBody<'a> = Box<dyn FnMut(&CancelToken) -> Result<(), String> + 'a>;

/// One unit of work: a name (checkpoint key, fault-site suffix, log
/// label) and a fallible body that receives its attempt's cancel token.
pub struct Task<'a> {
    /// Checkpoint key / fault-site suffix / log label.
    pub name: String,
    run: TaskBody<'a>,
}

impl<'a> Task<'a> {
    /// Wraps `run` under `name`.
    pub fn new(
        name: impl Into<String>,
        run: impl FnMut(&CancelToken) -> Result<(), String> + 'a,
    ) -> Task<'a> {
        Task { name: name.into(), run: Box::new(run) }
    }
}

/// Executor policy.
pub struct ExecOptions {
    /// Extra attempts per task after the first.
    pub retries: u32,
    /// Retry-delay policy.
    pub backoff: Backoff,
    /// Per-attempt deadline; `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Keep running later tasks after a failure (`false`: remaining
    /// tasks report [`Outcome::NotRun`]).
    pub keep_going: bool,
    /// Checkpoint file recording completed tasks (`<name> <attempts>`
    /// per line). `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Skip tasks already recorded in the checkpoint file. When false,
    /// a pre-existing checkpoint file is deleted at startup.
    pub resume: bool,
    /// Fault-site prefix: each attempt first consults the
    /// `{fault_prefix}.{name}` fault site and fails with
    /// `injected fault: child failure` when armed. `None` disables the
    /// site.
    pub fault_prefix: Option<String>,
    /// Log prefix (e.g. `"all"`). `Some` enables the per-task stdout
    /// banners and stderr retry/failure messages; `None` runs silently.
    pub log_prefix: Option<String>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            retries: 0,
            backoff: Backoff::new(Duration::ZERO, 0),
            deadline: None,
            keep_going: false,
            checkpoint: None,
            resume: false,
            fault_prefix: None,
            log_prefix: None,
        }
    }
}

/// How one task ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Succeeded this run.
    Ok,
    /// Skipped: the checkpoint file says a previous run completed it.
    Resumed,
    /// All attempts failed; the payload is the final failure detail
    /// (panic message, error string, or `cancelled: <reason>`).
    Failed(String),
    /// Never started because an earlier task failed without
    /// `keep_going`.
    NotRun,
}

impl Outcome {
    /// Human-readable status for the per-task summary table.
    #[must_use]
    pub fn status(&self) -> String {
        match self {
            Outcome::Ok => "ok".to_string(),
            Outcome::Resumed => "ok (resumed)".to_string(),
            Outcome::Failed(detail) => format!("failed: {detail}"),
            Outcome::NotRun => "not-run".to_string(),
        }
    }

    /// Status for the merged-manifest `children` map. A resumed task
    /// reports plain `"ok"` here, so a clean run and an
    /// interrupted-then-resumed run merge to byte-identical documents.
    #[must_use]
    pub fn merged_status(&self) -> String {
        match self {
            Outcome::Resumed => "ok".to_string(),
            other => other.status(),
        }
    }

    /// Whether the task's work is done (ran now or in a previous run).
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Ok | Outcome::Resumed)
    }
}

/// One task's result: outcome, attempts consumed, wall time.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// The task's name.
    pub name: String,
    /// How it ended.
    pub outcome: Outcome,
    /// Attempts consumed (resumed tasks report the attempts their
    /// original run recorded in the checkpoint).
    pub attempts: u32,
    /// Wall time spent on this task in this run.
    pub seconds: f64,
}

/// Loads a checkpoint file: `<name> <attempts>` per line (bare `<name>`
/// lines from older checkpoints count as one attempt).
fn load_checkpoint(path: &std::path::Path) -> HashMap<String, u32> {
    let Ok(raw) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    raw.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            let name = parts.next()?;
            let attempts = parts.next().and_then(|a| a.parse().ok()).unwrap_or(1);
            Some((name.to_string(), attempts))
        })
        .collect()
}

fn record_checkpoint(path: &std::path::Path, name: &str, attempts: u32) {
    use std::io::Write as _;
    let opened = std::fs::OpenOptions::new().create(true).append(true).open(path);
    let result = opened.and_then(|mut f| writeln!(f, "{name} {attempts}"));
    if let Err(err) = result {
        eprintln!("branch-lab: failed to update checkpoint {}: {err}", path.display());
    }
}

/// A watchdog that cancels `token` when `after` elapses, unless
/// [`Watchdog::disarm`] runs first. Complements the token's lazy
/// deadline: a task stuck *between* checkpoints (or one that never polls)
/// is still marked cancelled the moment its deadline passes.
struct Watchdog {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn arm(token: &CancelToken, after: Duration) -> Watchdog {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let token = token.clone();
        let handle = std::thread::spawn(move || {
            let (done, cv) = &*thread_state;
            let expires = Instant::now() + after;
            let mut finished = done.lock().unwrap_or_else(PoisonError::into_inner);
            while !*finished {
                let now = Instant::now();
                if now >= expires {
                    token.cancel(&format!(
                        "deadline expired after {:.1}s",
                        after.as_secs_f64()
                    ));
                    return;
                }
                finished = cv
                    .wait_timeout(finished, expires - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        });
        Watchdog { state, handle: Some(handle) }
    }

    fn disarm(mut self) {
        let (done, cv) = &*self.state;
        *done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Runs `tasks` in order under the executor policy, returning one
/// [`TaskReport`] per task (same order).
///
/// Each attempt: fire the `{fault_prefix}.{name}` fault site if armed;
/// build a fresh [`CancelToken`] (deadline-armed, watchdog-guarded, and
/// force-expired when the `exec.deadline.{name}` site fires); install it
/// as the thread's cancel scope; run the body under `catch_unwind`; and
/// classify the result — an `Ok` body under a cancelled token still
/// counts as a cancelled attempt, so deadlines work even for bodies with
/// no cancellation checkpoints. Cancelled and failed attempts both
/// consume retries with jittered backoff between attempts.
pub fn run(mut tasks: Vec<Task<'_>>, opts: &ExecOptions) -> Vec<TaskReport> {
    let done = match (&opts.checkpoint, opts.resume) {
        (Some(path), true) => load_checkpoint(path),
        (Some(path), false) => {
            let _ = std::fs::remove_file(path);
            HashMap::new()
        }
        (None, _) => HashMap::new(),
    };
    bp_metrics::Counter::get("exec.tasks").add(tasks.len() as u64);

    let mut reports: Vec<TaskReport> = Vec::with_capacity(tasks.len());
    let mut aborted = false;
    for task in &mut tasks {
        let name = task.name.clone();
        if aborted {
            reports.push(TaskReport {
                name,
                outcome: Outcome::NotRun,
                attempts: 0,
                seconds: 0.0,
            });
            continue;
        }
        if let Some(&attempts) = done.get(&name) {
            if opts.log_prefix.is_some() {
                println!("\n########## {name} ########## (skipped: already succeeded)");
            }
            bp_metrics::Counter::get("exec.resumed").incr();
            reports.push(TaskReport {
                name,
                outcome: Outcome::Resumed,
                attempts,
                seconds: 0.0,
            });
            continue;
        }
        if opts.log_prefix.is_some() {
            println!("\n########## {name} ##########");
        }

        let started = Instant::now();
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            bp_metrics::Counter::get("exec.attempts").incr();
            let detail = run_attempt(task, opts);
            let Some(detail) = detail else {
                break Outcome::Ok;
            };
            if detail.starts_with("cancelled") {
                bp_metrics::Counter::get("exec.cancelled").incr();
            }
            if attempts > opts.retries {
                if let Some(prefix) = &opts.log_prefix {
                    eprintln!(
                        "{prefix}: {name} ultimately failed after {attempts} attempts: {detail}"
                    );
                }
                bp_metrics::Counter::get("exec.failures").incr();
                break Outcome::Failed(detail);
            }
            bp_metrics::Counter::get("exec.retries").incr();
            let delay = opts.backoff.jittered(&name, attempts);
            if let Some(prefix) = &opts.log_prefix {
                eprintln!(
                    "{prefix}: {name} failed ({detail}); retrying in {:.1}s",
                    delay.as_secs_f64()
                );
            }
            std::thread::sleep(delay);
        };

        if outcome == Outcome::Ok {
            if let Some(path) = &opts.checkpoint {
                record_checkpoint(path, &name, attempts);
            }
        } else if !opts.keep_going {
            aborted = true;
        }
        reports.push(TaskReport {
            name,
            outcome,
            attempts,
            seconds: started.elapsed().as_secs_f64(),
        });
    }
    reports
}

/// One attempt of one task: `None` on success, `Some(detail)` on
/// failure/cancellation.
fn run_attempt(task: &mut Task<'_>, opts: &ExecOptions) -> Option<String> {
    if let Some(prefix) = &opts.fault_prefix {
        if faultpoint::should_fail(&format!("{prefix}.{}", task.name)) {
            return Some("injected fault: child failure".to_string());
        }
    }
    let token = CancelToken::new();
    let mut watchdog = None;
    if faultpoint::should_fail(&format!("exec.deadline.{}", task.name)) {
        token.cancel("injected fault: deadline expired");
    } else if let Some(deadline) = opts.deadline {
        token.set_deadline_in(deadline);
        watchdog = Some(Watchdog::arm(&token, deadline));
    }
    let result = {
        let _scope = cancel::set_scope(token.clone());
        catch_unwind(AssertUnwindSafe(|| (task.run)(&token)))
    };
    if let Some(watchdog) = watchdog {
        watchdog.disarm();
    }
    match result {
        // A body that returned cleanly under a cancelled token still
        // counts as cancelled: the attempt ran past its deadline (or the
        // injected expiry) and its output must not be trusted as "on
        // time".
        Ok(Ok(())) if token.is_cancelled() => Some(format!("cancelled: {}", token.reason())),
        Ok(Ok(())) => None,
        Ok(Err(message)) => Some(message),
        Err(payload) => match payload.downcast_ref::<Cancelled>() {
            Some(c) => Some(format!("cancelled: {}", c.reason)),
            None => Some(format!("panicked: {}", panic_message(payload.as_ref()))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn opts() -> ExecOptions {
        ExecOptions {
            backoff: Backoff::new(Duration::ZERO, 0),
            ..ExecOptions::default()
        }
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let b = Backoff::new(Duration::from_millis(100), 42);
        let mut delays = Vec::new();
        for attempt in 1..=8 {
            let d = b.jittered("fig3", attempt);
            assert_eq!(d, b.jittered("fig3", attempt), "same inputs, same delay");
            assert!(d >= Duration::from_millis(50) && d < Duration::from_millis(150), "{d:?}");
            delays.push(d);
        }
        delays.dedup();
        assert!(delays.len() > 1, "jitter must actually vary across attempts");
        assert_ne!(
            b.jittered("fig3", 1),
            Backoff::new(Duration::from_millis(100), 43).jittered("fig3", 1),
            "seed changes the schedule"
        );
    }

    #[test]
    fn tasks_run_in_order_and_failures_gate_later_tasks() {
        let tasks = vec![
            Task::new("a", |_: &CancelToken| Ok(())),
            Task::new("b", |_: &CancelToken| Err("boom".to_string())),
            Task::new("c", |_: &CancelToken| Ok(())),
        ];
        let reports = run(tasks, &opts());
        assert_eq!(reports[0].outcome, Outcome::Ok);
        assert_eq!(reports[1].outcome, Outcome::Failed("boom".to_string()));
        assert_eq!(reports[1].outcome.status(), "failed: boom");
        assert_eq!(reports[2].outcome, Outcome::NotRun);
        assert_eq!(reports[2].attempts, 0);

        let tasks = vec![
            Task::new("b", |_: &CancelToken| Err("boom".to_string())),
            Task::new("c", |_: &CancelToken| Ok(())),
        ];
        let keep_going = ExecOptions { keep_going: true, ..opts() };
        let reports = run(tasks, &keep_going);
        assert_eq!(reports[1].outcome, Outcome::Ok, "keep_going runs later tasks");
    }

    #[test]
    fn retries_are_bounded_and_recover_transients() {
        let calls = AtomicU32::new(0);
        let tasks = vec![Task::new("flaky", |_: &CancelToken| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err("transient".to_string())
            } else {
                Ok(())
            }
        })];
        let retrying = ExecOptions { retries: 2, ..opts() };
        let reports = run(tasks, &retrying);
        assert_eq!(reports[0].outcome, Outcome::Ok);
        assert_eq!(reports[0].attempts, 3);

        let tasks = vec![Task::new("doomed", |_: &CancelToken| Err("always".to_string()))];
        let reports = run(tasks, &retrying);
        assert_eq!(reports[0].outcome, Outcome::Failed("always".to_string()));
        assert_eq!(reports[0].attempts, 3);
    }

    #[test]
    fn panics_are_contained_and_classified() {
        let tasks = vec![
            Task::new("bang", |_: &CancelToken| panic!("kaboom")),
            Task::new("after", |_: &CancelToken| Ok(())),
        ];
        let keep_going = ExecOptions { keep_going: true, ..opts() };
        let reports = run(tasks, &keep_going);
        match &reports[0].outcome {
            Outcome::Failed(d) => assert!(d.contains("panicked: kaboom"), "{d}"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(reports[1].outcome, Outcome::Ok);
    }

    #[test]
    fn deadline_cancels_a_stuck_task_via_the_watchdog() {
        let tasks = vec![Task::new("stuck", |token: &CancelToken| {
            // Simulates a body between checkpoints: polls the token like
            // the block loop would, without ever finishing on its own.
            let start = Instant::now();
            while !token.is_cancelled() {
                assert!(start.elapsed() < Duration::from_secs(10), "watchdog never fired");
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(format!("cancelled: {}", token.reason()))
        })];
        let deadline = ExecOptions {
            deadline: Some(Duration::from_millis(30)),
            ..opts()
        };
        let reports = run(tasks, &deadline);
        match &reports[0].outcome {
            Outcome::Failed(d) => assert!(d.contains("deadline expired"), "{d}"),
            other => panic!("expected deadline failure, got {other:?}"),
        }
    }

    #[test]
    fn clean_return_under_a_cancelled_token_is_still_a_failure() {
        let tasks = vec![Task::new("ignores-cancel", |token: &CancelToken| {
            token.cancel("test cancel");
            Ok(()) // body ignores the token entirely
        })];
        let reports = run(tasks, &opts());
        match &reports[0].outcome {
            Outcome::Failed(d) => assert!(d.contains("cancelled: test cancel"), "{d}"),
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn scope_is_installed_for_the_body_and_checkpoints_unwind() {
        let tasks = vec![Task::new("scoped", |token: &CancelToken| {
            assert!(cancel::active(), "executor must install the cancel scope");
            token.cancel("stop now");
            cancel::checkpoint("exec.test"); // unwinds with Cancelled
            unreachable!("checkpoint must have unwound");
        })];
        let reports = run(tasks, &opts());
        match &reports[0].outcome {
            Outcome::Failed(d) => {
                assert!(d.contains("cancelled: stop now"), "{d}");
                assert!(d.contains("exec.test"), "{d}");
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(!cancel::active(), "scope must be restored after the task");
    }

    #[test]
    fn checkpoint_resume_skips_completed_tasks_and_keeps_attempts() {
        let dir = std::env::temp_dir().join(format!("bp-exec-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.checkpoint");
        let _ = std::fs::remove_file(&path);

        let ran = AtomicU32::new(0);
        let flaky_calls = AtomicU32::new(0);
        let make_tasks = |fail_gamma: bool| {
            vec![
                Task::new("alpha", |_: &CancelToken| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }),
                Task::new("flaky", |_: &CancelToken| {
                    if flaky_calls.fetch_add(1, Ordering::Relaxed) == 0 {
                        Err("transient".to_string())
                    } else {
                        Ok(())
                    }
                }),
                Task::new("gamma", move |_: &CancelToken| {
                    if fail_gamma {
                        Err("down".to_string())
                    } else {
                        Ok(())
                    }
                }),
            ]
        };
        let base = ExecOptions {
            retries: 1,
            keep_going: true,
            checkpoint: Some(path.clone()),
            ..opts()
        };
        let first = run(make_tasks(true), &base);
        assert_eq!(first[0].outcome, Outcome::Ok);
        assert_eq!(first[1].outcome, Outcome::Ok);
        assert_eq!(first[1].attempts, 2, "transient consumed one retry");
        assert!(matches!(first[2].outcome, Outcome::Failed(_)));

        let resume = ExecOptions {
            resume: true,
            retries: 1,
            keep_going: true,
            checkpoint: Some(path.clone()),
            ..opts()
        };
        let second = run(make_tasks(false), &resume);
        assert_eq!(second[0].outcome, Outcome::Resumed);
        assert_eq!(second[1].outcome, Outcome::Resumed);
        assert_eq!(second[1].attempts, 2, "resumed attempts come from the checkpoint");
        assert_eq!(second[1].outcome.status(), "ok (resumed)");
        assert_eq!(second[1].outcome.merged_status(), "ok");
        assert_eq!(second[2].outcome, Outcome::Ok, "failed task re-runs on resume");
        assert_eq!(ran.load(Ordering::Relaxed), 1, "alpha must not re-run");

        // A *fresh* (non-resume) run deletes the checkpoint and re-runs all.
        let third = run(make_tasks(false), &base);
        assert!(third.iter().all(|r| r.outcome == Outcome::Ok));
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_checkpoint_lines_without_attempts_still_resume() {
        let dir = std::env::temp_dir().join(format!("bp-exec-ckpt-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.checkpoint");
        std::fs::write(&path, "alpha\nbeta 3\n").unwrap();
        let tasks = vec![
            Task::new("alpha", |_: &CancelToken| panic!("must not run")),
            Task::new("beta", |_: &CancelToken| panic!("must not run")),
        ];
        let options = ExecOptions {
            resume: true,
            checkpoint: Some(path),
            ..opts()
        };
        let reports = run(tasks, &options);
        assert_eq!(reports[0].outcome, Outcome::Resumed);
        assert_eq!(reports[0].attempts, 1, "bare v1 lines count as one attempt");
        assert_eq!(reports[1].attempts, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
