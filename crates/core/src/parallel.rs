//! A small deterministic parallel engine for experiment fan-out.
//!
//! The experiment studies are embarrassingly parallel across workloads (and
//! across storage points within a workload), but their outputs must stay
//! byte-identical to the serial implementation: CSVs are regression
//! artifacts. [`Engine::map`] therefore computes per-item results on a
//! scoped thread pool and returns them **in input order**; callers do any
//! order-sensitive reduction (e.g. geometric-mean accumulation) serially
//! afterwards, so floating-point results match the serial path exactly.
//!
//! Long sweeps additionally need *partial* failure to stay partial: one
//! panicking storage point three hours into a study must not take the other
//! results with it. [`Engine::try_map`] runs every task under
//! `catch_unwind`, optionally retries it, and returns per-task
//! `Result<R, TaskError>` in input order; [`Engine::map`] is a thin wrapper
//! that re-raises the first failure.
//!
//! The engine uses only `std::thread::scope` — no dependencies — and honors
//! a `BRANCH_LAB_THREADS` override (set it to `1` to force the serial
//! path). Tasks pass the `engine.task` fault site (see
//! [`bp_metrics::faultpoint`]), which the fault-injection tests use to
//! panic an arbitrary task on demand.

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of worker threads the process should use: the
/// `BRANCH_LAB_THREADS` env var when set to a positive integer, otherwise
/// the machine's available parallelism. An unparsable override is a
/// misconfiguration, not a request for a serial run: it logs one warning
/// to stderr and falls back to the machine width.
#[must_use]
pub fn thread_count() -> usize {
    let available =
        || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match std::env::var("BRANCH_LAB_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "branch-lab: BRANCH_LAB_THREADS={v:?} is not a positive integer; \
                         using available parallelism"
                    );
                });
                available()
            }
        },
        Err(_) => available(),
    }
}

/// One task's failure inside [`Engine::try_map`]: which task, what it was
/// working on, and what the panic said.
#[derive(Clone, Debug)]
pub struct TaskError {
    /// Index of the failed item in the input slice.
    pub index: usize,
    /// Human-readable item label (defaults to `#<index>`).
    pub label: String,
    /// Rendered panic payload (the `&str`/`String` message when there was
    /// one, the cancellation reason for cancelled tasks, a placeholder
    /// hint otherwise).
    pub message: String,
    /// Total attempts made, retries included.
    pub attempts: u32,
    /// True when the task stopped cooperatively (the scope
    /// [`bp_metrics::cancel`] token was cancelled or its deadline expired)
    /// rather than genuinely panicking. Cancelled tasks are never retried.
    pub cancelled: bool,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} ({}) {} after {} attempt{}: {}",
            self.index,
            self.label,
            if self.cancelled { "cancelled" } else { "panicked" },
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl Error for TaskError {}

/// Renders a panic payload the way the default hook would.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A fixed-width parallel mapper.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine sized by [`thread_count`] (env override or machine width).
    #[must_use]
    pub fn from_env() -> Self {
        Engine { threads: thread_count() }
    }

    /// An engine with an explicit thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Engine { threads: threads.max(1) }
    }

    /// The configured thread count.
    #[must_use]
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on up to `threads` scoped workers, returning
    /// results in input order. `f` receives `(index, item)`. With one
    /// thread (or one item) this is a plain serial loop.
    ///
    /// Implemented on top of [`Engine::try_map`]: sibling tasks always run
    /// to completion, then the first failure (in input order) is
    /// re-raised.
    ///
    /// # Panics
    ///
    /// Panics with the failing task's [`TaskError`] rendering when `f`
    /// panicked for any item.
    pub fn map<T, R, F>(self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map(items, f)
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|e| {
                    if e.cancelled {
                        // Preserve the typed payload so outer catchers
                        // (the exec watchdog, nested engines) still
                        // classify this as an orderly stop.
                        std::panic::panic_any(bp_metrics::cancel::Cancelled {
                            reason: e.message,
                        });
                    }
                    panic!("engine task failed: {e}")
                })
            })
            .collect()
    }

    /// Like [`Engine::map`], but panic-isolating: each task runs under
    /// `catch_unwind`, and the output carries one `Result` per input item,
    /// in input order. A panicking task costs exactly its own slot —
    /// sibling results are preserved bit-for-bit.
    pub fn try_map<T, R, F>(self, items: &[T], f: F) -> Vec<Result<R, TaskError>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map_with(items, 0, |i, _| format!("#{i}"), f)
    }

    /// The fully-general fault-isolating mapper: up to `retries` extra
    /// attempts per task, and a `label` callback that names items in
    /// [`TaskError::label`] (e.g. the workload name) for diagnostics.
    ///
    /// Retrying assumes `f` is effectively idempotent per item — true for
    /// the pure trace-replay tasks the engine runs. Transient panics
    /// (injected faults, resource blips) succeed on a later attempt;
    /// deterministic panics exhaust their attempts and report the final
    /// payload.
    pub fn try_map_with<T, R, F, L>(
        self,
        items: &[T],
        retries: u32,
        label: L,
        f: F,
    ) -> Vec<Result<R, TaskError>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        L: Fn(usize, &T) -> String + Sync,
    {
        // Observability: fan-out shape and cumulative wall time. All
        // no-ops (one relaxed load each) unless BRANCH_LAB_METRICS is on.
        bp_metrics::Counter::get("engine.map_calls").incr();
        bp_metrics::Counter::get("engine.tasks").add(items.len() as u64);
        let _map_timer = bp_metrics::stage("engine.map");
        let run = |i: usize, item: &T| {
            bp_metrics::time("engine.task", || {
                bp_metrics::cancel::checkpoint("engine.task");
                bp_metrics::faultpoint::panic_point("engine.task");
                f(i, item)
            })
        };
        let attempt = |i: usize, item: &T| -> Result<R, TaskError> {
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                match catch_unwind(AssertUnwindSafe(|| run(i, item))) {
                    Ok(r) => return Ok(r),
                    Err(payload) => {
                        // A cancelled scope is an orderly stop, not a task
                        // failure: report it without retrying (the token is
                        // sticky, so every retry would die at the first
                        // checkpoint anyway).
                        if let Some(c) =
                            payload.downcast_ref::<bp_metrics::cancel::Cancelled>()
                        {
                            bp_metrics::Counter::get("engine.task_cancelled").incr();
                            return Err(TaskError {
                                index: i,
                                label: label(i, item),
                                message: c.reason.clone(),
                                attempts,
                                cancelled: true,
                            });
                        }
                        bp_metrics::Counter::get("engine.task_panics").incr();
                        if attempts > retries {
                            return Err(TaskError {
                                index: i,
                                label: label(i, item),
                                message: panic_message(payload.as_ref()),
                                attempts,
                                cancelled: false,
                            });
                        }
                        bp_metrics::Counter::get("engine.task_retries").incr();
                    }
                }
            }
        };

        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| attempt(i, t)).collect();
        }
        // Work-stealing by atomic index; results carry their index so the
        // output order is independent of scheduling. Lock poisoning is
        // recovered, not propagated: with per-task catch_unwind a worker
        // cannot die mid-extend in practice, but even if one did, the
        // other workers' results must still be collected.
        let next = AtomicUsize::new(0);
        let indexed: Mutex<Vec<(usize, Result<R, TaskError>)>> =
            Mutex::new(Vec::with_capacity(items.len()));
        // Cancellation scopes are thread-local: capture the caller's token
        // (if any) and re-install it in every worker, so cancelling the
        // task stops all of its parallel shards.
        let scope_token = bp_metrics::cancel::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _cancel_scope = scope_token.clone().map(bp_metrics::cancel::set_scope);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, attempt(i, item)));
                    }
                    indexed.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
                });
            }
        });
        let mut v = indexed.into_inner().unwrap_or_else(PoisonError::into_inner);
        v.sort_unstable_by_key(|&(i, _)| i);
        v.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7, 16] {
            let out = Engine::with_threads(threads).map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let e = Engine::with_threads(8);
        assert_eq!(e.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(e.map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &x: &u64| (x as f64).sqrt().ln_1p();
        let serial = Engine::with_threads(1).map(&items, f);
        let parallel = Engine::with_threads(6).map(&items, f);
        assert_eq!(serial, parallel); // bitwise: same ops per item
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Engine::with_threads(0).threads(), 1);
    }

    #[test]
    fn try_map_isolates_panics_and_keeps_siblings() {
        let items: Vec<u32> = (0..24).collect();
        for threads in [1, 3, 8] {
            let out = Engine::with_threads(threads).try_map(&items, |_, &x| {
                assert!(x != 7 && x != 19, "boom at {x}");
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => {
                        assert!(i != 7 && i != 19);
                        assert_eq!(*v, (i as u32) * 2);
                    }
                    Err(e) => {
                        assert!(i == 7 || i == 19);
                        assert_eq!(e.index, i);
                        assert_eq!(e.label, format!("#{i}"));
                        assert_eq!(e.attempts, 1);
                        assert!(e.message.contains("boom"), "{}", e.message);
                    }
                }
            }
        }
    }

    #[test]
    fn try_map_with_retries_transient_failures() {
        use std::sync::atomic::AtomicU32;
        let items: Vec<u32> = (0..8).collect();
        let tries: Vec<AtomicU32> = items.iter().map(|_| AtomicU32::new(0)).collect();
        let out = Engine::with_threads(4).try_map_with(
            &items,
            2,
            |i, _| format!("item-{i}"),
            |i, &x| {
                // Item 5 fails on its first two attempts, then succeeds.
                if i == 5 && tries[i].fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("transient");
                }
                x + 1
            },
        );
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(tries[5].load(Ordering::Relaxed), 3);
    }

    #[test]
    fn try_map_with_reports_exhausted_retries() {
        let items = ["alpha", "beta"];
        let out = Engine::with_threads(2).try_map_with(
            &items,
            1,
            |_, item: &&str| (*item).to_string(),
            |_, item| {
                assert_ne!(*item, "beta", "always fails");
                item.len()
            },
        );
        assert_eq!(*out[0].as_ref().unwrap(), 5);
        let err = out[1].as_ref().unwrap_err();
        assert_eq!(err.label, "beta");
        assert_eq!(err.attempts, 2);
        assert!(err.to_string().contains("after 2 attempts"), "{err}");
    }

    #[test]
    fn cancelled_tasks_are_not_retried() {
        use bp_metrics::cancel;
        let token = cancel::CancelToken::new();
        let _scope = cancel::set_scope(token.clone());
        token.cancel("test stop");
        let items = [1u32, 2, 3];
        // Multi-threaded: workers must inherit the caller's scope.
        let out = Engine::with_threads(3).try_map_with(
            &items,
            5,
            |i, _| format!("item-{i}"),
            |_, &x| x,
        );
        for r in &out {
            let err = r.as_ref().unwrap_err();
            assert!(err.cancelled);
            assert_eq!(err.attempts, 1, "cancellation must not burn retries");
            assert!(err.message.contains("test stop"), "{}", err.message);
            assert!(err.to_string().contains("cancelled"), "{err}");
        }
    }

    #[test]
    #[should_panic(expected = "engine task failed")]
    fn map_reraises_task_panics() {
        let items: Vec<u32> = (0..4).collect();
        let _ = Engine::with_threads(2).map(&items, |_, &x| {
            assert_ne!(x, 2, "die");
            x
        });
    }
}
