//! A small deterministic parallel engine for experiment fan-out.
//!
//! The experiment studies are embarrassingly parallel across workloads (and
//! across storage points within a workload), but their outputs must stay
//! byte-identical to the serial implementation: CSVs are regression
//! artifacts. [`Engine::map`] therefore computes per-item results on a
//! scoped thread pool and returns them **in input order**; callers do any
//! order-sensitive reduction (e.g. geometric-mean accumulation) serially
//! afterwards, so floating-point results match the serial path exactly.
//!
//! The engine uses only `std::thread::scope` — no dependencies — and honors
//! a `BRANCH_LAB_THREADS` override (set it to `1` to force the serial
//! path).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the process should use: the
/// `BRANCH_LAB_THREADS` env var when set to a positive integer, otherwise
/// the machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    match std::env::var("BRANCH_LAB_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// A fixed-width parallel mapper.
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine sized by [`thread_count`] (env override or machine width).
    #[must_use]
    pub fn from_env() -> Self {
        Engine { threads: thread_count() }
    }

    /// An engine with an explicit thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Engine { threads: threads.max(1) }
    }

    /// The configured thread count.
    #[must_use]
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on up to `threads` scoped workers, returning
    /// results in input order. `f` receives `(index, item)`. With one
    /// thread (or one item) this is a plain serial loop.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` (via `std::thread::scope` join).
    pub fn map<T, R, F>(self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Observability: fan-out shape and cumulative wall time. All
        // no-ops (one relaxed load each) unless BRANCH_LAB_METRICS is on.
        bp_metrics::Counter::get("engine.map_calls").incr();
        bp_metrics::Counter::get("engine.tasks").add(items.len() as u64);
        let _map_timer = bp_metrics::stage("engine.map");
        let run = |i: usize, item: &T| bp_metrics::time("engine.task", || f(i, item));

        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| run(i, t)).collect();
        }
        // Work-stealing by atomic index; results carry their index so the
        // output order is independent of scheduling.
        let next = AtomicUsize::new(0);
        let indexed: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, run(i, item)));
                    }
                    indexed.lock().expect("engine results poisoned").extend(local);
                });
            }
        });
        let mut v = indexed.into_inner().expect("engine results poisoned");
        v.sort_unstable_by_key(|&(i, _)| i);
        v.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7, 16] {
            let out = Engine::with_threads(threads).map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let e = Engine::with_threads(8);
        assert_eq!(e.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(e.map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..37).collect();
        let f = |_: usize, &x: &u64| (x as f64).sqrt().ln_1p();
        let serial = Engine::with_threads(1).map(&items, f);
        let parallel = Engine::with_threads(6).map(&items, f);
        assert_eq!(serial, parallel); // bitwise: same ops per item
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Engine::with_threads(0).threads(), 1);
    }
}
