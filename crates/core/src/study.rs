//! The study registry: every paper table, figure, ablation and probe as
//! a named, runnable unit.
//!
//! Each experiment (Table I, Fig. 7, the ablations, the calibration
//! probe, …) implements [`Study`]: a static [`StudyInfo`] describing it
//! plus a `run` that computes a [`Report`]. A [`StudyRegistry`] holds
//! them in a fixed order and is the single source of truth the
//! `branch-lab` CLI dispatches from — `branch-lab list` prints it,
//! `branch-lab run <name>` looks it up, and the `all` runner derives its
//! child list from it instead of hand-maintaining one.
//!
//! The registry lives in `bp-core` so any layer can consume it; the
//! studies themselves are registered by `bp-experiments`, which owns the
//! figure/table computations.

use crate::config::{DatasetConfig, SamplingConfig};
use crate::report::Report;

/// How a study is invoked and accounted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StudyKind {
    /// A paper artifact: runs on the standard dataset options
    /// (`--quick`, `--len`, `--csv`), emits a metrics manifest with the
    /// dataset-shape info block, and is included in `all` sweeps.
    Report,
    /// Same invocation surface as [`StudyKind::Report`] but excluded
    /// from `all` sweeps (supplementary context such as the predictor
    /// survey).
    Standalone,
    /// A diagnostic probe (calibration, IPC debugging): takes free-form
    /// positional arguments, emits a bare metrics manifest, and is
    /// excluded from `all`.
    Probe,
}

/// Static description of a study.
#[derive(Clone, Copy, Debug)]
pub struct StudyInfo {
    /// Registry key and binary name, e.g. `"fig7"`.
    pub name: &'static str,
    /// One-line description shown by `branch-lab list`.
    pub title: &'static str,
    /// Invocation class.
    pub kind: StudyKind,
}

/// Everything a study may consult while running.
pub struct StudyCtx {
    /// Dataset shape (trace length, slicing, input cap).
    pub dataset: DatasetConfig,
    /// Positional arguments, used by [`StudyKind::Probe`] studies only.
    pub args: Vec<String>,
    /// Sampled-replay configuration; disabled by default. Studies that
    /// support sampling resolve it against [`StudyCtx::dataset`].
    pub sampling: SamplingConfig,
    /// Cancellation handle for this run. Defaults to an inert token; the
    /// fault-tolerant executor (`bp_core::exec`) arms it with deadlines
    /// and installs it as the cancel scope, so long studies stop at the
    /// next block checkpoint when cancelled.
    pub cancel: bp_metrics::cancel::CancelToken,
}

impl StudyCtx {
    /// A context with no positional arguments and an inert cancel token.
    #[must_use]
    pub fn new(dataset: DatasetConfig) -> Self {
        StudyCtx {
            dataset,
            args: Vec::new(),
            sampling: SamplingConfig::disabled(),
            cancel: bp_metrics::cancel::CancelToken::new(),
        }
    }

    /// A context wired to an executor-owned cancellation token.
    #[must_use]
    pub fn with_cancel(dataset: DatasetConfig, cancel: bp_metrics::cancel::CancelToken) -> Self {
        StudyCtx {
            dataset,
            args: Vec::new(),
            sampling: SamplingConfig::disabled(),
            cancel,
        }
    }
}

/// A named, runnable experiment.
pub trait Study {
    /// Static metadata (name, title, kind).
    fn info(&self) -> StudyInfo;
    /// Runs the full computation and returns the printable output.
    fn run(&self, ctx: &StudyCtx) -> Report;
}

/// A [`Study`] built from a closure — the common case.
pub struct FnStudy {
    info: StudyInfo,
    run: Box<dyn Fn(&StudyCtx) -> Report + Send + Sync>,
}

impl FnStudy {
    /// Wraps `run` with the given metadata.
    pub fn new(
        info: StudyInfo,
        run: impl Fn(&StudyCtx) -> Report + Send + Sync + 'static,
    ) -> Self {
        FnStudy {
            info,
            run: Box::new(run),
        }
    }
}

impl Study for FnStudy {
    fn info(&self) -> StudyInfo {
        self.info
    }

    fn run(&self, ctx: &StudyCtx) -> Report {
        (self.run)(ctx)
    }
}

/// An ordered collection of uniquely named studies.
///
/// Registration order is presentation order: `branch-lab list` prints it
/// and the `all` runner executes [`StudyKind::Report`] studies in it.
#[derive(Default)]
pub struct StudyRegistry {
    studies: Vec<Box<dyn Study + Send + Sync>>,
}

impl StudyRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        StudyRegistry::default()
    }

    /// Adds a study at the end of the presentation order.
    ///
    /// # Panics
    ///
    /// Panics if a study with the same name is already registered.
    pub fn register(&mut self, study: Box<dyn Study + Send + Sync>) {
        let name = study.info().name;
        assert!(
            self.get(name).is_none(),
            "duplicate study registration: {name}"
        );
        self.studies.push(study);
    }

    /// Looks a study up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&(dyn Study + Send + Sync)> {
        self.studies
            .iter()
            .find(|s| s.info().name == name)
            .map(Box::as_ref)
    }

    /// All studies, in registration order.
    pub fn studies(&self) -> impl Iterator<Item = &(dyn Study + Send + Sync)> {
        self.studies.iter().map(Box::as_ref)
    }

    /// Names of all studies, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.studies.iter().map(|s| s.info().name).collect()
    }

    /// Names of the [`StudyKind::Report`] studies, in registration order
    /// — the `all` runner's child list.
    #[must_use]
    pub fn report_names(&self) -> Vec<&'static str> {
        self.studies
            .iter()
            .filter(|s| s.info().kind == StudyKind::Report)
            .map(|s| s.info().name)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub(name: &'static str, kind: StudyKind) -> Box<FnStudy> {
        Box::new(FnStudy::new(
            StudyInfo {
                name,
                title: "stub",
                kind,
            },
            |_| {
                let mut r = Report::new();
                r.note("ran");
                r
            },
        ))
    }

    #[test]
    fn registry_preserves_order_and_filters_kinds() {
        let mut reg = StudyRegistry::new();
        reg.register(stub("b", StudyKind::Report));
        reg.register(stub("a", StudyKind::Probe));
        reg.register(stub("s", StudyKind::Standalone));
        reg.register(stub("c", StudyKind::Report));
        assert_eq!(reg.names(), vec!["b", "a", "s", "c"]);
        assert_eq!(reg.report_names(), vec!["b", "c"]);
        let ctx = StudyCtx::new(DatasetConfig::quick());
        assert_eq!(reg.get("a").unwrap().run(&ctx).render(), "ran\n");
        assert!(reg.get("zzz").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate study")]
    fn duplicate_names_panic() {
        let mut reg = StudyRegistry::new();
        reg.register(stub("x", StudyKind::Report));
        reg.register(stub("x", StudyKind::Probe));
    }
}
