//! Content-addressed result cache for `branch-lab serve`.
//!
//! Every study is a pure, deterministic function of (study name, dataset
//! shape, study config, trace digest) — see the study registry — so its
//! rendered report and metrics manifest can be cached under a content
//! hash of exactly those inputs. [`CacheKey`] derives that hash;
//! [`ResultCache`] stores the (report, manifest) pair in two tiers:
//!
//! * **Memory** — an LRU-bounded map of `Arc`'d entries; repeat requests
//!   are served without touching disk.
//! * **Disk** — one `BLR1` file per key under the cache directory,
//!   written with the same unique-temp-file + atomic-rename + FNV-1a
//!   trailer durability pattern as the trace store: a `kill -9` mid-write
//!   can leave a stale temp file or no file, but never a
//!   loadable-but-wrong entry. Torn or corrupt files are quarantined as
//!   `.corrupt` and the result regenerates. The disk tier is LRU-bounded
//!   by resident bytes (coldest-by-mtime first across restarts).
//!
//! Key derivation canonicalizes before hashing: components are sorted by
//! name and joined unambiguously, so two requests that spell the same
//! configuration in different orders (JSON key order, flag order) hash
//! identically, while any single component *value* change produces a new
//! key.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use bp_metrics::{faultpoint, Counter};

/// File magic for v1 cache entries.
const MAGIC: &[u8; 4] = b"BLR1";
/// Refuse to load cache files larger than this (a corrupt or hostile
/// file must not drive allocation).
const MAX_ENTRY_BYTES: u64 = 256 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// A content hash identifying one study result.
///
/// Built from named components via [`CacheKey::builder`]; the canonical
/// form sorts components by name, so insertion order never changes the
/// key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Starts an empty key derivation.
    #[must_use]
    pub fn builder() -> KeyBuilder {
        KeyBuilder {
            components: BTreeMap::new(),
        }
    }

    /// The raw 64-bit hash.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Fixed-width lower-hex rendering (the wire / file-name form).
    #[must_use]
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`CacheKey::hex`] form.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(CacheKey)
    }
}

/// Accumulates named components for a [`CacheKey`].
#[derive(Clone, Debug, Default)]
pub struct KeyBuilder {
    components: BTreeMap<String, String>,
}

impl KeyBuilder {
    /// Adds (or replaces) one named component.
    #[must_use]
    pub fn component(mut self, name: &str, value: impl ToString) -> KeyBuilder {
        self.components.insert(name.to_string(), value.to_string());
        self
    }

    /// The canonical pre-hash form: `name=value` pairs sorted by name,
    /// newline-joined. Exposed so tests and logs can show exactly what
    /// was hashed.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.components {
            out.push_str(name);
            out.push('=');
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// Finishes the derivation: FNV-1a 64 over the canonical form.
    #[must_use]
    pub fn finish(&self) -> CacheKey {
        let mut hash = FNV_OFFSET;
        // Hash each component with explicit separators so no
        // concatenation of adjacent names/values can collide with a
        // different split of the same bytes.
        for (name, value) in &self.components {
            fnv1a(&mut hash, name.as_bytes());
            fnv1a(&mut hash, &[0x00]);
            fnv1a(&mut hash, value.as_bytes());
            fnv1a(&mut hash, &[0x01]);
        }
        CacheKey(hash)
    }
}

/// One cached result: the study's rendered report (byte-identical to the
/// equivalent CLI invocation's stdout) and its metrics manifest JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// The key the entry was stored under.
    pub key: CacheKey,
    /// Rendered report bytes.
    pub body: Vec<u8>,
    /// Run-manifest JSON captured when the result was first computed.
    pub manifest: String,
}

impl CacheEntry {
    fn resident_bytes(&self) -> u64 {
        (self.body.len() + self.manifest.len()) as u64
    }

    /// Serializes to the `BLR1` on-disk form (without the trailer — the
    /// writer appends it).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 * 3 + self.body.len() + self.manifest.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.key.raw().to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.manifest.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.body);
        out.extend_from_slice(self.manifest.as_bytes());
        out
    }

    /// Decodes and verifies a `BLR1` payload (including its trailer).
    fn decode(raw: &[u8], expect: CacheKey) -> Result<CacheEntry, String> {
        let header = 4 + 8 * 3;
        if raw.len() < header + 8 {
            return Err("truncated header".to_string());
        }
        let (payload, trailer) = raw.split_at(raw.len() - 8);
        let mut hash = FNV_OFFSET;
        fnv1a(&mut hash, payload);
        if trailer != hash.to_le_bytes() {
            return Err("checksum mismatch".to_string());
        }
        if &payload[..4] != MAGIC {
            return Err("bad magic".to_string());
        }
        let word = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
        let key = CacheKey(word(4));
        if key != expect {
            return Err(format!("key mismatch: file says {}", key.hex()));
        }
        let body_len = word(12) as usize;
        let manifest_len = word(20) as usize;
        if payload.len() - header != body_len.saturating_add(manifest_len) {
            return Err("length fields disagree with payload".to_string());
        }
        let body = payload[header..header + body_len].to_vec();
        let manifest = String::from_utf8(payload[header + body_len..].to_vec())
            .map_err(|_| "manifest is not UTF-8".to_string())?;
        Ok(CacheEntry { key, body, manifest })
    }
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Served from the in-memory map.
    Memory,
    /// Served from the disk tier (and promoted to memory).
    Disk,
}

/// LRU bookkeeping for one tier: keys warmest-last with resident bytes.
#[derive(Default)]
struct Lru {
    /// `(key, bytes)`, front = coldest.
    order: Vec<(CacheKey, u64)>,
    resident: u64,
}

impl Lru {
    /// Marks `key` as just-used (inserting if new), then returns the
    /// coldest keys to evict to fit `budget` — never the just-used key.
    fn note_use(&mut self, key: CacheKey, bytes: u64, budget: Option<u64>) -> Vec<CacheKey> {
        if let Some(pos) = self.order.iter().position(|(k, _)| *k == key) {
            let entry = self.order.remove(pos);
            self.order.push(entry);
        } else {
            self.order.push((key, bytes));
            self.resident += bytes;
        }
        let mut cold = Vec::new();
        if let Some(budget) = budget {
            while self.resident > budget && self.order.len() > 1 {
                let (k, b) = self.order.remove(0);
                self.resident -= b;
                cold.push(k);
            }
        }
        cold
    }

    fn forget(&mut self, key: CacheKey) {
        if let Some(pos) = self.order.iter().position(|(k, _)| *k == key) {
            let (_, b) = self.order.remove(pos);
            self.resident -= b;
        }
    }
}

/// The two-tier content-addressed result cache.
pub struct ResultCache {
    mem: Mutex<HashMap<CacheKey, Arc<CacheEntry>>>,
    mem_lru: Mutex<Lru>,
    disk_lru: Mutex<Lru>,
    dir: Option<PathBuf>,
    /// Per-tier resident-byte budget; `None` = unbounded.
    budget: Option<u64>,
    tmp_seq: AtomicU64,
    m_hit: Counter,
    m_disk_hit: Counter,
    m_miss: Counter,
    m_store: Counter,
    m_evict: Counter,
    m_corrupt: Counter,
}

impl ResultCache {
    /// A cache with an optional disk tier under `dir` and an optional
    /// per-tier resident-byte `budget`.
    #[must_use]
    pub fn new(dir: Option<PathBuf>, budget: Option<u64>) -> ResultCache {
        let cache = ResultCache {
            mem: Mutex::new(HashMap::new()),
            mem_lru: Mutex::new(Lru::default()),
            disk_lru: Mutex::new(Lru::default()),
            dir,
            budget,
            tmp_seq: AtomicU64::new(0),
            m_hit: Counter::get("serve.cache.hit"),
            m_disk_hit: Counter::get("serve.cache.disk_hit"),
            m_miss: Counter::get("serve.cache.miss"),
            m_store: Counter::get("serve.cache.store"),
            m_evict: Counter::get("serve.cache.evict"),
            m_corrupt: Counter::get("serve.cache.corrupt"),
        };
        cache.scan_disk();
        cache
    }

    /// Seeds the disk LRU from pre-existing entries, coldest (oldest
    /// mtime) first, so the byte budget holds across restarts.
    fn scan_disk(&self) {
        let Some(dir) = &self.dir else { return };
        let Ok(read) = std::fs::read_dir(dir) else { return };
        let mut found: Vec<(std::time::SystemTime, CacheKey, u64)> = Vec::new();
        for dent in read.flatten() {
            let name = dent.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".blr")) else {
                continue;
            };
            let Some(key) = CacheKey::from_hex(stem) else { continue };
            let Ok(meta) = dent.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            found.push((mtime, key, meta.len()));
        }
        found.sort();
        let mut lru = self.disk_lru.lock().unwrap_or_else(PoisonError::into_inner);
        for (_, key, bytes) in found {
            lru.order.push((key, bytes));
            lru.resident += bytes;
        }
    }

    fn entry_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.blr", key.hex())))
    }

    /// Looks `key` up: memory first, then disk (verifying the trailer and
    /// promoting the entry to memory). Returns the entry and the tier
    /// that satisfied it, or `None` on a miss. Corrupt disk entries are
    /// quarantined as `.corrupt` and report as misses.
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<(Arc<CacheEntry>, Tier)> {
        let hit = {
            let mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
            mem.get(&key).cloned()
        };
        if let Some(entry) = hit {
            self.m_hit.incr();
            self.touch_mem(&entry);
            return Some((entry, Tier::Memory));
        }
        if let Some(entry) = self.load_disk(key) {
            let entry = Arc::new(entry);
            self.m_disk_hit.incr();
            {
                let mut mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
                mem.insert(key, Arc::clone(&entry));
            }
            self.touch_mem(&entry);
            self.touch_disk(key, std::fs::metadata(self.entry_path(key)?).map_or(0, |m| m.len()));
            return Some((entry, Tier::Disk));
        }
        self.m_miss.incr();
        None
    }

    /// Memory-tier lookup without touching the hit/miss counters or the
    /// LRU. This is the double-checked lookup a singleflight leader runs
    /// before executing: it only needs to observe an entry another leader
    /// stored moments ago (stores always populate memory), and it must
    /// not double-count the request's one [`ResultCache::get`].
    #[must_use]
    pub fn peek(&self, key: CacheKey) -> Option<Arc<CacheEntry>> {
        let mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
        mem.get(&key).cloned()
    }

    fn load_disk(&self, key: CacheKey) -> Option<CacheEntry> {
        let path = self.entry_path(key)?;
        let meta = std::fs::metadata(&path).ok()?;
        if meta.len() > MAX_ENTRY_BYTES {
            self.quarantine(key, &path, "oversized entry");
            return None;
        }
        let raw = std::fs::read(&path).ok()?;
        let injected = faultpoint::should_fail("serve.cache.load");
        match CacheEntry::decode(&raw, key) {
            Ok(_) if injected => {
                self.quarantine(key, &path, "injected fault: corrupt cache entry");
                None
            }
            Ok(entry) => Some(entry),
            Err(reason) => {
                self.quarantine(key, &path, &reason);
                None
            }
        }
    }

    /// Quarantines a damaged entry so it is never served and never
    /// reloaded: renamed to `.corrupt` (deleted if even the rename
    /// fails), forgotten by the LRU, counted.
    fn quarantine(&self, key: CacheKey, path: &Path, reason: &str) {
        self.m_corrupt.incr();
        eprintln!(
            "branch-lab serve: quarantined corrupt cache entry {} ({reason})",
            path.display()
        );
        let target = path.with_extension("blr.corrupt");
        if std::fs::rename(path, &target).is_err() {
            let _ = std::fs::remove_file(path);
        }
        self.disk_lru
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .forget(key);
    }

    /// Inserts a freshly computed entry into both tiers. The disk write
    /// is best-effort (a full disk degrades to memory-only caching) and
    /// crash-safe: unique temp file, FNV-1a trailer, atomic rename.
    pub fn store(&self, entry: CacheEntry) -> Arc<CacheEntry> {
        self.m_store.incr();
        let key = entry.key;
        let entry = Arc::new(entry);
        {
            let mut mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
            mem.insert(key, Arc::clone(&entry));
        }
        self.touch_mem(&entry);
        if let Some(path) = self.entry_path(key) {
            if faultpoint::should_fail("serve.cache.save") {
                eprintln!("branch-lab serve: injected fault: skipping cache save {}", key.hex());
            } else {
                match self.save_disk(&entry, &path) {
                    Ok(bytes) => self.touch_disk(key, bytes),
                    Err(e) => eprintln!(
                        "branch-lab serve: failed to persist cache entry {}: {e}",
                        path.display()
                    ),
                }
            }
        }
        entry
    }

    fn save_disk(&self, entry: &CacheEntry, path: &Path) -> std::io::Result<u64> {
        let dir = path.parent().expect("entry path always has a parent");
        std::fs::create_dir_all(dir)?;
        let mut payload = entry.encode();
        let mut hash = FNV_OFFSET;
        fnv1a(&mut hash, &payload);
        payload.extend_from_slice(&hash.to_le_bytes());
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &payload)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(payload.len() as u64)
    }

    fn touch_mem(&self, entry: &Arc<CacheEntry>) {
        let cold = self
            .mem_lru
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .note_use(entry.key, entry.resident_bytes(), self.budget);
        if !cold.is_empty() {
            let mut mem = self.mem.lock().unwrap_or_else(PoisonError::into_inner);
            for key in cold {
                mem.remove(&key);
                self.m_evict.incr();
            }
        }
    }

    fn touch_disk(&self, key: CacheKey, bytes: u64) {
        let cold = self
            .disk_lru
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .note_use(key, bytes, self.budget);
        for key in cold {
            if let Some(path) = self.entry_path(key) {
                let _ = std::fs::remove_file(path);
                self.m_evict.incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bp-serve-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(key: CacheKey, body: &str) -> CacheEntry {
        CacheEntry {
            key,
            body: body.as_bytes().to_vec(),
            manifest: format!("{{\"run\": \"{body}\"}}"),
        }
    }

    #[test]
    fn key_components_canonicalize_and_discriminate() {
        let a = CacheKey::builder()
            .component("study", "fig7")
            .component("trace_len", 1_000_000)
            .finish();
        let b = CacheKey::builder()
            .component("trace_len", 1_000_000)
            .component("study", "fig7")
            .finish();
        assert_eq!(a, b, "component order must not matter");
        let c = CacheKey::builder()
            .component("study", "fig7")
            .component("trace_len", 1_000_001)
            .finish();
        assert_ne!(a, c, "value changes must change the key");
        // Name/value boundary ambiguity must not collide.
        let d = CacheKey::builder().component("ab", "c").finish();
        let e = CacheKey::builder().component("a", "bc").finish();
        assert_ne!(d, e);
        assert_eq!(CacheKey::from_hex(&a.hex()), Some(a));
    }

    #[test]
    fn memory_roundtrip_and_miss() {
        let cache = ResultCache::new(None, None);
        let key = CacheKey::builder().component("k", 1).finish();
        assert!(cache.get(key).is_none());
        cache.store(entry(key, "hello"));
        let (got, tier) = cache.get(key).unwrap();
        assert_eq!(tier, Tier::Memory);
        assert_eq!(got.body, b"hello");
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = temp_dir("persist");
        let key = CacheKey::builder().component("k", 2).finish();
        {
            let cache = ResultCache::new(Some(dir.clone()), None);
            cache.store(entry(key, "persisted"));
        }
        let fresh = ResultCache::new(Some(dir.clone()), None);
        let (got, tier) = fresh.get(key).unwrap();
        assert_eq!(tier, Tier::Disk);
        assert_eq!(got.body, b"persisted");
        assert_eq!(got.manifest, "{\"run\": \"persisted\"}");
        // Second lookup is a memory hit (promotion).
        assert_eq!(fresh.get(key).unwrap().1, Tier::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_quarantine_and_regenerate() {
        let dir = temp_dir("corrupt");
        let key = CacheKey::builder().component("k", 3).finish();
        {
            let cache = ResultCache::new(Some(dir.clone()), None);
            cache.store(entry(key, "good"));
        }
        let path = dir.join(format!("{}.blr", key.hex()));
        // Flip a byte in the body region: the trailer must catch it.
        let mut raw = std::fs::read(&path).unwrap();
        let at = raw.len() - 12;
        raw[at] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();

        let fresh = ResultCache::new(Some(dir.clone()), None);
        assert!(fresh.get(key).is_none(), "corrupt entry must read as a miss");
        assert!(!path.exists(), "corrupt entry must not stay loadable");
        assert!(
            dir.join(format!("{}.blr.corrupt", key.hex())).exists(),
            "corrupt entry must be quarantined, not deleted"
        );
        // Regeneration overwrites cleanly.
        fresh.store(entry(key, "good"));
        assert!(fresh.get(key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_rejected() {
        let dir = temp_dir("torn");
        let key = CacheKey::builder().component("k", 4).finish();
        {
            let cache = ResultCache::new(Some(dir.clone()), None);
            cache.store(entry(key, "some body text that is long enough to truncate"));
        }
        let path = dir.join(format!("{}.blr", key.hex()));
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let fresh = ResultCache::new(Some(dir.clone()), None);
        assert!(fresh.get(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_detected() {
        let dir = temp_dir("mismatch");
        let key_a = CacheKey::builder().component("k", 5).finish();
        let key_b = CacheKey::builder().component("k", 6).finish();
        {
            let cache = ResultCache::new(Some(dir.clone()), None);
            cache.store(entry(key_a, "a"));
        }
        // Masquerade entry A as entry B.
        std::fs::rename(
            dir.join(format!("{}.blr", key_a.hex())),
            dir.join(format!("{}.blr", key_b.hex())),
        )
        .unwrap();
        let fresh = ResultCache::new(Some(dir.clone()), None);
        assert!(fresh.get(key_b).is_none(), "renamed entry must not serve under the wrong key");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_budget_evicts_coldest_but_never_the_entry_in_use() {
        let dir = temp_dir("lru");
        // Each entry is ~60 bytes on disk; budget fits roughly two.
        let cache = ResultCache::new(Some(dir.clone()), Some(150));
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::builder().component("k", 100 + i).finish())
            .collect();
        for (i, &key) in keys.iter().enumerate() {
            cache.store(entry(key, &format!("body-{i}")));
        }
        let on_disk = |key: CacheKey| dir.join(format!("{}.blr", key.hex())).exists();
        assert!(!on_disk(keys[0]), "coldest entry must evict");
        assert!(on_disk(keys[3]), "the just-stored entry must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
