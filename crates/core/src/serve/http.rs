//! A minimal, dependency-free HTTP/1.1 subset for `branch-lab serve`.
//!
//! The workspace is offline-green, so the server cannot lean on hyper or
//! tokio; it implements exactly the slice of HTTP/1.1 the study protocol
//! needs: one request per connection (`Connection: close` semantics),
//! `GET`/`POST`, header parsing, and `Content-Length`-framed bodies.
//! Requests that violate the subset produce structured [`HttpError`]s
//! which the server maps to 4xx responses — a malformed peer can never
//! panic a worker.
//!
//! Hard limits keep a hostile peer from ballooning memory, mirroring the
//! decode hardening of the trace codec: request lines and headers are
//! capped at [`MAX_HEAD_BYTES`], bodies at [`MAX_BODY_BYTES`], and both
//! caps are checked *before* allocation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request arrived.
    UnexpectedEof,
    /// The request line was not `METHOD PATH HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// The request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` was missing/unparseable on a body-carrying
    /// method, or exceeded [`MAX_BODY_BYTES`].
    BadContentLength,
    /// Transport error while reading.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::BadRequestLine(line) => write!(f, "malformed request line: {line:?}"),
            HttpError::BadHeader(line) => write!(f, "malformed header: {line:?}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BadContentLength => write!(f, "missing or oversized Content-Length"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, without query string (e.g. `/run`).
    pub path: String,
    /// Raw query string (empty when absent), undecoded.
    pub query: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty for bodyless requests).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lower-cased) header `name`, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Length`/`Connection` are added by
    /// [`Response::write_to`]).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status, content type and body.
    #[must_use]
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "text/plain; charset=utf-8", body)
    }

    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response::new(200, "application/json", body)
    }

    /// An error response; the body is `detail` plus a newline.
    #[must_use]
    pub fn error(status: u16, detail: &str) -> Response {
        Response::new(status, "text/plain; charset=utf-8", format!("{detail}\n"))
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for the status code.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response (status line, headers, framing, body) to
    /// `out`. Always closes the connection (`Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates transport write failures.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        write!(out, "Content-Length: {}\r\n", self.body.len())?;
        write!(out, "Connection: close\r\n\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Reads one request from `stream` (blocking, one request per
/// connection).
///
/// # Errors
///
/// Returns a structured [`HttpError`] for every malformed or oversized
/// input — never panics, never allocates proportionally to a hostile
/// `Content-Length` beyond [`MAX_BODY_BYTES`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;
    let mut line = String::new();

    let read_line = |reader: &mut BufReader<&mut TcpStream>,
                         line: &mut String,
                         head_bytes: &mut usize|
     -> Result<(), HttpError> {
        line.clear();
        let n = reader
            .read_line(line)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::UnexpectedEof);
        }
        *head_bytes += n;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(())
    };

    read_line(&mut reader, &mut line, &mut head_bytes)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_uppercase(), t.to_string(), v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequestLine(line.clone()));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut headers = Vec::new();
    loop {
        read_line(&mut reader, &mut line, &mut head_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(line.clone()));
        };
        headers.push((name.trim().to_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| value.parse::<usize>().map_err(|_| HttpError::BadContentLength))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BadContentLength);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::UnexpectedEof => HttpError::UnexpectedEof,
                _ => HttpError::Io(e.to_string()),
            })?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds raw bytes through a real socket pair and parses them.
    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Close the write half so short inputs hit EOF.
            s.shutdown(std::net::Shutdown::Write).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(
            b"POST /run?manifest=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query, "manifest=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_inputs_are_structured_errors() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(
            parse(b"GET /x SPDY/9\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: zzz\r\n\r\n"),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(parse(b""), Err(HttpError::UnexpectedEof)));
        assert!(matches!(parse(b"GET /x HT"), Err(HttpError::BadRequestLine(_))));
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            u64::MAX
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::BadContentLength)
        ));
        let long_header = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            parse(long_header.as_bytes()),
            Err(HttpError::HeadTooLarge)
        ));
        // Body shorter than its declared length: EOF, not a hang/panic.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn response_serialization_includes_framing() {
        let mut out = Vec::new();
        Response::text("hello")
            .with_header("X-Test", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }
}
