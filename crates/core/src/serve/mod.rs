//! `branch-lab serve` — the long-running study server substrate.
//!
//! ROADMAP item 2: the study registry makes every figure a pure, labeled,
//! deterministic function of (study, dataset flags, config), which is
//! exactly the shape of a cacheable RPC. This module provides the
//! protocol-and-plumbing half, kept in `bp-core` so it stays independent
//! of the concrete study set:
//!
//! * [`http`] — a hand-rolled, hardened HTTP/1.1 subset over
//!   `std::net::TcpListener` (the workspace is offline-green; no hyper);
//! * [`cache`] — the content-addressed [`ResultCache`](cache::ResultCache)
//!   with an LRU disk tier reusing the trace store's atomic-rename +
//!   FNV-trailer durability pattern;
//! * [`Singleflight`] — in-flight request coalescing: concurrent
//!   identical requests share one execution, and every follower gets the
//!   leader's result;
//! * [`Server`] — a fixed worker pool accepting connections on a shared
//!   listener and dispatching each request to a [`Handler`].
//!
//! The request semantics (JSON schema, registry dispatch, byte-identity
//! with the CLI) live in `bp-experiments`, which owns the studies.
//!
//! Counters: `serve.request` (accepted requests), `serve.http_error`
//! (unparseable requests answered 400), plus the `serve.cache.*` family
//! in [`cache`] and the dispatch-level `serve.exec` / `serve.dedup_join`
//! / `serve.deadline_expired` counters in the experiments layer.

pub mod cache;
pub mod http;

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use bp_metrics::Counter;

use http::{Request, Response};

/// Handles one parsed request. Implemented by the experiments layer;
/// closures work too.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `req`. Must not panic for malformed
    /// request *content* (return a 4xx instead); a panic is contained to
    /// the connection but counted as a server error.
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

/// One singleflight slot: the leader publishes here, followers wait.
struct Slot<T> {
    result: Mutex<Option<Result<T, String>>>,
    ready: Condvar,
}

/// How a [`Singleflight::run`] call was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flight {
    /// This caller executed the computation.
    Led,
    /// This caller joined an in-flight execution and received the
    /// leader's result.
    Joined,
}

/// Coalesces concurrent identical computations by key.
///
/// The first caller for a key becomes the *leader* and runs the
/// computation; callers arriving for the same key while it is in flight
/// block and receive the leader's result (including its error). The slot
/// is removed when the leader finishes, so a later request retries a
/// failed computation instead of replaying a stale error.
pub struct Singleflight<T> {
    inflight: Mutex<HashMap<u64, Arc<Slot<T>>>>,
}

impl<T: Clone> Singleflight<T> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Singleflight<T> {
        Singleflight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` under `key`, coalescing with any in-flight call for
    /// the same key. Returns the result and whether this caller led or
    /// joined.
    pub fn run(&self, key: u64, compute: impl FnOnce() -> Result<T, String>) -> (Result<T, String>, Flight) {
        let (slot, leader) = {
            let mut map = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        result: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            // Publish even if `compute` panics, so followers never hang;
            // the panic then propagates to the leader's caller.
            struct Publish<'a, T> {
                table: &'a Singleflight<T>,
                slot: &'a Slot<T>,
                key: u64,
                armed: bool,
            }
            impl<T> Drop for Publish<'_, T> {
                fn drop(&mut self) {
                    if self.armed {
                        let mut result =
                            self.slot.result.lock().unwrap_or_else(PoisonError::into_inner);
                        *result = Some(Err("leader panicked".to_string()));
                        drop(result);
                        self.slot.ready.notify_all();
                    }
                    let mut map = self
                        .table
                        .inflight
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    map.remove(&self.key);
                }
            }
            let mut guard = Publish { table: self, slot: &slot, key, armed: true };
            let result = compute();
            {
                let mut published = slot.result.lock().unwrap_or_else(PoisonError::into_inner);
                *published = Some(result.clone());
            }
            guard.armed = false;
            slot.ready.notify_all();
            drop(guard);
            (result, Flight::Led)
        } else {
            let mut published = slot.result.lock().unwrap_or_else(PoisonError::into_inner);
            while published.is_none() {
                published = slot
                    .ready
                    .wait(published)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            (published.clone().expect("loop exits only when published"), Flight::Joined)
        }
    }
}

impl<T: Clone> Default for Singleflight<T> {
    fn default() -> Self {
        Singleflight::new()
    }
}

/// A running server: a shared listener drained by a fixed worker pool.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts `workers` accept loops dispatching to `handler`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, workers: usize, handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..workers.max(1))
            .map(|i| {
                let listener = listener.try_clone().expect("clone listener");
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &handler, &stop))
                    .expect("spawn serve worker")
            })
            .collect();
        Ok(Server { addr, stop, workers })
    }

    /// The bound address (with the resolved port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks the workers, and joins them. Requests
    /// already being handled finish normally.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // One wake-up connection per worker unblocks the accept loops.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Blocks the calling thread until every worker exits (a server
    /// without [`Server::shutdown`] runs forever — the `serve`
    /// subcommand's main thread parks here).
    pub fn join(mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(listener: &TcpListener, handler: &Arc<dyn Handler>, stop: &AtomicBool) {
    let m_request = Counter::get("serve.request");
    let m_http_error = Counter::get("serve.http_error");
    loop {
        let Ok((mut stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request(&mut stream) {
            Ok(req) => {
                m_request.incr();
                let response = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handler.handle(&req)
                })) {
                    Ok(response) => response,
                    Err(payload) => Response::error(
                        500,
                        &format!(
                            "internal error: {}",
                            crate::parallel::panic_message(payload.as_ref())
                        ),
                    ),
                };
                let _ = response.write_to(&mut stream);
            }
            Err(http::HttpError::UnexpectedEof) => {
                // Shutdown wake-ups and port probes close without sending
                // a request; nothing to answer.
            }
            Err(e) => {
                m_http_error.incr();
                let _ = Response::error(400, &e.to_string()).write_to(&mut stream);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn server_dispatches_and_shuts_down() {
        let handler = |req: &Request| Response::text(format!("path={}", req.path));
        let server = Server::bind("127.0.0.1:0", 2, Arc::new(handler)).unwrap();
        let addr = server.local_addr();
        let reply = roundtrip(addr, "GET /abc HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.ends_with("path=/abc"), "{reply}");
        let bad = roundtrip(addr, "garbage\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        server.shutdown();
    }

    #[test]
    fn handler_panics_become_500s_and_do_not_kill_workers() {
        let handler = |req: &Request| -> Response {
            assert!(req.path != "/boom", "kaboom");
            Response::text("fine")
        };
        let server = Server::bind("127.0.0.1:0", 1, Arc::new(handler)).unwrap();
        let addr = server.local_addr();
        let reply = roundtrip(addr, "GET /boom HTTP/1.1\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        assert!(reply.contains("kaboom"), "{reply}");
        // The single worker must still be alive.
        let ok = roundtrip(addr, "GET /fine HTTP/1.1\r\n\r\n");
        assert!(ok.ends_with("fine"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn singleflight_coalesces_concurrent_callers() {
        let flights: Singleflight<u32> = Singleflight::new();
        let executions = AtomicU32::new(0);
        let joins = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (result, flight) = flights.run(42, || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to arrive and join.
                        std::thread::sleep(Duration::from_millis(40));
                        Ok(7)
                    });
                    assert_eq!(result.unwrap(), 7);
                    if flight == Flight::Joined {
                        joins.fetch_add(1, Ordering::SeqCst);
                    }
                });
                // Stagger arrivals so the first thread reliably leads.
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one execution");
        assert_eq!(joins.load(Ordering::SeqCst), 7, "everyone else joins");
    }

    #[test]
    fn singleflight_failures_propagate_and_do_not_stick() {
        let flights: Singleflight<u32> = Singleflight::new();
        let (r, flight) = flights.run(1, || Err("down".to_string()));
        assert_eq!(flight, Flight::Led);
        assert_eq!(r.unwrap_err(), "down");
        // The failed slot must not be cached: a retry executes afresh.
        let (r, flight) = flights.run(1, || Ok(9));
        assert_eq!(flight, Flight::Led);
        assert_eq!(r.unwrap(), 9);
    }

    #[test]
    fn singleflight_leader_panic_unblocks_followers() {
        let flights: Arc<Singleflight<u32>> = Arc::new(Singleflight::new());
        let f2 = Arc::clone(&flights);
        let follower = std::thread::spawn(move || {
            // Give the leader time to take the slot.
            std::thread::sleep(Duration::from_millis(20));
            f2.run(5, || Ok(1))
        });
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                flights.run(5, || {
                    std::thread::sleep(Duration::from_millis(60));
                    panic!("leader died")
                })
            }));
        });
        leader.join().unwrap();
        let (result, flight) = follower.join().unwrap();
        // The follower either joined the doomed flight (and got the
        // publish-on-panic error) or arrived after cleanup and led its
        // own successful run; both are live outcomes, never a hang.
        match flight {
            Flight::Joined => assert_eq!(result.unwrap_err(), "leader panicked"),
            Flight::Led => assert_eq!(result.unwrap(), 1),
        }
    }
}
