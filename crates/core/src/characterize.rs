//! The Table I / Table II characterization runner.
//!
//! Reproduces the paper's §III methodology: trace each workload over all
//! of its application inputs, run the reference predictor continuously,
//! collect per-slice branch profiles, screen H2Ps per slice, cluster
//! slices into phases, and aggregate.

use std::collections::{HashMap, HashSet};

use bp_analysis::{cluster_slices, BranchProfile, H2pCriteria, PhaseConfig};
use bp_predictors::DirectionPredictor;
use bp_trace::Trace;
use bp_workloads::WorkloadSpec;

use crate::config::DatasetConfig;
use crate::parallel::Engine;

/// Characterization of one application input (one trace).
#[derive(Clone, Debug)]
pub struct InputCharacterization {
    /// Input index.
    pub input: u32,
    /// Whole-trace profile (slices merged).
    pub profile: BranchProfile,
    /// H2P IPs screened per slice.
    pub h2ps_per_slice: Vec<HashSet<u64>>,
    /// Union of per-slice H2P IPs for this input.
    pub h2p_union: HashSet<u64>,
    /// Static branch IPs per slice.
    pub static_per_slice: Vec<usize>,
    /// Fraction of each slice's mispredictions caused by that slice's
    /// H2Ps.
    pub h2p_mispredict_share_per_slice: Vec<f64>,
    /// Mean dynamic executions per H2P per slice (over slices that have
    /// H2Ps).
    pub h2p_execs_per_slice: f64,
    /// Number of phases found by SimPoint-style clustering.
    pub phases: usize,
}

/// Aggregated characterization of one workload over all inputs —
/// one row of Table I (or Table II for single-input LCF workloads).
#[derive(Clone, Debug)]
pub struct WorkloadCharacterization {
    /// Workload name.
    pub name: String,
    /// Per-input results.
    pub inputs: Vec<InputCharacterization>,
    /// Mean number of phases across inputs.
    pub avg_phases: f64,
    /// Union of static branch IPs across all inputs.
    pub total_static_branches: usize,
    /// Median static branch IPs per slice.
    pub median_static_per_slice: usize,
    /// Mean aggregate accuracy across inputs.
    pub avg_accuracy: f64,
    /// Mean accuracy with each input's H2P union excluded.
    pub avg_accuracy_excl_h2p: f64,
    /// Union of H2P IPs across all inputs ("# Static H2P Branches Total").
    pub h2p_union: HashSet<u64>,
    /// H2Ps appearing in 3 or more inputs.
    pub h2p_3plus_inputs: usize,
    /// Mean H2P-union size per input.
    pub avg_h2p_per_input: f64,
    /// Mean H2Ps per slice.
    pub avg_h2p_per_slice: f64,
    /// Mean dynamic executions per H2P per slice.
    pub avg_h2p_execs_per_slice: f64,
    /// Mean fraction of per-slice mispredictions caused by H2Ps.
    pub avg_h2p_mispredict_share: f64,
}

/// Characterizes one input trace with a fresh predictor.
#[must_use]
pub fn characterize_input(
    spec: &WorkloadSpec,
    trace: &Trace,
    input: u32,
    config: &DatasetConfig,
    predictor: &mut dyn DirectionPredictor,
) -> InputCharacterization {
    let criteria = H2pCriteria::paper();
    let mut whole = BranchProfile::new();
    let mut h2ps_per_slice = Vec::new();
    let mut static_per_slice = Vec::new();
    let mut shares = Vec::new();
    let mut h2p_exec_means = Vec::new();
    for slice in trace.slices(config.slice) {
        let profile = BranchProfile::collect(predictor, slice);
        let h2ps = criteria.screen_set(&profile, config.slice);
        static_per_slice.push(profile.static_branch_count());
        let total_miss = profile.total_mispredicts();
        let h2p_miss: u64 = h2ps
            .iter()
            .filter_map(|ip| profile.get(*ip))
            .map(|s| s.mispredicts)
            .sum();
        if total_miss > 0 {
            shares.push(h2p_miss as f64 / total_miss as f64);
        }
        if !h2ps.is_empty() {
            let execs: u64 = h2ps
                .iter()
                .filter_map(|ip| profile.get(*ip))
                .map(|s| s.execs)
                .sum();
            h2p_exec_means.push(execs as f64 / h2ps.len() as f64);
        }
        whole.merge(&profile);
        h2ps_per_slice.push(h2ps);
    }
    let h2p_union: HashSet<u64> = h2ps_per_slice.iter().flatten().copied().collect();
    let phases = cluster_slices(trace, config.slice, PhaseConfig::default()).num_phases;
    let _ = spec;
    InputCharacterization {
        input,
        profile: whole,
        h2p_union,
        static_per_slice,
        h2p_mispredict_share_per_slice: shares,
        h2p_execs_per_slice: mean(&h2p_exec_means),
        h2ps_per_slice,
        phases,
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Characterizes a workload across all of its (configured) inputs, using a
/// fresh predictor per input from `make_predictor`. Inputs run in parallel
/// on [`Engine::from_env`]; traces come from the shared
/// [`bp_workloads::TraceStore`].
///
/// # Examples
///
/// ```
/// use bp_core::{characterize_workload, DatasetConfig};
/// use bp_predictors::TageScL;
/// use bp_workloads::specint_suite;
///
/// let spec = &specint_suite()[1];
/// let c = characterize_workload(spec, &DatasetConfig::quick(), || TageScL::kb8());
/// assert_eq!(c.name, spec.name);
/// assert!(c.avg_accuracy > 0.5);
/// ```
#[must_use]
pub fn characterize_workload<P, F>(
    spec: &WorkloadSpec,
    config: &DatasetConfig,
    make_predictor: F,
) -> WorkloadCharacterization
where
    P: DirectionPredictor,
    F: Fn() -> P + Sync,
{
    characterize_workload_with(Engine::from_env(), spec, config, make_predictor)
}

/// [`characterize_workload`] on an explicit [`Engine`]. Per-input results
/// are aggregated in input order, so the outcome is thread-count
/// independent.
#[must_use]
pub fn characterize_workload_with<P, F>(
    engine: Engine,
    spec: &WorkloadSpec,
    config: &DatasetConfig,
    make_predictor: F,
) -> WorkloadCharacterization
where
    P: DirectionPredictor,
    F: Fn() -> P + Sync,
{
    let _timer = bp_metrics::stage("study.characterize");
    bp_metrics::Counter::get("study.characterize.inputs")
        .add(u64::from(config.inputs_for(spec.inputs)));
    let inputs: Vec<u32> = (0..config.inputs_for(spec.inputs)).collect();
    let per_input = engine.map(&inputs, |_, &input| {
        let trace = spec.cached_trace(input, config.trace_len);
        let mut predictor = make_predictor();
        characterize_input(spec, &trace, input, config, &mut predictor)
    });
    aggregate(spec, per_input)
}

fn aggregate(
    spec: &WorkloadSpec,
    per_input: Vec<InputCharacterization>,
) -> WorkloadCharacterization {
    let mut all_static: HashSet<u64> = HashSet::new();
    let mut h2p_input_count: HashMap<u64, u32> = HashMap::new();
    let mut statics_per_slice: Vec<usize> = Vec::new();
    for ic in &per_input {
        for (ip, _) in ic.profile.iter() {
            all_static.insert(ip);
        }
        for ip in &ic.h2p_union {
            *h2p_input_count.entry(*ip).or_default() += 1;
        }
        statics_per_slice.extend(&ic.static_per_slice);
    }
    statics_per_slice.sort_unstable();
    let median_static = statics_per_slice
        .get(statics_per_slice.len() / 2)
        .copied()
        .unwrap_or(0);

    let avg_accuracy = mean(&per_input.iter().map(|i| i.profile.accuracy()).collect::<Vec<_>>());
    let avg_excl = mean(
        &per_input
            .iter()
            .map(|i| i.profile.accuracy_excluding(&i.h2p_union))
            .collect::<Vec<_>>(),
    );
    let avg_h2p_per_input = mean(
        &per_input
            .iter()
            .map(|i| i.h2p_union.len() as f64)
            .collect::<Vec<_>>(),
    );
    let per_slice_counts: Vec<f64> = per_input
        .iter()
        .flat_map(|i| i.h2ps_per_slice.iter().map(|s| s.len() as f64))
        .collect();
    let shares: Vec<f64> = per_input
        .iter()
        .flat_map(|i| i.h2p_mispredict_share_per_slice.iter().copied())
        .collect();
    let execs: Vec<f64> = per_input
        .iter()
        .filter(|i| i.h2p_execs_per_slice > 0.0)
        .map(|i| i.h2p_execs_per_slice)
        .collect();
    let phases: Vec<f64> = per_input.iter().map(|i| i.phases as f64).collect();

    WorkloadCharacterization {
        name: spec.name.clone(),
        avg_phases: mean(&phases),
        total_static_branches: all_static.len(),
        median_static_per_slice: median_static,
        avg_accuracy,
        avg_accuracy_excl_h2p: avg_excl,
        h2p_union: h2p_input_count.keys().copied().collect(),
        h2p_3plus_inputs: h2p_input_count.values().filter(|&&c| c >= 3).count(),
        avg_h2p_per_input,
        avg_h2p_per_slice: mean(&per_slice_counts),
        avg_h2p_execs_per_slice: mean(&execs),
        avg_h2p_mispredict_share: mean(&shares),
        inputs: per_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::TageScL;
    use bp_workloads::specint_suite;

    #[test]
    fn characterizes_mcf_like_workload() {
        let spec = &specint_suite()[1]; // mcf-like: H2P-heavy
        let cfg = DatasetConfig::quick();
        let c = characterize_workload(spec, &cfg, TageScL::kb8);
        assert_eq!(c.inputs.len(), 2);
        assert!(c.avg_accuracy > 0.6 && c.avg_accuracy < 1.0);
        // mcf-like must expose H2Ps that dominate mispredictions.
        assert!(!c.h2p_union.is_empty(), "expected H2Ps");
        assert!(
            c.avg_h2p_mispredict_share > 0.5,
            "H2P share {}",
            c.avg_h2p_mispredict_share
        );
        // Excluding H2Ps must improve accuracy.
        assert!(c.avg_accuracy_excl_h2p > c.avg_accuracy);
    }

    #[test]
    fn h2ps_recur_across_inputs() {
        let spec = &specint_suite()[1];
        let cfg = DatasetConfig {
            max_inputs: Some(3),
            ..DatasetConfig::quick()
        };
        let c = characterize_workload(spec, &cfg, TageScL::kb8);
        // The same static H2P sites should appear in all 3 inputs
        // (program structure is input-independent).
        assert!(
            c.h2p_3plus_inputs > 0,
            "no H2P recurred across 3 inputs: union {}",
            c.h2p_union.len()
        );
    }

    #[test]
    fn phases_are_detected() {
        let spec = &specint_suite()[0];
        let cfg = DatasetConfig::quick();
        let c = characterize_workload(spec, &cfg, TageScL::kb8);
        assert!(c.avg_phases >= 1.0);
    }
}
