//! Runs every report study in sequence, fault-tolerantly (`branch-lab
//! all` and the `all` shim binary).
//!
//! The child list is derived from the study registry
//! ([`crate::registry::registry`], [`bp_core::StudyRegistry::report_names`])
//! — registering a study is all it takes to join the sweep.
//!
//! The studies run **in-process** as tasks of the fault-tolerant
//! executor ([`bp_core::exec`]), which supplies panic isolation,
//! cooperative cancellation with per-study deadlines (a watchdog thread
//! plus block-granular checkpoints in the replay loops), bounded retries
//! with deterministic jittered backoff, and a study-granularity
//! checkpoint file. Running in one process means every study shares the
//! in-memory `TraceStore`; `all` still defaults `BRANCH_LAB_TRACE_DIR`
//! to `out/traces` (an explicit value in the environment wins) so traces
//! also persist on disk for later single-study runs, and so the memory
//! governor (`BRANCH_LAB_MEM_BUDGET`) can evict cold traces and fall
//! back to streaming them from disk.
//!
//! A full sweep is exactly the kind of multi-hour batch run that must not
//! lose fifteen finished studies to one flaky one, so the runner:
//!
//! * retries each failing study once (after a seeded jittered backoff);
//! * with `--keep-going` (or `BRANCH_LAB_KEEP_GOING=1`) continues past
//!   ultimately-failed studies instead of aborting;
//! * cancels studies that exceed `--timeout-secs N` (or
//!   `BRANCH_LAB_CHILD_TIMEOUT_SECS`; `0` disables the deadline) at the
//!   next replay-block checkpoint;
//! * records every success in a checkpoint file (`all.checkpoint` in the
//!   metrics sink or trace dir) so `all --resume` re-runs only the
//!   studies that have not succeeded yet;
//! * prints a final per-study summary table and exits nonzero iff any
//!   study ultimately failed.
//!
//! The remaining flags (`--len`, `--quick`, `--csv`) are the standard
//! report-study options and apply to every study.
//!
//! With `BRANCH_LAB_METRICS` pointing at a sink directory, each study
//! writes a per-study *delta* manifest there (counters attributed to
//! that study alone, via [`bp_metrics::CounterBaseline`]); `all` merges
//! whichever manifests exist into `<sink>/all.json`, annotated with a
//! per-child status table and attempt counts — a partial sweep produces
//! a partial (but honest) merged manifest.
//!
//! Fault injection: each attempt of study `<bin>` passes the
//! `all.child.<bin>` fault site, so `BRANCH_LAB_FAULTS=all.child.fig3:fail`
//! deterministically fails that study; `exec.deadline.<bin>` force-expires
//! its deadline. Both drive the chaos leg of `ci.sh`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use bp_core::exec::{self, Backoff, ExecOptions, Task, TaskReport};
use bp_core::{StudyCtx, Table};

use crate::registry::registry;
use crate::Cli;

/// How many extra attempts a failing study gets.
const RETRIES: u32 = 1;

struct Options {
    keep_going: bool,
    resume: bool,
    timeout: Option<Duration>,
    /// Standard report-study flags applied to every study.
    cli: Cli,
}

impl Options {
    fn parse_from(args: Vec<String>) -> Options {
        let env_flag = |name: &str| {
            std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
        };
        let env_u64 = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        let mut keep_going = env_flag("BRANCH_LAB_KEEP_GOING");
        let mut resume = false;
        let mut timeout = env_u64("BRANCH_LAB_CHILD_TIMEOUT_SECS")
            .filter(|&secs| secs > 0)
            .map(Duration::from_secs);
        let mut forwarded = Vec::new();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--keep-going" => keep_going = true,
                "--resume" => resume = true,
                "--timeout-secs" => {
                    let v = args.next().expect("--timeout-secs needs a value");
                    let secs: u64 = v.parse().expect("--timeout-secs must be an integer");
                    timeout = (secs > 0).then(|| Duration::from_secs(secs));
                }
                _ => forwarded.push(a),
            }
        }
        let cli = Cli::parse_from(forwarded);
        if let Some(first) = cli.rest.first() {
            panic!("unknown argument {first}; supported: --len N --quick --csv DIR");
        }
        Options { keep_going, resume, timeout, cli }
    }
}

/// Runs the full sweep with the given (already `skip`ped) argument list.
/// Exits the process with status 1 iff any study ultimately failed.
///
/// # Panics
///
/// Panics on malformed arguments.
pub fn run_from(args: Vec<String>) {
    let opts = Options::parse_from(args);
    // Default the shared trace cache before the first store access, so a
    // bare `branch-lab all` leaves reusable traces behind like the old
    // child-process runner did. An explicit setting wins.
    if std::env::var("BRANCH_LAB_TRACE_DIR").ok().filter(|d| !d.is_empty()).is_none() {
        std::env::set_var("BRANCH_LAB_TRACE_DIR", "out/traces");
    }
    let trace_dir = std::env::var("BRANCH_LAB_TRACE_DIR").expect("trace dir just defaulted");

    // The checkpoint lives next to the other run artifacts: in the
    // metrics sink when one is configured, else in the trace dir.
    let checkpoint = bp_metrics::sink_dir()
        .map_or_else(|| PathBuf::from(&trace_dir), Path::to_path_buf)
        .join("all.checkpoint");
    if let Some(dir) = checkpoint.parent() {
        let _ = std::fs::create_dir_all(dir);
    }

    let reg = registry();
    let info = manifest_info(&opts.cli);
    let tasks: Vec<Task<'_>> = reg
        .report_names()
        .into_iter()
        .map(|bin| {
            let cli = &opts.cli;
            let reg = &reg;
            let info = &info;
            Task::new(bin, move |token: &bp_metrics::cancel::CancelToken| {
                let baseline = bp_metrics::CounterBaseline::take();
                let study = reg.get(bin).expect("report_names came from this registry");
                let ctx = StudyCtx::with_cancel(cli.dataset(), token.clone());
                let report = study.run(&ctx);
                cli.emit_report(&report);
                if let Some(sink) = bp_metrics::sink_dir() {
                    baseline
                        .capture_delta(bin, info.clone())
                        .write_to_sink(sink)
                        .map_err(|e| format!("failed to write manifest: {e}"))?;
                }
                Ok(())
            })
        })
        .collect();

    let exec_opts = ExecOptions {
        retries: RETRIES,
        backoff: Backoff::from_env(),
        deadline: opts.timeout,
        keep_going: opts.keep_going,
        checkpoint: Some(checkpoint),
        resume: opts.resume,
        fault_prefix: Some("all.child".to_string()),
        log_prefix: Some("all".to_string()),
    };
    let reports = exec::run(tasks, &exec_opts);

    print_summary(&reports);
    merge_manifests(&reports);
    if reports.iter().any(|r| !r.outcome.is_success()) {
        std::process::exit(1);
    }
}

/// The dataset-shape `info` block every per-study manifest records —
/// the same keys and formatting [`Cli::metrics_run`] uses, so a study
/// run under `all` and one run standalone produce comparable manifests.
fn manifest_info(cli: &Cli) -> BTreeMap<String, String> {
    let cfg = cli.dataset();
    BTreeMap::from([
        ("trace_len".to_string(), cfg.trace_len.to_string()),
        ("slice_len".to_string(), cfg.slice.len().to_string()),
        (
            "max_inputs".to_string(),
            cfg.max_inputs.map_or_else(|| "none".to_owned(), |n| n.to_string()),
        ),
        ("quick".to_string(), cli.quick.to_string()),
    ])
}

fn print_summary(reports: &[TaskReport]) {
    let mut table = Table::new(vec!["binary", "outcome", "attempts", "seconds"]);
    for r in reports {
        table.row(vec![
            r.name.clone(),
            r.outcome.status(),
            r.attempts.to_string(),
            format!("{:.2}", r.seconds),
        ]);
    }
    println!("\n== all: per-child summary ==");
    print!("{}", table.render());
}

/// Merges the manifests of every study known to have succeeded (this run
/// or a resumed one) into `<sink>/all.json`, with a `children` status
/// table covering all studies — including the failed and not-run ones
/// the merge is missing — and a `child_attempts` table. Silent no-op
/// when metrics are off; merge problems go to stderr only, so stdout
/// stays byte-identical with and without metrics.
fn merge_manifests(reports: &[TaskReport]) {
    let Some(sink) = bp_metrics::sink_dir() else { return };
    let mut runs = Vec::new();
    for r in reports {
        if !r.outcome.is_success() {
            continue;
        }
        let path = sink.join(format!("{}.json", r.name));
        match std::fs::read_to_string(&path) {
            Ok(s) => runs.push(s),
            Err(e) => eprintln!("bp-metrics: missing manifest {}: {e}", path.display()),
        }
    }
    let children: Vec<(String, String, u32)> = reports
        .iter()
        .map(|r| (r.name.clone(), r.outcome.merged_status(), r.attempts))
        .collect();
    match bp_metrics::merge_manifests_with_children(&runs, &children) {
        Ok(merged) => {
            let path = sink.join("all.json");
            if let Err(e) = std::fs::write(&path, merged + "\n") {
                eprintln!("bp-metrics: failed to write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("bp-metrics: failed to merge manifests: {e}"),
    }
}
