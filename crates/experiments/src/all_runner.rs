//! Runs every report study in sequence, fault-tolerantly (`branch-lab
//! all` and the `all` shim binary).
//!
//! The child list is derived from the study registry
//! ([`crate::registry::registry`], [`bp_core::StudyRegistry::report_names`])
//! — registering a study is all it takes to join the sweep.
//!
//! The studies run as separate sibling processes (the per-study shim
//! binaries next to the current executable), so the in-memory
//! `TraceStore` cannot be shared between them; instead `all` points every
//! child at one `BRANCH_LAB_TRACE_DIR` (defaulting to `out/traces`) so
//! each workload trace is interpreted once and then loaded from disk by
//! every later child. An explicit `BRANCH_LAB_TRACE_DIR` in the
//! environment wins.
//!
//! A full sweep is exactly the kind of multi-hour batch run that must not
//! lose fifteen finished children to one flaky one, so the runner:
//!
//! * retries each failing child once (after a short backoff);
//! * with `--keep-going` (or `BRANCH_LAB_KEEP_GOING=1`) continues past
//!   ultimately-failed children instead of aborting;
//! * kills children that exceed `--timeout-secs N` (or
//!   `BRANCH_LAB_CHILD_TIMEOUT_SECS`);
//! * records every success in a checkpoint file (`all.checkpoint` in the
//!   metrics sink or trace dir) so `all --resume` re-runs only the
//!   children that have not succeeded yet;
//! * prints a final per-child summary table and exits nonzero iff any
//!   child ultimately failed.
//!
//! All other flags are forwarded verbatim to the children.
//!
//! With `BRANCH_LAB_METRICS` pointing at a sink directory, each child
//! writes its own run manifest there; `all` merges whichever manifests
//! exist into `<sink>/all.json`, annotated with a per-child status table
//! — a partial sweep produces a partial (but honest) merged manifest.
//!
//! Fault injection: each spawn attempt of child `<bin>` passes the
//! `all.child.<bin>` fault site, so `BRANCH_LAB_FAULTS=all.child.fig3:fail`
//! deterministically fails that child without needing a crashing binary.

use std::collections::HashSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use bp_core::Table;

use crate::registry::registry;

/// How many extra attempts a failing child gets.
const RETRIES: u32 = 1;

struct Options {
    keep_going: bool,
    resume: bool,
    timeout: Option<Duration>,
    retry_delay: Duration,
    /// Arguments forwarded verbatim to every child.
    forwarded: Vec<String>,
}

impl Options {
    fn parse_from(args: Vec<String>) -> Options {
        let env_flag = |name: &str| {
            std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
        };
        let env_u64 = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        let mut o = Options {
            keep_going: env_flag("BRANCH_LAB_KEEP_GOING"),
            resume: false,
            timeout: env_u64("BRANCH_LAB_CHILD_TIMEOUT_SECS").map(Duration::from_secs),
            retry_delay: Duration::from_millis(env_u64("BRANCH_LAB_RETRY_DELAY_MS").unwrap_or(500)),
            forwarded: Vec::new(),
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--keep-going" => o.keep_going = true,
                "--resume" => o.resume = true,
                "--timeout-secs" => {
                    let v = args.next().expect("--timeout-secs needs a value");
                    let secs: u64 = v.parse().expect("--timeout-secs must be an integer");
                    o.timeout = Some(Duration::from_secs(secs));
                }
                _ => o.forwarded.push(a),
            }
        }
        o
    }
}

/// Final state of one child binary.
enum Outcome {
    /// Exited 0 on some attempt this run.
    Succeeded,
    /// Checkpoint from an earlier run says it already succeeded.
    Resumed,
    /// Every attempt failed; the detail names the last failure.
    Failed(String),
    /// Never started: an earlier child failed and `--keep-going` was off.
    NotRun,
}

impl Outcome {
    /// Status string used in the summary table and the merged manifest.
    fn status(&self) -> String {
        match self {
            Outcome::Succeeded => "ok".to_string(),
            Outcome::Resumed => "ok (resumed)".to_string(),
            Outcome::Failed(detail) => format!("failed: {detail}"),
            Outcome::NotRun => "not-run".to_string(),
        }
    }
}

struct ChildReport {
    bin: &'static str,
    outcome: Outcome,
    attempts: u32,
    duration: Duration,
}

/// Runs the full sweep with the given (already `skip`ped) argument list.
/// Exits the process with status 1 iff any child ultimately failed.
///
/// # Panics
///
/// Panics on malformed arguments or an unlocatable current executable.
pub fn run_from(args: Vec<String>) {
    let bins = registry().report_names();
    let opts = Options::parse_from(args);
    let trace_dir = std::env::var("BRANCH_LAB_TRACE_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .unwrap_or_else(|| "out/traces".to_owned());
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("exe dir").to_path_buf();

    // The checkpoint lives next to the other run artifacts: in the
    // metrics sink when one is configured, else in the trace dir.
    let checkpoint = bp_metrics::sink_dir()
        .map_or_else(|| PathBuf::from(&trace_dir), Path::to_path_buf)
        .join("all.checkpoint");
    let done: HashSet<String> = if opts.resume {
        load_checkpoint(&checkpoint)
    } else {
        // A fresh (non-resume) run must not inherit stale successes.
        let _ = std::fs::remove_file(&checkpoint);
        HashSet::new()
    };

    let mut reports: Vec<ChildReport> = Vec::with_capacity(bins.len());
    let mut aborted = false;
    for bin in bins {
        if aborted {
            reports.push(ChildReport {
                bin,
                outcome: Outcome::NotRun,
                attempts: 0,
                duration: Duration::ZERO,
            });
            continue;
        }
        if done.contains(bin) {
            println!("\n########## {bin} ########## (skipped: already succeeded)");
            reports.push(ChildReport {
                bin,
                outcome: Outcome::Resumed,
                attempts: 0,
                duration: Duration::ZERO,
            });
            continue;
        }
        println!("\n########## {bin} ##########");
        let started = Instant::now();
        let mut attempts = 0;
        let outcome = loop {
            attempts += 1;
            match run_child(&bin_dir, bin, &opts, &trace_dir) {
                Ok(()) => break Outcome::Succeeded,
                Err(detail) if attempts <= RETRIES => {
                    eprintln!(
                        "all: {bin} failed ({detail}); retrying in {:.1}s",
                        opts.retry_delay.as_secs_f64()
                    );
                    std::thread::sleep(opts.retry_delay);
                }
                Err(detail) => break Outcome::Failed(detail),
            }
        };
        match &outcome {
            Outcome::Succeeded => record_success(&checkpoint, bin),
            Outcome::Failed(detail) => {
                eprintln!("all: {bin} ultimately failed after {attempts} attempts: {detail}");
                if !opts.keep_going {
                    aborted = true;
                }
            }
            Outcome::Resumed | Outcome::NotRun => unreachable!("loop outcomes only"),
        }
        reports.push(ChildReport { bin, outcome, attempts, duration: started.elapsed() });
    }

    print_summary(&reports);
    merge_manifests(&reports);
    if reports.iter().any(|r| matches!(r.outcome, Outcome::Failed(_) | Outcome::NotRun)) {
        std::process::exit(1);
    }
}

/// Runs one attempt of `bin`, enforcing the timeout when one is set.
fn run_child(bin_dir: &Path, bin: &str, opts: &Options, trace_dir: &str) -> Result<(), String> {
    if bp_metrics::faultpoint::should_fail(&format!("all.child.{bin}")) {
        return Err("injected fault: child failure".to_string());
    }
    let mut child = Command::new(bin_dir.join(bin))
        .args(&opts.forwarded)
        .env("BRANCH_LAB_TRACE_DIR", trace_dir)
        .spawn()
        .map_err(|e| format!("failed to launch: {e}"))?;
    let status = match opts.timeout {
        None => child.wait().map_err(|e| format!("wait failed: {e}"))?,
        Some(limit) => {
            let deadline = Instant::now() + limit;
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(format!("timed out after {}s (killed)", limit.as_secs()));
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(25)),
                    Err(e) => return Err(format!("wait failed: {e}")),
                }
            }
        }
    };
    if status.success() {
        Ok(())
    } else {
        Err(status.to_string())
    }
}

fn load_checkpoint(path: &Path) -> HashSet<String> {
    match std::fs::read_to_string(path) {
        Ok(s) => s.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from).collect(),
        Err(_) => HashSet::new(),
    }
}

/// Appends `bin` to the checkpoint. Best-effort: checkpoint I/O failures
/// cost resumability, never the run itself.
fn record_success(path: &Path, bin: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{bin}").and_then(|()| f.flush()));
    if let Err(e) = result {
        eprintln!("all: failed to update checkpoint {}: {e}", path.display());
    }
}

fn print_summary(reports: &[ChildReport]) {
    let mut table = Table::new(vec!["binary", "outcome", "attempts", "seconds"]);
    for r in reports {
        table.row(vec![
            r.bin.to_string(),
            r.outcome.status(),
            r.attempts.to_string(),
            format!("{:.2}", r.duration.as_secs_f64()),
        ]);
    }
    println!("\n== all: per-child summary ==");
    print!("{}", table.render());
}

/// Merges the manifests of every child known to have succeeded (this run
/// or a resumed one) into `<sink>/all.json`, with a `children` status
/// table covering all children — including the failed and not-run ones
/// the merge is missing. Silent no-op when metrics are off; merge
/// problems go to stderr only, so stdout stays byte-identical with and
/// without metrics.
fn merge_manifests(reports: &[ChildReport]) {
    let Some(sink) = bp_metrics::sink_dir() else { return };
    let mut runs = Vec::new();
    for r in reports {
        if !matches!(r.outcome, Outcome::Succeeded | Outcome::Resumed) {
            continue;
        }
        let path = sink.join(format!("{}.json", r.bin));
        match std::fs::read_to_string(&path) {
            Ok(s) => runs.push(s),
            Err(e) => eprintln!("bp-metrics: missing manifest {}: {e}", path.display()),
        }
    }
    let children: Vec<(String, String)> =
        reports.iter().map(|r| (r.bin.to_string(), r.outcome.status())).collect();
    match bp_metrics::merge_manifests_with_children(&runs, &children) {
        Ok(merged) => {
            let path = sink.join("all.json");
            if let Err(e) = std::fs::write(&path, merged + "\n") {
                eprintln!("bp-metrics: failed to write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("bp-metrics: failed to merge manifests: {e}"),
    }
}
