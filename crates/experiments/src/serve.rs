//! `branch-lab serve` — registry-driven study serving over HTTP.
//!
//! The substrate (hardened HTTP/1.1 parsing, the content-addressed
//! two-tier [`ResultCache`], [`Singleflight`] coalescing, the worker-pool
//! [`Server`]) lives in [`bp_core::serve`]; this module supplies the
//! request semantics, because only the experiments crate knows the study
//! registry:
//!
//! * the JSON request schema mirroring the `run` / `sweep` CLI flags;
//! * cache-key derivation ([`study_key`] / [`sweep_key`]) from exactly
//!   the inputs a study is a pure function of — study name, dataset
//!   shape, probe/sweep config, and the workload-suite trace digest
//!   ([`bp_workloads::suite_digest`]);
//! * dispatch through the fault-tolerant executor ([`bp_core::exec`])
//!   with per-request deadlines and cooperative cancellation;
//! * byte-identity: a served body is [`bp_core::Report::render`] output,
//!   which is exactly what the equivalent CLI invocation prints.
//!
//! # Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness: `ok` |
//! | `GET /studies` | the registry as JSON |
//! | `GET /metrics` | counter snapshot as JSON |
//! | `POST /run` | run (or serve cached) one study |
//! | `POST /sweep` | run (or serve cached) a predictor sweep |
//! | `GET /result/<key>` | cached report body by key, no execution |
//! | `GET /result/<key>/manifest` | cached metrics manifest by key |
//!
//! Every `/run`, `/sweep`, and `/result` response carries
//! `X-Branch-Lab-Key` (the content hash) and `X-Branch-Lab-Cache`
//! (`miss` = executed now, `hit` / `hit-disk` = served from cache,
//! `join` = coalesced onto a concurrent identical request).
//!
//! Counters: `serve.exec` (studies actually executed), `serve.dedup_join`
//! (requests coalesced onto an in-flight execution),
//! `serve.deadline_expired` (requests answered 504), plus the
//! `serve.request` / `serve.http_error` / `serve.cache.*` families from
//! the substrate.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bp_core::cancel::CancelToken;
use bp_core::exec::{self, ExecOptions, Outcome, Task};
use bp_core::serve::cache::{CacheEntry, CacheKey, ResultCache, Tier};
use bp_core::serve::http::{Request, Response};
use bp_core::serve::{Flight, Handler, Server, Singleflight};
use bp_core::{DatasetConfig, SamplingConfig, StudyCtx, StudyKind, StudyRegistry};
use bp_metrics::json::{self, Value};
use bp_metrics::{Counter, CounterBaseline};
use bp_predictors::PredictorSpec;
use bp_workloads::{find_workload, suite_digest, workload_names};

use crate::{cli, registry, Cli};

/// Default listen address when neither `--addr` nor
/// `BRANCH_LAB_SERVE_ADDR` is set.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7878";

/// Server configuration, resolved from `BRANCH_LAB_SERVE_*` environment
/// variables with command-line flags taking precedence.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads draining the shared listener.
    pub workers: usize,
    /// Disk tier directory for the result cache; `None` = memory only.
    pub cache_dir: Option<PathBuf>,
    /// Per-tier resident-byte budget; `None` = unbounded.
    pub cache_budget: Option<u64>,
    /// Default per-request execution deadline; a request's
    /// `deadline_secs` field overrides it. `None` = no deadline.
    pub deadline: Option<Duration>,
}

impl ServeOptions {
    /// Resolves options from the environment, then applies `args`
    /// (flags win over environment variables).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags or values.
    #[must_use]
    pub fn resolve(args: Vec<String>) -> ServeOptions {
        let env = |name: &str| std::env::var(name).ok().filter(|v| !v.is_empty());
        let mut opts = ServeOptions {
            addr: env("BRANCH_LAB_SERVE_ADDR").unwrap_or_else(|| DEFAULT_ADDR.to_string()),
            workers: env("BRANCH_LAB_SERVE_WORKERS").map_or_else(default_workers, |v| {
                v.parse().expect("BRANCH_LAB_SERVE_WORKERS must be an integer")
            }),
            cache_dir: env("BRANCH_LAB_SERVE_CACHE_DIR").map(PathBuf::from),
            cache_budget: env("BRANCH_LAB_SERVE_CACHE_BUDGET").map(|v| {
                parse_budget(&v).expect("BRANCH_LAB_SERVE_CACHE_BUDGET must be bytes with optional K/M/G suffix")
            }),
            deadline: None,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--addr" => opts.addr = it.next().expect("--addr needs HOST:PORT"),
                "--workers" => {
                    opts.workers = it
                        .next()
                        .expect("--workers needs a count")
                        .parse()
                        .expect("--workers must be an integer");
                }
                "--cache-dir" => {
                    opts.cache_dir = Some(PathBuf::from(it.next().expect("--cache-dir needs a directory")));
                }
                "--cache-budget" => {
                    let v = it.next().expect("--cache-budget needs bytes (K/M/G suffix ok)");
                    opts.cache_budget =
                        Some(parse_budget(&v).expect("--cache-budget must be bytes with optional K/M/G suffix"));
                }
                "--deadline-secs" => {
                    let secs: u64 = it
                        .next()
                        .expect("--deadline-secs needs a value")
                        .parse()
                        .expect("--deadline-secs must be an integer");
                    opts.deadline = (secs > 0).then(|| Duration::from_secs(secs));
                }
                "--help" | "-h" => {
                    print!("{}", cli::help_text());
                    std::process::exit(0);
                }
                other => panic!(
                    "unknown serve argument {other}; supported: --addr HOST:PORT --workers N \
                     --cache-dir DIR --cache-budget BYTES --deadline-secs N"
                ),
            }
        }
        opts
    }
}

fn default_workers() -> usize {
    // Floor of 2: with one worker, concurrent identical requests would
    // serialize on the accept loop and the singleflight path (and its
    // dedup guarantee) could never engage.
    std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8))
}

/// `512`, `64K`, `8M`, `1G` → bytes (same grammar as
/// `BRANCH_LAB_MEM_BUDGET`).
fn parse_budget(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, shift) = match raw.chars().last()? {
        'k' | 'K' => (&raw[..raw.len() - 1], 10u32),
        'm' | 'M' => (&raw[..raw.len() - 1], 20),
        'g' | 'G' => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_shl(shift).filter(|&b| b > 0)
}

/// Version of the cache-key component schema. Bump whenever the set or
/// meaning of key components changes (a new dimension, a renamed field,
/// a different canonicalization), so entries persisted by an older
/// binary can never alias a newer request that hashes the same bytes by
/// coincidence. History: 1 = original study/sweep components; 2 = added
/// the sampling dimension to study keys.
pub const KEY_SCHEMA_VERSION: u32 = 2;

/// Derives the content-address of one registry study run.
///
/// Components are exactly the inputs the result is a pure function of:
/// the key-schema version, the study name, the dataset shape
/// ([`DatasetConfig`] fields — so two flag spellings of the same dataset
/// share a key), the probe arguments, the *resolved* sampling
/// configuration (so `--sampled` results never collide with full-replay
/// results, while an explicit knob equal to its default shares the
/// default's key), and the workload-suite digest (so changing trace
/// generators invalidates every cached result).
#[must_use]
pub fn study_key(
    study: &str,
    dataset: &DatasetConfig,
    args: &[String],
    sampling: &SamplingConfig,
) -> CacheKey {
    let mut builder = CacheKey::builder()
        .component("schema", KEY_SCHEMA_VERSION)
        .component("kind", "study")
        .component("study", study)
        .component("trace_len", dataset.trace_len)
        .component("slice_len", dataset.slice.len())
        .component(
            "max_inputs",
            dataset.max_inputs.map_or_else(|| "none".to_owned(), |n| n.to_string()),
        )
        .component("args", args.join("\u{1f}"));
    if sampling.enabled {
        let r = sampling.resolve(dataset);
        builder = builder
            .component("sampling", "on")
            .component("sample_interval", r.interval_len)
            .component("sample_warmup", r.warmup)
            .component("sample_phases", r.max_phases);
    } else {
        builder = builder.component("sampling", "off");
    }
    builder.component("traces", format!("{:016x}", suite_digest())).finish()
}

/// Derives the content-address of one predictor sweep.
///
/// Predictor labels must already be canonical ([`PredictorSpec::parse`]
/// then [`PredictorSpec::label`]), so spelling variants of the same
/// predictor share a key. Predictor *order* stays significant — it is
/// row order in the output.
#[must_use]
pub fn sweep_key(workload: &str, labels: &[String], scales: &[u32], len: usize) -> CacheKey {
    let scales: Vec<String> = scales.iter().map(ToString::to_string).collect();
    CacheKey::builder()
        .component("schema", KEY_SCHEMA_VERSION)
        .component("kind", "sweep")
        .component("workload", workload)
        .component("predictors", labels.join(","))
        .component("scales", scales.join(","))
        .component("len", len)
        .component("traces", format!("{:016x}", suite_digest()))
        .finish()
}

/// A parsed `POST /run` body.
#[derive(Debug)]
struct RunRequest {
    study: String,
    cli: Cli,
    deadline: Option<Duration>,
}

/// A parsed `POST /sweep` body.
#[derive(Debug)]
struct SweepRequest {
    workload: String,
    specs: Vec<PredictorSpec>,
    scales: Vec<u32>,
    len: usize,
    deadline: Option<Duration>,
}

/// Rejects unknown fields so schema typos fail loudly instead of
/// silently running the default configuration (and caching it).
fn check_fields(obj: &BTreeMap<String, Value>, allowed: &[&str]) -> Result<(), String> {
    for name in obj.keys() {
        if !allowed.contains(&name.as_str()) {
            return Err(format!(
                "unknown field \"{name}\"; supported: {}",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn field_u64(obj: &BTreeMap<String, Value>, name: &str) -> Result<Option<u64>, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field \"{name}\" must be a non-negative integer")),
    }
}

fn field_bool(obj: &BTreeMap<String, Value>, name: &str) -> Result<bool, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field \"{name}\" must be a boolean")),
    }
}

fn field_str(obj: &BTreeMap<String, Value>, name: &str) -> Result<Option<String>, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| format!("field \"{name}\" must be a string")),
    }
}

/// A list field accepting either a JSON array of strings or one
/// comma-separated string — both CLI habits appear in the wild.
fn field_list(obj: &BTreeMap<String, Value>, name: &str) -> Result<Vec<String>, String> {
    match obj.get(name) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Str(s)) => Ok(s
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect()),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                Value::Num(n) => Ok(n.clone()),
                _ => Err(format!("field \"{name}\" must contain strings")),
            })
            .collect(),
        Some(_) => Err(format!("field \"{name}\" must be an array or comma-separated string")),
    }
}

fn parse_body(body: &[u8]) -> Result<BTreeMap<String, Value>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    value
        .as_obj()
        .cloned()
        .ok_or_else(|| "body must be a JSON object".to_string())
}

fn parse_deadline(obj: &BTreeMap<String, Value>) -> Result<Option<Duration>, String> {
    Ok(field_u64(obj, "deadline_secs")?
        .filter(|&s| s > 0)
        .map(Duration::from_secs))
}

impl RunRequest {
    fn parse(body: &[u8]) -> Result<RunRequest, String> {
        let obj = parse_body(body)?;
        check_fields(
            &obj,
            &[
                "study",
                "len",
                "quick",
                "args",
                "deadline_secs",
                "sampled",
                "sample_interval",
                "sample_warmup",
                "sample_phases",
            ],
        )?;
        let study = field_str(&obj, "study")?.ok_or("missing required field \"study\"")?;
        let len = field_u64(&obj, "len")?;
        if let Some(len) = len {
            if len < 10 {
                return Err("field \"len\" must be at least 10".to_string());
            }
        }
        let mut sampling = SamplingConfig {
            enabled: field_bool(&obj, "sampled")?,
            ..SamplingConfig::disabled()
        };
        sampling.interval_len = field_u64(&obj, "sample_interval")?.map(|n| n as usize);
        sampling.warmup = field_u64(&obj, "sample_warmup")?.map(|n| n as usize);
        if let Some(p) = field_u64(&obj, "sample_phases")? {
            sampling.max_phases = p as usize;
        }
        let cli = Cli {
            len: len.map(|n| n as usize),
            quick: field_bool(&obj, "quick")?,
            csv: None,
            rest: field_list(&obj, "args")?,
            sampling,
        };
        Ok(RunRequest { study, cli, deadline: parse_deadline(&obj)? })
    }
}

impl SweepRequest {
    fn parse(body: &[u8]) -> Result<SweepRequest, String> {
        let obj = parse_body(body)?;
        check_fields(&obj, &["workload", "predictors", "scales", "len", "deadline_secs"])?;
        let workload = field_str(&obj, "workload")?.ok_or("missing required field \"workload\"")?;
        let predictors = field_list(&obj, "predictors")?;
        if predictors.is_empty() {
            return Err("field \"predictors\" must name at least one predictor".to_string());
        }
        let specs = predictors
            .iter()
            .map(|p| PredictorSpec::parse(p).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let scales_raw = field_list(&obj, "scales")?;
        let scales = if scales_raw.is_empty() {
            vec![1]
        } else {
            scales_raw
                .iter()
                .map(|s| s.parse().map_err(|_| format!("bad scale \"{s}\": must be an integer")))
                .collect::<Result<Vec<u32>, _>>()?
        };
        let len = field_u64(&obj, "len")?.map_or(200_000, |n| n as usize);
        if len < 10 {
            return Err("field \"len\" must be at least 10".to_string());
        }
        Ok(SweepRequest { workload, specs, scales, len, deadline: parse_deadline(&obj)? })
    }
}

/// The serve-mode request handler: registry dispatch in front of the
/// content-addressed cache, with singleflight coalescing and executor
/// deadlines.
pub struct StudyService {
    registry: StudyRegistry,
    cache: ResultCache,
    flights: Singleflight<(Arc<CacheEntry>, bool)>,
    default_deadline: Option<Duration>,
    m_exec: Counter,
    m_join: Counter,
    m_deadline: Counter,
}

impl StudyService {
    /// A service over `registry` with the given cache configuration and
    /// default per-request deadline.
    #[must_use]
    pub fn new(
        registry: StudyRegistry,
        cache_dir: Option<PathBuf>,
        cache_budget: Option<u64>,
        default_deadline: Option<Duration>,
    ) -> StudyService {
        StudyService {
            registry,
            cache: ResultCache::new(cache_dir, cache_budget),
            flights: Singleflight::new(),
            default_deadline,
            m_exec: Counter::get("serve.exec"),
            m_join: Counter::get("serve.dedup_join"),
            m_deadline: Counter::get("serve.deadline_expired"),
        }
    }

    /// Serves `key` from cache, or coalesces onto / leads one execution
    /// of `work` through the fault-tolerant executor.
    fn dispatch<F>(&self, key: CacheKey, label: &str, deadline: Option<Duration>, work: F) -> Response
    where
        F: FnOnce(&CancelToken) -> Result<(Vec<u8>, String), String>,
    {
        if let Some((entry, tier)) = self.cache.get(key) {
            let source = match tier {
                Tier::Memory => "hit",
                Tier::Disk => "hit-disk",
            };
            return entry_response(&entry, source);
        }
        let deadline = deadline.or(self.default_deadline);
        let mut work = Some(work);
        let (result, flight) = self.flights.run(key.raw(), || {
            // Double-checked: another leader may have finished (and
            // stored) between our miss and taking the slot.
            if let Some(entry) = self.cache.peek(key) {
                return Ok((entry, false));
            }
            self.m_exec.incr();
            let mut output: Option<(Vec<u8>, String)> = None;
            let mut body = work.take();
            let task = Task::new(label, |token| {
                let run = body.take().expect("executor runs the single attempt once");
                output = Some(run(token)?);
                Ok(())
            });
            let opts = ExecOptions { deadline, ..ExecOptions::default() };
            let report = exec::run(vec![task], &opts)
                .pop()
                .expect("one task in, one report out");
            match report.outcome {
                Outcome::Ok => {
                    let (body, manifest) = output.expect("successful task produced output");
                    Ok((self.cache.store(CacheEntry { key, body, manifest }), true))
                }
                Outcome::Failed(detail) => Err(detail),
                Outcome::Resumed | Outcome::NotRun => Err("task did not run".to_string()),
            }
        });
        if flight == Flight::Joined {
            self.m_join.incr();
        }
        match result {
            Ok((entry, executed)) => {
                let source = match flight {
                    Flight::Joined => "join",
                    Flight::Led if executed => "miss",
                    Flight::Led => "hit",
                };
                entry_response(&entry, source)
            }
            Err(detail) if detail.contains("deadline expired") => {
                self.m_deadline.incr();
                Response::error(504, &format!("deadline expired: {detail}"))
                    .with_header("X-Branch-Lab-Key", &key.hex())
            }
            Err(detail) => Response::error(500, &detail).with_header("X-Branch-Lab-Key", &key.hex()),
        }
    }

    fn run_endpoint(&self, req: &Request) -> Response {
        let parsed = match RunRequest::parse(&req.body) {
            Ok(p) => p,
            Err(e) => return Response::error(400, &e),
        };
        let Some(study) = self.registry.get(&parsed.study) else {
            return Response::error(
                404,
                &format!(
                    "unknown study \"{}\"; available: {}",
                    parsed.study,
                    self.registry.names().join(", ")
                ),
            );
        };
        let info = study.info();
        if info.kind != StudyKind::Probe {
            if let Some(first) = parsed.cli.rest.first() {
                return Response::error(
                    400,
                    &format!("study \"{}\" takes no positional args (got \"{first}\")", info.name),
                );
            }
        }
        let dataset = parsed.cli.dataset();
        let sampling = parsed.cli.sampling;
        let key = study_key(info.name, &dataset, &parsed.cli.rest, &sampling);
        let args = parsed.cli.rest.clone();
        self.dispatch(key, info.name, parsed.deadline, move |token| {
            let baseline = CounterBaseline::take();
            let mut ctx = StudyCtx::with_cancel(dataset, token.clone());
            ctx.args = args;
            ctx.sampling = sampling;
            let report = study.run(&ctx);
            let body = report.render().into_bytes();
            Ok((body, manifest_json(&baseline, info.name, &dataset, key)))
        })
    }

    fn sweep_endpoint(&self, req: &Request) -> Response {
        let parsed = match SweepRequest::parse(&req.body) {
            Ok(p) => p,
            Err(e) => return Response::error(400, &e),
        };
        let Some(spec) = find_workload(&parsed.workload) else {
            return Response::error(
                404,
                &format!(
                    "unknown workload \"{}\"; available: {}",
                    parsed.workload,
                    workload_names().join(", ")
                ),
            );
        };
        let labels: Vec<String> = parsed.specs.iter().map(PredictorSpec::label).collect();
        let key = sweep_key(&spec.name, &labels, &parsed.scales, parsed.len);
        let SweepRequest { specs, scales, len, deadline, .. } = parsed;
        self.dispatch(key, "sweep", deadline, move |_token| {
            let baseline = CounterBaseline::take();
            let report = cli::sweep_report(&spec, &specs, &scales, len);
            let body = report.render().into_bytes();
            let mut info = BTreeMap::new();
            info.insert("workload".to_owned(), spec.name.clone());
            info.insert("len".to_owned(), len.to_string());
            info.insert("key".to_owned(), key.hex());
            info.insert("source".to_owned(), "serve".to_owned());
            Ok((body, baseline.capture_delta("sweep", info).to_json()))
        })
    }

    fn result_endpoint(&self, path: &str) -> Response {
        let rest = path.strip_prefix("/result/").unwrap_or_default();
        let (hex, manifest) = match rest.strip_suffix("/manifest") {
            Some(hex) => (hex, true),
            None => (rest, false),
        };
        let Some(key) = CacheKey::from_hex(hex) else {
            return Response::error(400, "result keys are 16 lower-hex digits");
        };
        let Some((entry, tier)) = self.cache.get(key) else {
            return Response::error(404, &format!("no cached result under {}", key.hex()));
        };
        let source = match tier {
            Tier::Memory => "hit",
            Tier::Disk => "hit-disk",
        };
        if manifest {
            Response::json(entry.manifest.clone().into_bytes())
                .with_header("X-Branch-Lab-Key", &key.hex())
                .with_header("X-Branch-Lab-Cache", source)
        } else {
            entry_response(&entry, source)
        }
    }

    fn studies_endpoint(&self) -> Response {
        let list: Vec<Value> = self
            .registry
            .studies()
            .map(|s| {
                let info = s.info();
                let mut obj = BTreeMap::new();
                obj.insert("name".to_owned(), Value::Str(info.name.to_owned()));
                obj.insert(
                    "kind".to_owned(),
                    Value::Str(
                        match info.kind {
                            StudyKind::Report => "report",
                            StudyKind::Standalone => "standalone",
                            StudyKind::Probe => "probe",
                        }
                        .to_owned(),
                    ),
                );
                obj.insert("title".to_owned(), Value::Str(info.title.to_owned()));
                Value::Obj(obj)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("studies".to_owned(), Value::Arr(list));
        root.insert("workloads".to_owned(), Value::Arr(
            workload_names().into_iter().map(Value::Str).collect(),
        ));
        Response::json(Value::Obj(root).to_json().into_bytes())
    }
}

fn metrics_endpoint() -> Response {
    let mut counters = BTreeMap::new();
    for (name, value) in bp_metrics::snapshot_counters() {
        counters.insert(name, Value::uint(value));
    }
    let mut root = BTreeMap::new();
    root.insert("counters".to_owned(), Value::Obj(counters));
    Response::json(Value::Obj(root).to_json().into_bytes())
}

fn entry_response(entry: &CacheEntry, source: &str) -> Response {
    Response::text(entry.body.clone())
        .with_header("X-Branch-Lab-Key", &entry.key.hex())
        .with_header("X-Branch-Lab-Cache", source)
}

/// The per-request manifest: the same info block `branch-lab run` emits
/// (dataset shape), plus the cache key, captured as a delta so a
/// long-lived server attributes counters to the request that moved them.
fn manifest_json(
    baseline: &CounterBaseline,
    study: &str,
    dataset: &DatasetConfig,
    key: CacheKey,
) -> String {
    let mut info = BTreeMap::new();
    info.insert("trace_len".to_owned(), dataset.trace_len.to_string());
    info.insert("slice_len".to_owned(), dataset.slice.len().to_string());
    info.insert(
        "max_inputs".to_owned(),
        dataset.max_inputs.map_or_else(|| "none".to_owned(), |n| n.to_string()),
    );
    info.insert("key".to_owned(), key.hex());
    info.insert("source".to_owned(), "serve".to_owned());
    baseline.capture_delta(study, info).to_json()
}

impl Handler for StudyService {
    fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text("ok\n"),
            ("GET", "/studies") => self.studies_endpoint(),
            ("GET", "/metrics") => metrics_endpoint(),
            ("POST", "/run") => self.run_endpoint(req),
            ("POST", "/sweep") => self.sweep_endpoint(req),
            ("GET", path) if path.starts_with("/result/") => self.result_endpoint(path),
            ("POST" | "PUT" | "DELETE", "/healthz" | "/studies" | "/metrics")
            | ("GET" | "PUT" | "DELETE", "/run" | "/sweep") => {
                Response::error(405, &format!("method {} not allowed on {}", req.method, req.path))
            }
            _ => Response::error(404, &format!("no route for {} {}", req.method, req.path)),
        }
    }
}

/// The `branch-lab serve` entry point: resolve options, bind, announce,
/// serve forever.
pub fn run_from(args: Vec<String>) {
    let opts = ServeOptions::resolve(args);
    // The serve.* counters are the operational surface (`GET /metrics`);
    // they must count even when BRANCH_LAB_METRICS is unset.
    bp_metrics::force_enable();
    let service = Arc::new(StudyService::new(
        registry::registry(),
        opts.cache_dir.clone(),
        opts.cache_budget,
        opts.deadline,
    ));
    let server = match Server::bind(&opts.addr, opts.workers, service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("branch-lab serve: cannot bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!(
        "branch-lab serve: listening on http://{} ({} workers, cache: {})",
        server.local_addr(),
        opts.workers,
        opts.cache_dir
            .as_ref()
            .map_or_else(|| "memory-only".to_owned(), |d| d.display().to_string()),
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_grammar_matches_mem_budget() {
        assert_eq!(parse_budget("512"), Some(512));
        assert_eq!(parse_budget("4K"), Some(4096));
        assert_eq!(parse_budget(" 2m "), Some(2 << 20));
        assert_eq!(parse_budget("1G"), Some(1 << 30));
        assert_eq!(parse_budget("0"), None);
        assert_eq!(parse_budget("lots"), None);
    }

    #[test]
    fn run_request_rejects_unknown_fields_and_bad_values() {
        assert!(RunRequest::parse(b"{\"study\": \"fig3\"}").is_ok());
        assert!(RunRequest::parse(b"not json").is_err());
        assert!(RunRequest::parse(b"{}").unwrap_err().contains("study"));
        assert!(RunRequest::parse(b"{\"study\": \"fig3\", \"typo\": 1}")
            .unwrap_err()
            .contains("unknown field"));
        assert!(RunRequest::parse(b"{\"study\": \"fig3\", \"len\": 3}")
            .unwrap_err()
            .contains("at least 10"));
    }

    #[test]
    fn sweep_request_accepts_both_list_spellings() {
        let a = SweepRequest::parse(
            b"{\"workload\": \"w\", \"predictors\": \"gshare, bimodal\", \"scales\": \"1,4\"}",
        )
        .unwrap();
        let b = SweepRequest::parse(
            b"{\"workload\": \"w\", \"predictors\": [\"gshare\", \"bimodal\"], \"scales\": [1, 4]}",
        )
        .unwrap();
        assert_eq!(a.specs.len(), 2);
        assert_eq!(a.scales, vec![1, 4]);
        assert_eq!(b.scales, a.scales);
        assert_eq!(a.len, 200_000);
    }

    #[test]
    fn keys_canonicalize_datasets_not_flag_spellings() {
        // `--len 1000000` and the standard default describe the same
        // dataset; the keys must agree because they derive from the
        // resolved `DatasetConfig`, not the flag spelling.
        let off = SamplingConfig::disabled();
        let plain = Cli::default();
        let spelled = Cli { len: Some(1_000_000), ..Cli::default() };
        assert_eq!(
            study_key("fig3", &plain.dataset(), &[], &off),
            study_key("fig3", &spelled.dataset(), &[], &off)
        );
        // But a different study, dataset scale, or argument list never
        // collides.
        let base = study_key("fig3", &plain.dataset(), &[], &off);
        let quick = Cli { quick: true, ..Cli::default() };
        assert_ne!(base, study_key("fig1", &plain.dataset(), &[], &off));
        assert_ne!(base, study_key("fig3", &quick.dataset(), &[], &off));
        assert_ne!(base, study_key("fig3", &plain.dataset(), &["600".to_owned()], &off));
    }

    #[test]
    fn sampling_is_a_key_dimension_with_resolved_canonicalization() {
        let dataset = Cli::default().dataset();
        let off = SamplingConfig::disabled();
        let on = SamplingConfig::enabled();
        // Sampled and full runs of the same study must never share a
        // cache entry.
        let full = study_key("sampled", &dataset, &[], &off);
        let sampled = study_key("sampled", &dataset, &[], &on);
        assert_ne!(full, sampled);
        // Spelling the resolved defaults explicitly is the same request.
        let resolved = on.resolve(&dataset);
        let explicit = SamplingConfig {
            interval_len: Some(resolved.interval_len),
            warmup: Some(resolved.warmup),
            ..on
        };
        assert_eq!(sampled, study_key("sampled", &dataset, &[], &explicit));
        // Any resolved knob change is a different result.
        let coarser = SamplingConfig { interval_len: Some(resolved.interval_len * 2), ..on };
        assert_ne!(sampled, study_key("sampled", &dataset, &[], &coarser));
        let fewer = SamplingConfig { max_phases: 2, ..on };
        assert_ne!(sampled, study_key("sampled", &dataset, &[], &fewer));
        // Sampling knobs without `enabled` stay latent — same key as off.
        let latent = SamplingConfig { interval_len: Some(12_345), ..off };
        assert_eq!(full, study_key("sampled", &dataset, &[], &latent));
    }

    #[test]
    fn run_request_parses_sampling_fields() {
        let req = RunRequest::parse(
            b"{\"study\": \"sampled\", \"sampled\": true, \"sample_interval\": 5000, \
              \"sample_phases\": 3}",
        )
        .unwrap();
        assert!(req.cli.sampling.enabled);
        assert_eq!(req.cli.sampling.interval_len, Some(5000));
        assert_eq!(req.cli.sampling.warmup, None);
        assert_eq!(req.cli.sampling.max_phases, 3);
        let err = RunRequest::parse(b"{\"study\": \"sampled\", \"sample_intervel\": 1}")
            .unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
    }
}
