//! Report functions for the figure/table studies with shared pipeline
//! sweeps (Figs. 1–3, 5, 7–9, Tables I–II).
//!
//! Each `*_report` function runs one table/figure's full computation and
//! returns a [`Report`] — an ordered list of sections (heading + named
//! table) and free-form note lines. [`Report::render`] reproduces the
//! study's stdout byte-for-byte (without `--csv`), which is what the
//! golden-master suite in `tests/golden.rs` snapshots; the CLI
//! dispatcher goes through [`crate::Cli::emit_report`], which
//! additionally handles CSV output. Keeping the logic here means a
//! golden test exercises exactly the code `branch-lab run` ships. The
//! remaining studies (Figs. 4, 6, 10, Table III, ablations, probes) live
//! in [`crate::studies`].

use bp_analysis::{
    paper_equivalent, rank_heavy_hitters, top_n_fraction, BinSpec, BranchProfile, H2pCriteria,
    RecurrenceAnalysis,
};
use bp_core::{
    characterize_workload, f3, hetero_grid_study, pct, rare_oracle_study, scaling_study,
    storage_scaling_study, DatasetConfig, Table,
};
use bp_predictors::TageScL;
use bp_trace::SliceConfig;
use bp_workloads::{lcf_suite, specint_suite};

/// Re-exported from `bp-core`, where the registry's [`bp_core::Study`]
/// trait returns them; legacy paths `reports::Report` / `ReportItem`
/// keep working.
pub use bp_core::{Report, ReportItem};

/// Table I: SPECint 2017 dataset summary under TAGE-SC-L 8KB.
#[must_use]
pub fn table1_report(cfg: &DatasetConfig) -> Report {
    let mut table = Table::new(vec![
        "benchmark",
        "avg-phases",
        "static-br-total",
        "static-br-med/slice",
        "avg-acc",
        "acc-excl-h2p",
        "inputs",
        "h2p-total",
        "h2p-3+inputs",
        "h2p-avg/input",
        "h2p-avg/slice",
        "h2p-execs/slice",
        "h2p-mispred-share",
    ]);
    let mut means = [0.0f64; 12];
    let suite = specint_suite();
    for spec in &suite {
        let c = characterize_workload(spec, cfg, TageScL::kb8);
        let cells = [
            c.avg_phases,
            c.total_static_branches as f64,
            c.median_static_per_slice as f64,
            c.avg_accuracy,
            c.avg_accuracy_excl_h2p,
            f64::from(cfg.inputs_for(spec.inputs)),
            c.h2p_union.len() as f64,
            c.h2p_3plus_inputs as f64,
            c.avg_h2p_per_input,
            c.avg_h2p_per_slice,
            c.avg_h2p_execs_per_slice,
            c.avg_h2p_mispredict_share,
        ];
        for (m, v) in means.iter_mut().zip(cells) {
            *m += v / suite.len() as f64;
        }
        table.row(vec![
            c.name.clone(),
            format!("{:.1}", cells[0]),
            format!("{}", c.total_static_branches),
            format!("{}", c.median_static_per_slice),
            f3(cells[3]),
            f3(cells[4]),
            format!("{}", cells[5] as u64),
            format!("{}", c.h2p_union.len()),
            format!("{}", c.h2p_3plus_inputs),
            format!("{:.1}", cells[8]),
            format!("{:.1}", cells[9]),
            format!("{:.0}", cells[10]),
            pct(cells[11]),
        ]);
    }
    table.row(vec![
        "MEAN".into(),
        format!("{:.1}", means[0]),
        format!("{:.0}", means[1]),
        format!("{:.0}", means[2]),
        f3(means[3]),
        f3(means[4]),
        format!("{:.1}", means[5]),
        format!("{:.0}", means[6]),
        format!("{:.1}", means[7]),
        format!("{:.1}", means[8]),
        format!("{:.1}", means[9]),
        format!("{:.0}", means[10]),
        pct(means[11]),
    ]);
    let mut report = Report::new();
    report.section(
        "Table I: SPECint 2017 dataset summary (TAGE-SC-L 8KB)",
        "table1",
        table,
    );
    report
}

/// Table II: LCF application branch statistics under TAGE-SC-L 8KB.
#[must_use]
pub fn table2_report(cfg: &DatasetConfig) -> Report {
    let mut table = Table::new(vec![
        "application",
        "static-branch-ips",
        "avg-execs/static",
        "avg-acc/static",
        "h2ps",
        "agg-acc",
    ]);
    let mut means = [0.0f64; 4];
    let suite = lcf_suite();
    for spec in &suite {
        // The paper analyzes each LCF app as one 30M-instruction trace;
        // we use the whole trace as a single slice.
        let trace = spec.cached_trace(0, cfg.trace_len);
        let whole = SliceConfig::new(cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let profile = BranchProfile::collect(&mut bpu, trace.insts());
        let h2ps = H2pCriteria::paper().screen(&profile, whole);
        let cells = [
            profile.static_branch_count() as f64,
            profile.mean_execs_per_static_branch(),
            profile.mean_accuracy_per_static_branch(),
            h2ps.len() as f64,
        ];
        for (m, v) in means.iter_mut().zip(cells) {
            *m += v / suite.len() as f64;
        }
        table.row(vec![
            spec.name.clone(),
            format!("{}", profile.static_branch_count()),
            format!("{:.1}", cells[1]),
            f3(cells[2]),
            format!("{}", h2ps.len()),
            f3(profile.accuracy()),
        ]);
    }
    table.row(vec![
        "MEAN".into(),
        format!("{:.0}", means[0]),
        format!("{:.1}", means[1]),
        f3(means[2]),
        format!("{:.1}", means[3]),
        String::new(),
    ]);
    let mut report = Report::new();
    report.section(
        "Table II: LCF application branch statistics (TAGE-SC-L 8KB)",
        "table2",
        table,
    );
    report.note(
        "(paper means: 14,072 static IPs; 612.8 execs/static; 0.85 accuracy; 5.2 H2Ps — \
         static counts scale with trace length, ratios should match)",
    );
    report
}

/// Fig. 1: IPC vs pipeline capacity scaling for the SPECint suite.
#[must_use]
pub fn fig1_report(cfg: &DatasetConfig) -> Report {
    let study = scaling_study(&specint_suite(), cfg);
    let mut table = Table::new(vec![
        "scale",
        "TAGE-SC-L 8KB",
        "TAGE-SC-L 64KB",
        "Perfect H2Ps",
        "Perfect BP",
        "opportunity (perfect/tage8)",
    ]);
    for (si, &scale) in study.scales.iter().enumerate() {
        let v = |label: &str| {
            study
                .series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.relative_ipc[si])
                .unwrap_or(f64::NAN)
        };
        let tage8 = v("TAGE-SC-L 8KB");
        let perfect = v("Perfect BP");
        table.row(vec![
            format!("{scale}x"),
            f3(tage8),
            f3(v("TAGE-SC-L 64KB")),
            f3(v("Perfect H2Ps")),
            f3(perfect),
            f3(perfect / tage8),
        ]);
    }
    let mut report = Report::new();
    report.section(
        "Fig. 1: IPC vs pipeline capacity scaling, SPECint suite",
        "fig1",
        table,
    );
    // The paper's headline numbers for comparison.
    let at = |label: &str, scale: u32| study.value(label, scale);
    report.note(format!(
        "IPC opportunity at 1x: {:.1}% (paper: 18.5%)   at 4x: {:.1}% (paper: 55.3%)",
        (at("Perfect BP", 1) / at("TAGE-SC-L 8KB", 1) - 1.0) * 100.0,
        (at("Perfect BP", 4) / at("TAGE-SC-L 8KB", 4) - 1.0) * 100.0,
    ));
    report.note(format!(
        "H2P share of the 1x opportunity: {:.1}% (paper: 75.7%)",
        (at("Perfect H2Ps", 1) - 1.0) / (at("Perfect BP", 1) - 1.0).max(1e-9) * 100.0
    ));
    report
}

/// Fig. 2: cumulative misprediction share of the n-th H2P heavy hitter.
#[must_use]
pub fn fig2_report(cfg: &DatasetConfig) -> Report {
    let ns = [1usize, 2, 3, 5, 10, 20, 50];
    let mut headers = vec!["benchmark".to_owned()];
    headers.extend(ns.iter().map(|n| format!("top-{n}")));
    let mut table = Table::new(headers.iter().map(String::as_str).collect());
    let mut top5_sum = 0.0;
    let suite = specint_suite();
    for spec in &suite {
        let c = characterize_workload(spec, cfg, TageScL::kb8);
        // Merge profiles across inputs; rank the H2P union by executions.
        let mut merged = BranchProfile::new();
        for ic in &c.inputs {
            merged.merge(&ic.profile);
        }
        let hitters = rank_heavy_hitters(&merged, c.h2p_union.iter().copied());
        top5_sum += top_n_fraction(&hitters, 5);
        let mut row = vec![c.name.clone()];
        row.extend(
            ns.iter()
                .map(|&n| format!("{:.3}", top_n_fraction(&hitters, n))),
        );
        table.row(row);
    }
    let mut report = Report::new();
    report.section(
        "Fig. 2: cumulative fraction of TAGE8 mispredictions vs n-th H2P heavy hitter",
        "fig2",
        table,
    );
    report.note(format!(
        "Top-5 heavy hitters own {:.1}% of mispredictions on average (paper: 37%)",
        top5_sum / suite.len() as f64 * 100.0
    ));
    report
}

/// Fig. 3: misprediction / execution / accuracy distributions over the
/// static branches of the LCF dataset.
#[must_use]
pub fn fig3_report(cfg: &DatasetConfig) -> Report {
    // Pool per-branch stats across all LCF applications, in
    // paper-equivalent counts.
    let mut mispredicts = Vec::new();
    let mut execs = Vec::new();
    let mut accuracy = Vec::new();
    for spec in &lcf_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let profile = BranchProfile::collect(&mut bpu, trace.insts());
        let window = profile.instructions;
        for (_, s) in profile.iter() {
            mispredicts.push(paper_equivalent(s.mispredicts, window));
            execs.push(paper_equivalent(s.execs, window));
            accuracy.push(s.accuracy());
        }
    }

    let mut report = Report::new();
    let specs = [
        ("mispredictions", BinSpec::mispredictions(), &mispredicts),
        ("executions", BinSpec::executions(), &execs),
        ("accuracy", BinSpec::accuracy(), &accuracy),
    ];
    for (name, bins, values) in specs {
        let h = bins.histogram(values.iter().copied());
        let mut table = Table::new(vec!["bin", "fraction of static IPs"]);
        for (label, frac) in h.labels().iter().zip(h.fractions()) {
            table.row(vec![label.clone(), format!("{frac:.4}")]);
        }
        report.section(
            format!("Fig. 3 ({name}) over {} static branch IPs", h.total()),
            format!("fig3_{name}"),
            table,
        );
    }

    // The paper's headline fractions.
    let exec_h = BinSpec::executions().histogram(execs.iter().copied());
    let acc_h = BinSpec::accuracy().histogram(accuracy.iter().copied());
    report.note(format!(
        "\nbranches with <100 paper-equivalent executions: {:.1}% (paper: 85%)",
        exec_h.fraction_of("0-100") * 100.0
    ));
    report.note(format!(
        "branches with accuracy >= 0.99: {:.1}% (paper: 55%)",
        acc_h.fraction_of("0.99-1") * 100.0
    ));
    report.note(format!(
        "branches with accuracy <= 0.10: {:.1}% (paper: 12%)",
        acc_h.fraction_of("0.00-0.10") * 100.0
    ));
    report
}

/// Fig. 5: IPC vs pipeline capacity scaling for the LCF suite.
#[must_use]
pub fn fig5_report(cfg: &DatasetConfig) -> Report {
    let study = scaling_study(&lcf_suite(), cfg);
    let mut table = Table::new(vec![
        "scale",
        "TAGE-SC-L 8KB",
        "TAGE-SC-L 64KB",
        "Perfect H2Ps",
        "Perfect BP",
        "h2p share of opportunity",
    ]);
    for (si, &scale) in study.scales.iter().enumerate() {
        let v = |label: &str| {
            study
                .series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.relative_ipc[si])
                .unwrap_or(f64::NAN)
        };
        let share = (v("Perfect H2Ps") - v("TAGE-SC-L 8KB"))
            / (v("Perfect BP") - v("TAGE-SC-L 8KB")).max(1e-9);
        table.row(vec![
            format!("{scale}x"),
            f3(v("TAGE-SC-L 8KB")),
            f3(v("TAGE-SC-L 64KB")),
            f3(v("Perfect H2Ps")),
            f3(v("Perfect BP")),
            format!("{:.1}%", share * 100.0),
        ]);
    }
    let mut report = Report::new();
    report.section(
        "Fig. 5: IPC vs pipeline capacity scaling, LCF suite (paper: H2P share 37.8% at 1x, 33.7% at 32x)",
        "fig5",
        table,
    );
    report
}

/// Fig. 7: fraction of the TAGE8→perfect IPC gap closed by storage.
#[must_use]
pub fn fig7_report(cfg: &DatasetConfig) -> Report {
    let study = storage_scaling_study(&lcf_suite(), cfg);
    let mut report = Report::new();
    for (si, &scale) in study.scales.iter().enumerate() {
        let mut headers = vec!["application".to_owned()];
        headers.extend(study.storages_kb.iter().map(|kb| format!("TAGE{kb}")));
        let mut table = Table::new(headers.iter().map(String::as_str).collect());
        let mut maxima = 0.0f64;
        for row in &study.rows {
            let mut cells = vec![row.name.clone()];
            for &v in &row.gap_closed[si] {
                cells.push(format!("{v:.3}"));
                maxima = maxima.max(v);
            }
            table.row(cells);
        }
        report.section(
            format!("Fig. 7 ({scale}x pipeline): fraction of TAGE8→perfect IPC gap closed"),
            format!("fig7_{scale}x"),
            table,
        );
        if scale == 32 {
            report.note(format!(
                "max fraction closed at 32x: {:.2} (paper: at most 0.34 — storage alone cannot rescue rare branches)",
                maxima
            ));
        }
    }
    report
}

/// Fig. 8: IPC opportunity remaining after perfectly predicting all
/// branches above a dynamic-execution threshold.
#[must_use]
pub fn fig8_report(cfg: &DatasetConfig) -> Report {
    let rows = rare_oracle_study(&lcf_suite(), cfg);
    let mut table = Table::new(vec![
        "application",
        "remaining after perfect >1000",
        "remaining after perfect >100",
    ]);
    let mut m1000 = 0.0;
    let mut m100 = 0.0;
    for r in &rows {
        m1000 += r.remaining_after_1000 / rows.len() as f64;
        m100 += r.remaining_after_100 / rows.len() as f64;
        table.row(vec![
            r.name.clone(),
            format!("{:.3}", r.remaining_after_1000),
            format!("{:.3}", r.remaining_after_100),
        ]);
    }
    table.row(vec![
        "MEAN".into(),
        format!("{m1000:.3}"),
        format!("{m100:.3}"),
    ]);
    let mut report = Report::new();
    report.section(
        "Fig. 8: fraction of TAGE8 IPC opportunity remaining (TAGE-SC-L 1024KB + exec-count oracle)",
        "fig8",
        table,
    );
    report.note("(paper means: 34.3% after perfect >1000; 27.4% after perfect >100)");
    report
}

/// Fig. 9: median recurrence interval distribution over LCF static IPs.
#[must_use]
pub fn fig9_report(cfg: &DatasetConfig) -> Report {
    // Pool per-IP medians across the whole dataset, as the paper does.
    let mut fractions_sum: Vec<f64> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut total_ips = 0u64;
    let napps = lcf_suite().len() as f64;
    for spec in &lcf_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let rec = RecurrenceAnalysis::compute(&trace);
        let h = rec.histogram(trace.len() as u64);
        total_ips += h.total();
        if labels.is_empty() {
            labels = h.labels().to_vec();
            fractions_sum = vec![0.0; labels.len()];
        }
        for (acc, f) in fractions_sum.iter_mut().zip(h.fractions()) {
            *acc += f / napps;
        }
    }
    let mut table = Table::new(vec![
        "MRI bin (paper-equiv instructions)",
        "fraction of static IPs",
    ]);
    for (label, frac) in labels.iter().zip(&fractions_sum) {
        table.row(vec![label.clone(), format!("{frac:.4}")]);
    }
    let mut report = Report::new();
    report.section(
        format!("Fig. 9: median recurrence interval distribution over {total_ips} static IPs (LCF)"),
        "fig9",
        table,
    );
    let peak = labels
        .iter()
        .zip(&fractions_sum)
        .skip(1) // ignore the singleton 0-1 bin, as the paper does
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(l, _)| l.clone())
        .unwrap_or_default();
    report.note(format!("peak bin (excluding singletons): {peak} (paper: 100K-1M)"));
    report
}

/// Heterogeneous predictor grid: every [`bp_predictors::PredictorSpec`]
/// in the grid lineup at every pipeline scale, one single-pass sweep per
/// workload.
#[must_use]
pub fn grid_report(cfg: &DatasetConfig) -> Report {
    let study = hetero_grid_study(&lcf_suite(), cfg);
    let labels: Vec<String> = study.specs.iter().map(|s| s.label()).collect();
    let mut report = Report::new();
    for (si, &scale) in study.scales.iter().enumerate() {
        let mut headers = vec!["application".to_owned()];
        headers.extend(labels.iter().cloned());
        let mut table = Table::new(headers.iter().map(String::as_str).collect());
        for row in &study.rows {
            let mut cells = vec![row.name.clone()];
            cells.extend(row.ipc[si].iter().map(|&v| f3(v)));
            table.row(cells);
        }
        report.section(
            format!("Grid ({scale}x pipeline): IPC per predictor lane"),
            format!("grid_{scale}x"),
            table,
        );
    }
    let mut headers = vec!["application".to_owned()];
    headers.extend(labels.iter().cloned());
    let mut mpki_table = Table::new(headers.iter().map(String::as_str).collect());
    for row in &study.rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.mpki.iter().map(|&v| format!("{v:.2}")));
        mpki_table.row(cells);
    }
    report.section(
        "Grid: mispredictions per kilo-instruction (scale-independent)",
        "grid_mpki",
        mpki_table,
    );
    report.note(format!(
        "single pass per workload: {} predictor lanes trained in one lockstep walk, {} scales replayed from one prepared trace ({} cells)",
        study.specs.len(),
        study.scales.len(),
        study.specs.len() * study.scales.len(),
    ));
    report
}
