//! The canonical study registry: every table, figure, ablation and probe
//! this crate implements, in presentation order.
//!
//! [`registry`] is the single source of truth for the `branch-lab` CLI —
//! `list` prints it, `run` dispatches through it, and the `all` runner
//! derives its child list from [`StudyRegistry::report_names`]. Adding a
//! study here is all it takes to appear in every surface; the
//! completeness test in `tests/registry.rs` pins the order the `all`
//! checkpoint/resume format and `ci.sh` depend on.

use bp_core::{FnStudy, Report, StudyCtx, StudyInfo, StudyKind, StudyRegistry};

use crate::{reports, studies};

/// Convenience: registers a [`StudyKind::Report`] study that computes
/// from the dataset alone.
fn report(
    reg: &mut StudyRegistry,
    name: &'static str,
    title: &'static str,
    run: impl Fn(&StudyCtx) -> Report + Send + Sync + 'static,
) {
    reg.register(Box::new(FnStudy::new(
        StudyInfo {
            name,
            title,
            kind: StudyKind::Report,
        },
        run,
    )));
}

/// Builds the full registry: the sixteen paper artifacts in publication
/// order, then the diagnostic probes.
#[must_use]
pub fn registry() -> StudyRegistry {
    let mut reg = StudyRegistry::new();
    report(
        &mut reg,
        "table1",
        "Table I: SPECint 2017 dataset statistics under TAGE-SC-L 8KB",
        |ctx| reports::table1_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig1",
        "Fig. 1: IPC speedup from perfect branch prediction by pipeline scale",
        |ctx| reports::fig1_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig2",
        "Fig. 2: accuracy and H2P coverage vs number of application inputs",
        |ctx| reports::fig2_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "table2",
        "Table II: LCF dataset statistics under TAGE-SC-L 8KB",
        |ctx| reports::table2_report(&ctx.dataset),
    );
    reg.register(Box::new(FnStudy::new(
        StudyInfo {
            name: "baselines",
            title: "\u{a7}II survey: predictor generations compared at similar storage",
            kind: StudyKind::Standalone,
        },
        |ctx| studies::baselines_report(&ctx.dataset),
    )));
    reg.register(Box::new(FnStudy::new(
        StudyInfo {
            name: "grid",
            title: "Heterogeneous grid: every predictor lane at every pipeline scale, one pass per workload",
            kind: StudyKind::Standalone,
        },
        |ctx| reports::grid_report(&ctx.dataset),
    )));
    report(
        &mut reg,
        "fig3",
        "Fig. 3: misprediction concentration among H2P branches",
        |ctx| reports::fig3_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig4",
        "Fig. 4: accuracy spread of rare branches (LCF dataset)",
        |ctx| studies::fig4_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig5",
        "Fig. 5: IPC poisoning from individual H2P branches",
        |ctx| reports::fig5_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "table3",
        "Table III: dependency branches of the top H2P heavy hitter",
        |ctx| studies::table3_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig6",
        "Fig. 6: history positions of dependency branches for top H2Ps",
        |ctx| studies::fig6_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "alloc_stats",
        "\u{a7}IV-A: TAGE-SC-L allocation statistics, H2P vs non-H2P",
        |ctx| studies::alloc_stats_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig7",
        "Fig. 7: IPC gap closed by scaling TAGE-SC-L storage (LCF)",
        |ctx| reports::fig7_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig8",
        "Fig. 8: IPC recovered by perfecting H2Ps at fixed 8KB storage",
        |ctx| reports::fig8_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig9",
        "Fig. 9: IPC from perfecting rare branches below execution thresholds",
        |ctx| reports::fig9_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "fig10",
        "Fig. 10: register-value distributions preceding top H2Ps",
        |ctx| studies::fig10_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "helpers",
        "\u{a7}V: CNN and phase-conditioned helper predictors end-to-end",
        |ctx| studies::helpers_report(&ctx.dataset),
    );
    report(
        &mut reg,
        "ablation",
        "Ablations: TAGE-SC-L components, history length, aging, CNN precision",
        |ctx| studies::ablation_report(&ctx.dataset),
    );
    reg.register(Box::new(FnStudy::new(
        StudyInfo {
            name: "sampled",
            title: "Sampled replay: SimPoint-style weighted MPKI/IPC vs full-replay goldens",
            kind: StudyKind::Standalone,
        },
        |ctx| studies::sampled_report(&ctx.dataset, &ctx.sampling),
    )));
    reg.register(Box::new(FnStudy::new(
        StudyInfo {
            name: "calibrate",
            title: "Probe: per-workload accuracy/branch statistics ([len])",
            kind: StudyKind::Probe,
        },
        |ctx| {
            let len = ctx
                .args
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(500_000);
            studies::calibrate_report(len)
        },
    )));
    reg.register(Box::new(FnStudy::new(
        StudyInfo {
            name: "debug_ipc",
            title: "Probe: absolute IPC per scale for one workload ([which] [len])",
            kind: StudyKind::Probe,
        },
        |ctx| {
            let which = ctx.args.first().map_or("1", String::as_str);
            let len = ctx
                .args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(500_000);
            studies::debug_ipc_report(which, len)
        },
    )));
    reg
}
