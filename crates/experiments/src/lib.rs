//! Study implementations and the `branch-lab` CLI.
//!
//! Every table and figure of the paper is a [`bp_core::Study`] registered
//! in [`registry::registry`]; the `branch-lab` binary dispatches to them
//! (`branch-lab list` / `run <study>` / `all` / `sweep`), and the
//! per-study binaries (`fig1`, `table2`, …) are one-line shims over the
//! same dispatcher ([`cli::study_shim`]). All argument parsing lives in
//! [`Cli`]; run `branch-lab --help` for the single help surface that
//! documents the flags and environment variables once.

#![warn(missing_docs)]

use std::path::PathBuf;

use bp_core::{DatasetConfig, Report, ReportItem, SamplingConfig, Table};

pub mod all_runner;
pub mod cli;
pub mod registry;
pub mod reports;
pub mod serve;
pub mod studies;

/// Parsed command-line options shared by every study invocation.
#[derive(Clone, Debug, Default)]
pub struct Cli {
    /// Override for instructions per trace.
    pub len: Option<usize>,
    /// Use the reduced [`DatasetConfig::quick`] scale.
    pub quick: bool,
    /// Directory for CSV output.
    pub csv: Option<PathBuf>,
    /// Positional arguments (consumed by probe studies such as
    /// `calibrate`; rejected by report studies).
    pub rest: Vec<String>,
    /// Sampled-replay options (`--sampled` and friends; environment
    /// defaults come from `BRANCH_LAB_SAMPLE*`, flags win).
    pub sampling: SamplingConfig,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        Cli::parse_from(std::env::args().skip(1))
    }

    /// Sampling options taken from the environment: `BRANCH_LAB_SAMPLE=1`
    /// enables sampling, `BRANCH_LAB_SAMPLE_INTERVAL` /
    /// `BRANCH_LAB_SAMPLE_WARMUP` / `BRANCH_LAB_SAMPLE_PHASES` override
    /// the knobs. Command-line flags win over the environment.
    ///
    /// # Panics
    ///
    /// Panics if a numeric variable holds a non-integer.
    #[must_use]
    pub fn sampling_from_env() -> SamplingConfig {
        let num = |name: &str| -> Option<usize> {
            std::env::var(name)
                .ok()
                .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} must be an integer")))
        };
        let mut s = SamplingConfig::disabled();
        if let Ok(v) = std::env::var("BRANCH_LAB_SAMPLE") {
            s.enabled = !matches!(v.as_str(), "" | "0" | "false" | "off");
        }
        s.interval_len = num("BRANCH_LAB_SAMPLE_INTERVAL");
        s.warmup = num("BRANCH_LAB_SAMPLE_WARMUP");
        if let Some(p) = num("BRANCH_LAB_SAMPLE_PHASES") {
            s.max_phases = p;
        }
        s
    }

    /// Parses an explicit argument list (no binary name).
    ///
    /// `--help` prints the shared help text and exits. Unknown `--flags`
    /// panic with a usage message; bare arguments collect into
    /// [`Cli::rest`] for probe studies.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = Cli {
            sampling: Cli::sampling_from_env(),
            ..Cli::default()
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--len" => {
                    let v = args.next().expect("--len needs a value");
                    cli.len = Some(v.parse().expect("--len must be an integer"));
                }
                "--quick" => cli.quick = true,
                "--csv" => {
                    let v = args.next().expect("--csv needs a directory");
                    cli.csv = Some(PathBuf::from(v));
                }
                "--sampled" => cli.sampling.enabled = true,
                "--sample-interval" => {
                    let v = args.next().expect("--sample-interval needs a value");
                    cli.sampling.interval_len =
                        Some(v.parse().expect("--sample-interval must be an integer"));
                }
                "--sample-warmup" => {
                    let v = args.next().expect("--sample-warmup needs a value");
                    cli.sampling.warmup =
                        Some(v.parse().expect("--sample-warmup must be an integer"));
                }
                "--sample-phases" => {
                    let v = args.next().expect("--sample-phases needs a value");
                    cli.sampling.max_phases =
                        v.parse().expect("--sample-phases must be an integer");
                }
                "--help" | "-h" => {
                    print!("{}", cli::help_text());
                    std::process::exit(0);
                }
                other if other.starts_with('-') => {
                    panic!(
                        "unknown argument {other}; supported: --len N --quick --csv DIR \
                         --sampled --sample-interval N --sample-warmup N --sample-phases N"
                    )
                }
                other => cli.rest.push(other.to_owned()),
            }
        }
        cli
    }

    /// The dataset configuration implied by the options.
    #[must_use]
    pub fn dataset(&self) -> DatasetConfig {
        let base = if self.quick {
            DatasetConfig::quick()
        } else {
            DatasetConfig::standard()
        };
        match self.len {
            Some(len) => base.with_trace_len(len),
            None => base,
        }
    }

    /// Starts a `bp-metrics` run for a report study. The returned guard
    /// writes `<sink>/<name>.json` on drop when `BRANCH_LAB_METRICS`
    /// selects a sink directory; otherwise it is inert. The manifest's
    /// `info` block records the dataset shape so runs are comparable.
    #[must_use]
    pub fn metrics_run(&self, name: &str) -> bp_metrics::RunGuard {
        let cfg = self.dataset();
        let mut guard = bp_metrics::RunGuard::begin(name);
        guard.info("trace_len", cfg.trace_len);
        guard.info("slice_len", cfg.slice.len());
        guard.info(
            "max_inputs",
            cfg.max_inputs.map_or_else(|| "none".to_owned(), |n| n.to_string()),
        );
        guard.info("quick", self.quick);
        if self.sampling.enabled {
            let r = self.sampling.resolve(&cfg);
            guard.info("sampled", true);
            guard.info("sample_interval", r.interval_len);
            guard.info("sample_warmup", r.warmup);
            guard.info("sample_phases", r.max_phases);
        }
        guard
    }

    /// Prints a table under a heading and optionally writes CSV.
    pub fn emit(&self, heading: &str, name: &str, table: &Table) {
        println!("\n== {heading} ==");
        print!("{}", table.render());
        if let Some(dir) = &self.csv {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, table.to_csv()).expect("write csv");
            println!("(csv written to {})", path.display());
        }
    }

    /// Prints a whole [`Report`] (tables via [`Cli::emit`], which also
    /// writes CSVs when `--csv` is set; notes verbatim).
    pub fn emit_report(&self, report: &Report) {
        for item in &report.items {
            match item {
                ReportItem::Section {
                    heading,
                    name,
                    table,
                } => self.emit(heading, name, table),
                ReportItem::Note(line) => println!("{line}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_respects_quick_and_len() {
        let cli = Cli {
            quick: true,
            ..Cli::default()
        };
        assert_eq!(cli.dataset().trace_len, DatasetConfig::quick().trace_len);
        let cli = Cli {
            quick: false,
            len: Some(50_000),
            ..Cli::default()
        };
        assert_eq!(cli.dataset().trace_len, 50_000);
    }

    #[test]
    fn parse_from_splits_flags_and_positionals() {
        let cli = Cli::parse_from(
            ["--quick", "200000", "--len", "5000"].map(String::from),
        );
        assert!(cli.quick);
        assert_eq!(cli.len, Some(5000));
        assert_eq!(cli.rest, vec!["200000".to_owned()]);
    }

    #[test]
    fn parse_from_reads_sampling_flags() {
        let cli = Cli::parse_from(
            ["--sampled", "--sample-interval", "5000", "--sample-phases", "3"].map(String::from),
        );
        assert!(cli.sampling.enabled);
        assert_eq!(cli.sampling.interval_len, Some(5000));
        assert_eq!(cli.sampling.warmup, None);
        assert_eq!(cli.sampling.max_phases, 3);
        // Sampling knobs without --sampled stay latent (resolved but
        // disabled) so env/flag defaults compose.
        let cli = Cli::parse_from(["--sample-warmup", "100"].map(String::from));
        assert!(!cli.sampling.enabled);
        assert_eq!(cli.sampling.warmup, Some(100));
    }
}
