//! Shared plumbing for the experiment binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper. They share a tiny CLI:
//!
//! * `--len N` — instructions per workload trace (default 1,000,000);
//! * `--quick` — reduced scale for smoke runs;
//! * `--csv DIR` — also write each table as CSV under `DIR`.

use std::path::PathBuf;

use bp_core::{DatasetConfig, Table};

pub mod reports;

/// Parsed command-line options common to all experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Cli {
    /// Override for instructions per trace.
    pub len: Option<usize>,
    /// Use the reduced [`DatasetConfig::quick`] scale.
    pub quick: bool,
    /// Directory for CSV output.
    pub csv: Option<PathBuf>,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--len" => {
                    let v = args.next().expect("--len needs a value");
                    cli.len = Some(v.parse().expect("--len must be an integer"));
                }
                "--quick" => cli.quick = true,
                "--csv" => {
                    let v = args.next().expect("--csv needs a directory");
                    cli.csv = Some(PathBuf::from(v));
                }
                other => panic!("unknown argument {other}; supported: --len N --quick --csv DIR"),
            }
        }
        cli
    }

    /// The dataset configuration implied by the options.
    #[must_use]
    pub fn dataset(&self) -> DatasetConfig {
        let base = if self.quick {
            DatasetConfig::quick()
        } else {
            DatasetConfig::standard()
        };
        match self.len {
            Some(len) => base.with_trace_len(len),
            None => base,
        }
    }

    /// Starts a `bp-metrics` run for this binary. The returned guard
    /// writes `<sink>/<name>.json` on drop when `BRANCH_LAB_METRICS`
    /// selects a sink directory; otherwise it is inert. The manifest's
    /// `info` block records the dataset shape so runs are comparable.
    #[must_use]
    pub fn metrics_run(&self, name: &str) -> bp_metrics::RunGuard {
        let cfg = self.dataset();
        let mut guard = bp_metrics::RunGuard::begin(name);
        guard.info("trace_len", cfg.trace_len);
        guard.info("slice_len", cfg.slice.len());
        guard.info(
            "max_inputs",
            cfg.max_inputs.map_or_else(|| "none".to_owned(), |n| n.to_string()),
        );
        guard.info("quick", self.quick);
        guard
    }

    /// Prints a table under a heading and optionally writes CSV.
    pub fn emit(&self, heading: &str, name: &str, table: &Table) {
        println!("\n== {heading} ==");
        print!("{}", table.render());
        if let Some(dir) = &self.csv {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, table.to_csv()).expect("write csv");
            println!("(csv written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_respects_quick_and_len() {
        let cli = Cli {
            quick: true,
            len: None,
            csv: None,
        };
        assert_eq!(cli.dataset().trace_len, DatasetConfig::quick().trace_len);
        let cli = Cli {
            quick: false,
            len: Some(50_000),
            csv: None,
        };
        assert_eq!(cli.dataset().trace_len, 50_000);
    }
}
