//! Report functions for the analysis studies, ablations and probes
//! (Figs. 4, 6, 10, Table III, `alloc_stats`, `baselines`, `helpers`,
//! `ablation`, `calibrate`, `debug_ipc`).
//!
//! Same contract as [`crate::reports`]: each function computes one
//! study and returns a [`Report`] whose `render()` is byte-identical to
//! the stdout of the legacy standalone binary. Sweep-shaped studies
//! (`baselines`, the `ablation` accuracy tables, `debug_ipc`) step all
//! their configurations through a single trace pass via
//! [`bp_predictors::sweep_measure`] / [`bp_pipeline::SweepReplay`]
//! instead of re-replaying per configuration.

use bp_analysis::{
    accuracy_spread_from_points, compute_alloc_stats, rank_heavy_hitters, spread_points,
    BranchProfile, DependencyAnalysis, H2pCriteria, RegValueAnalysis, DEFAULT_WINDOW,
    PAPER_TRACKED_REGS,
};
use bp_core::{f3, DatasetConfig, Report, ResolvedSampling, SamplingConfig, Table};
use bp_helpers::{
    train_helper, CnnNet, HistoryEncoder, HybridPredictor, PhaseHelper, PhaseHelperConfig,
    TrainerConfig,
};
use bp_analysis::{simpoints_from_profiles, PhaseConfig};
use bp_pipeline::{
    run, PipelineConfig, SampledReplay, SampledStats, SamplePlan, SampleSegment, SweepReplay,
};
use bp_predictors::{
    measure, misprediction_flags, sweep_flags, sweep_measure, DirectionPredictor,
    PerfectPredictor, Predictor, PredictorSpec, TageConfig, TageScL, TageSclConfig,
};
use bp_trace::profile_intervals;
use bp_trace::Trace;
use bp_workloads::{lcf_suite, specint_suite, WorkloadSpec};

/// Fig. 4: accuracy spread of rare branches — the per-execution-bin
/// standard deviation of accuracy over the LCF dataset.
#[must_use]
pub fn fig4_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    let mut points = Vec::new();
    for spec in &lcf_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let profile = BranchProfile::collect(&mut bpu, trace.insts());
        points.extend(spread_points(&profile));
    }
    let bins = accuracy_spread_from_points(&points, 100.0, 15_000.0);
    let mut table = Table::new(vec![
        "execs-bin (paper-equiv)",
        "branches",
        "mean-acc",
        "stddev-acc",
    ]);
    for b in &bins {
        table.row(vec![
            format!("{:.0}-{:.0}", b.lo, b.lo + 100.0),
            format!("{}", b.n),
            format!("{:.3}", b.mean),
            format!("{:.3}", b.stddev),
        ]);
    }
    report.section(
        "Fig. 4b: stddev of accuracy by dynamic-execution bin (LCF dataset)",
        "fig4",
        table,
    );
    if let (Some(first), Some(second)) = (bins.first(), bins.get(1)) {
        report.note(format!(
            "first bin stddev {:.2} (paper: 0.35); second bin {:.2} (paper: 0.08)",
            first.stddev, second.stddev
        ));
    }
    report
}

/// Per-slice H2P screen with a shared predictor, returning the merged
/// profile and the screened H2P set — the pattern Figs. 6/10 and
/// Table III share.
fn screen_h2ps(
    bpu: &mut TageScL,
    trace: &Trace,
    cfg: &DatasetConfig,
) -> (BranchProfile, std::collections::HashSet<u64>) {
    let criteria = H2pCriteria::paper();
    let mut merged = BranchProfile::new();
    let mut h2ps = std::collections::HashSet::new();
    for slice in trace.slices(cfg.slice) {
        let p = BranchProfile::collect(bpu, slice);
        h2ps.extend(criteria.screen(&p, cfg.slice));
        merged.merge(&p);
    }
    (merged, h2ps)
}

/// Fig. 6: history-position distributions of dependency branches for the
/// top H2P heavy hitter of each SPECint benchmark.
#[must_use]
pub fn fig6_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    for spec in &specint_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let (merged, h2ps) = screen_h2ps(&mut bpu, &trace, cfg);
        let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
        let Some(top) = hitters.first() else {
            report.note(format!("\n== Fig. 6 {}: no H2P found ==", spec.name));
            continue;
        };
        let dep = DependencyAnalysis::new(&trace);
        let analysis = dep.analyze(&trace, top.ip, DEFAULT_WINDOW, 256);

        // Summarize per dependency branch: how many distinct positions,
        // and the occurrence-weighted position span.
        let mut per_ip: std::collections::HashMap<u64, (usize, usize, usize, u64)> =
            std::collections::HashMap::new();
        for (&(ip, pos), &count) in &analysis.occurrences {
            let e = per_ip.entry(ip).or_insert((usize::MAX, 0, 0, 0));
            e.0 = e.0.min(pos);
            e.1 = e.1.max(pos);
            e.2 += 1; // distinct positions
            e.3 += count;
        }
        let mut rows: Vec<_> = per_ip.into_iter().collect();
        // Tie-break equal occurrence counts by ip: HashMap iteration
        // order is seeded per process, and the row order must not be.
        rows.sort_by_key(|&(ip, v)| (std::cmp::Reverse(v.3), ip));
        let mut table = Table::new(vec![
            "dep-branch-ip",
            "distinct-positions",
            "min-pos",
            "max-pos",
            "occurrences",
        ]);
        for (ip, (min, max, distinct, occ)) in rows.into_iter().take(12) {
            table.row(vec![
                format!("{ip:#x}"),
                format!("{distinct}"),
                format!("{min}"),
                format!("{max}"),
                format!("{occ}"),
            ]);
        }
        report.section(
            format!(
                "Fig. 6 {}: dependency-branch history positions for H2P {:#x} ({} executions)",
                spec.name, top.ip, analysis.executions
            ),
            format!("fig6_{}", spec.name.replace('.', "_")),
            table,
        );
    }
    report
}

/// Fig. 10: distributions of register values written immediately before
/// the top H2P heavy hitter executes, for the paper's six benchmarks.
#[must_use]
pub fn fig10_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    // The paper shows six benchmarks; we show the same six.
    let shown = [
        "605.mcf_s",
        "620.omnetpp_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "641.leela_s",
        "657.xz_s",
    ];
    for spec in specint_suite().iter().filter(|s| shown.contains(&s.name.as_str())) {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let (merged, h2ps) = screen_h2ps(&mut bpu, &trace, cfg);
        let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
        let Some(top) = hitters.first() else {
            report.note(format!("\n== Fig. 10 {}: no H2P found ==", spec.name));
            continue;
        };
        let rv = RegValueAnalysis::collect(&trace, top.ip, PAPER_TRACKED_REGS);
        let mut table = Table::new(vec![
            "register",
            "distinct-values",
            "entropy-bits",
            "top-value",
            "top-count",
        ]);
        for r in 0..rv.tracked() {
            let d = rv.register(r);
            if d.total() == 0 {
                continue;
            }
            let top_val = d.top(1);
            table.row(vec![
                format!("r{r}"),
                format!("{}", d.distinct()),
                format!("{:.2}", d.entropy_bits()),
                top_val.first().map_or("-".into(), |(v, _)| format!("{v:#x}")),
                top_val.first().map_or("-".into(), |(_, c)| c.to_string()),
            ]);
        }
        report.section(
            format!(
                "Fig. 10 {}: register values preceding H2P {:#x} ({} executions, mean entropy {:.2} bits)",
                spec.name,
                top.ip,
                rv.executions,
                rv.mean_entropy_bits()
            ),
            format!("fig10_{}", spec.name.replace('.', "_")),
            table,
        );
    }
    report
}

/// Table III: dependency-branch statistics for the top H2P heavy hitter
/// of each SPECint benchmark.
#[must_use]
pub fn table3_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    let mut table = Table::new(vec![
        "benchmark",
        "top-h2p-ip",
        "dep-branches",
        "min-hist-pos",
        "max-hist-pos",
    ]);
    for spec in &specint_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let (merged, h2ps) = screen_h2ps(&mut bpu, &trace, cfg);
        let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
        let Some(top) = hitters.first() else {
            table.row(vec![
                spec.name.clone(),
                "-".into(),
                "0".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let dep = DependencyAnalysis::new(&trace);
        let analysis = dep.analyze(&trace, top.ip, DEFAULT_WINDOW, 256);
        table.row(vec![
            spec.name.clone(),
            format!("{:#x}", top.ip),
            format!("{}", analysis.dep_branch_count()),
            analysis.min_position().map_or("-".into(), |p| p.to_string()),
            analysis.max_position().map_or("-".into(), |p| p.to_string()),
        ]);
    }
    report.section(
        "Table III: dependency branches of the top H2P heavy hitter (window 5,000 instructions)",
        "table3",
        table,
    );
    report
}

/// §IV-A: TAGE-SC-L table-allocation statistics for H2P vs non-H2P
/// branches at the 64KB configuration.
#[must_use]
pub fn alloc_stats_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    let mut table = Table::new(vec![
        "benchmark",
        "h2p-med-allocs",
        "h2p-med-unique",
        "other-med-allocs",
        "other-med-unique",
        "h2p-share",
        "other-share",
    ]);
    for spec in &specint_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::new(TageSclConfig::storage_kb(64));
        bpu.enable_instrumentation();
        let criteria = H2pCriteria::paper();
        let mut h2ps = std::collections::HashSet::new();
        for slice in trace.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
        }
        let stats = compute_alloc_stats(bpu.tracker().expect("instrumented"), &h2ps);
        table.row(vec![
            spec.name.clone(),
            format!("{}", stats.h2p_median_allocations),
            format!("{}", stats.h2p_median_unique_entries),
            format!("{}", stats.other_median_allocations),
            format!("{}", stats.other_median_unique_entries),
            format!("{:.3}%", stats.h2p_mean_allocation_share * 100.0),
            format!("{:.4}%", stats.other_mean_allocation_share * 100.0),
        ]);
    }
    report.section(
        "§IV-A: TAGE-SC-L 64KB allocation statistics, H2P vs non-H2P",
        "alloc_stats",
        table,
    );
    report.note("(paper medians: H2P 13,093 allocs / 3,990 unique; non-H2P 4 / 4)");
    report
}

/// §II context: the predictor-generation survey on both suites. All
/// seven generations score in one pass per workload
/// ([`sweep_measure`]).
#[must_use]
pub fn baselines_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    let mut table = Table::new(vec![
        "workload",
        "bimodal",
        "local",
        "gshare",
        "tournament",
        "perceptron",
        "ppm",
        "tage-sc-l-8kb",
    ]);
    let specs = PredictorSpec::survey();
    let mut means = [0.0f64; 7];
    let mut n = 0.0f64;
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut predictors: Vec<Box<dyn DirectionPredictor>> =
            specs.iter().map(PredictorSpec::build).collect();
        let accs: Vec<f64> = sweep_measure(&mut predictors, &trace)
            .iter()
            .map(bp_predictors::AccuracyStats::accuracy)
            .collect();
        n += 1.0;
        for (m, a) in means.iter_mut().zip(&accs) {
            *m += a;
        }
        let mut row = vec![spec.name.clone()];
        row.extend(accs.iter().map(|&a| f3(a)));
        table.row(row);
    }
    let mut row = vec!["MEAN".to_owned()];
    row.extend(means.iter().map(|&m| f3(m / n)));
    table.row(row);
    report.section(
        "Predictor generations on the branch-lab suites (§II survey context)",
        "baselines",
        table,
    );
    report
}

/// Accuracy ablations for the design choices DESIGN.md calls out. Each
/// accuracy table's configurations score in one pass per workload.
#[must_use]
pub fn ablation_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    let suite = specint_suite();
    let lcf = lcf_suite();
    let specs = [
        suite.iter().find(|s| s.name.contains("mcf")).unwrap(),
        suite.iter().find(|s| s.name.contains("leela")).unwrap(),
        suite.iter().find(|s| s.name.contains("xalancbmk")).unwrap(),
        &lcf[1],
    ];
    // One pass per workload scoring a list of TAGE-SC-L variants; cell
    // order matches the configs' order.
    let accs_for = |spec: &WorkloadSpec, configs: Vec<TageSclConfig>| -> Vec<String> {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut predictors: Vec<Box<dyn DirectionPredictor>> = configs
            .into_iter()
            .map(|c| Box::new(TageScL::new(c)) as Box<dyn DirectionPredictor>)
            .collect();
        sweep_measure(&mut predictors, &trace)
            .iter()
            .map(|s| f3(s.accuracy()))
            .collect()
    };

    // --- Component ablation across a few representative workloads. ---
    let mut table = Table::new(vec!["workload", "tage", "tage-l", "tage-sc", "tage-sc-l"]);
    for spec in specs {
        let mut row = vec![spec.name.clone()];
        row.extend(accs_for(
            spec,
            vec![
                TageSclConfig::tage_only(8),
                TageSclConfig::tage_l(8),
                TageSclConfig {
                    loop_entries: None,
                    ..TageSclConfig::storage_kb(8)
                },
                TageSclConfig::storage_kb(8),
            ],
        ));
        table.row(row);
    }
    report.section(
        "Ablation: ensemble components (8KB budget)",
        "ablation_components",
        table,
    );

    // --- History-length limit at fixed storage. ---
    let with_hist = |max_hist: usize| {
        let mut c = TageSclConfig::storage_kb(8);
        c.tage = TageConfig { max_hist, ..c.tage };
        c
    };
    let mut table = Table::new(vec!["workload", "hist-250", "hist-1000", "hist-3000"]);
    for spec in specs {
        let mut row = vec![spec.name.clone()];
        row.extend(accs_for(
            spec,
            vec![with_hist(250), with_hist(1000), with_hist(3000)],
        ));
        table.row(row);
    }
    report.section(
        "Ablation: maximum history length at fixed 8KB storage",
        "ablation_history",
        table,
    );

    // --- Usefulness aging period (allocation churn control). ---
    let with_age = |period: u64| {
        let mut c = TageSclConfig::storage_kb(8);
        c.tage = TageConfig {
            u_reset_period: period,
            ..c.tage
        };
        c
    };
    let mut table = Table::new(vec!["workload", "age-2^14", "age-2^18", "age-never"]);
    for spec in specs {
        let mut row = vec![spec.name.clone()];
        row.extend(accs_for(
            spec,
            vec![with_age(1 << 14), with_age(1 << 18), with_age(u64::MAX)],
        ));
        table.row(row);
    }
    report.section(
        "Ablation: usefulness aging period (8KB budget)",
        "ablation_aging",
        table,
    );

    // --- CNN precision on a synthetic variable-gap stream. ---
    let (window, buckets) = (12usize, 48usize);
    let make_stream = |seed: u64, n: usize| -> Vec<(Vec<u16>, bool)> {
        let mut enc = HistoryEncoder::new(window, buckets);
        let mut state = seed;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut out = Vec::new();
        for _ in 0..n {
            let d = rnd() % 2 == 0;
            enc.push(0x100, d);
            for k in 0..(1 + rnd() % 5) {
                enc.push(0x200 + k * 4, rnd() % 100 < 70);
            }
            out.push((enc.buckets(), d));
            enc.push(0x300, d);
            // Spacing filler so the window spans roughly one lap and the
            // dependency direction is unambiguous.
            for k in 0..10u64 {
                enc.push(0x400 + k * 4, k % 2 == 0);
            }
        }
        out
    };
    let train = make_stream(3, 4000);
    let test = make_stream(99, 2000);
    let mut net = CnnNet::new(12, buckets, 4);
    for _ in 0..4 {
        for (w, t) in &train {
            net.train_step(w, *t, 0.05);
        }
    }
    let acc_of = |f: &dyn Fn(&[u16]) -> bool| {
        test.iter().filter(|(w, t)| f(w) == *t).count() as f64 / test.len() as f64
    };
    let naive = net.quantize();
    let tuned = net.quantize_finetuned(&train, 2, 0.05);
    let mut table = Table::new(vec!["precision", "held-out accuracy"]);
    table.row(vec!["f32".into(), f3(acc_of(&|w| net.forward(w).taken()))]);
    table.row(vec![
        "2-bit naive".into(),
        f3(acc_of(&|w| naive.forward(w).taken())),
    ]);
    table.row(vec![
        "2-bit + classifier fine-tune".into(),
        f3(acc_of(&|w| tuned.forward(w).taken())),
    ]);
    report.section(
        "Ablation: CNN helper weight precision (synthetic variable-gap H2P)",
        "ablation_cnn",
        table,
    );
    report
}

fn per_ip_accuracy(predictor: &mut dyn DirectionPredictor, trace: &Trace, ip: u64) -> f64 {
    let mut total = 0u64;
    let mut correct = 0u64;
    for b in trace.conditional_branches() {
        let pred = predictor.predict_and_train(b.ip, b.taken);
        if b.ip == ip {
            total += 1;
            correct += u64::from(pred == b.taken);
        }
    }
    correct as f64 / total.max(1) as f64
}

fn cnn_study(report: &mut Report, spec: &WorkloadSpec, cfg: &DatasetConfig) {
    report.note(format!("\n-- CNN helper study on {} --", spec.name));
    let train_inputs = 3.min(spec.inputs - 1);
    let train_traces: Vec<_> = (0..train_inputs)
        .map(|i| spec.cached_trace(i, cfg.trace_len))
        .collect();
    let held_out = spec.cached_trace(spec.inputs - 1, cfg.trace_len);

    // Screen H2Ps on the training traces.
    let criteria = H2pCriteria::paper();
    let mut h2ps = std::collections::HashSet::new();
    let mut merged = BranchProfile::new();
    for t in &train_traces {
        let mut bpu = TageScL::kb8();
        for slice in t.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
            merged.merge(&p);
        }
    }
    let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
    let targets: Vec<u64> = hitters.iter().take(8).map(|h| h.ip).collect();
    if targets.is_empty() {
        report.note("no H2Ps found; skipping");
        return;
    }

    let tcfg = TrainerConfig::default();
    let helpers: Vec<_> = targets
        .iter()
        .map(|&ip| train_helper(&train_traces, ip, &tcfg))
        .collect();

    // Per-IP accuracy on the held-out input: TAGE alone vs hybrid.
    let mut table = Table::new(vec!["h2p-ip", "tage8-acc", "hybrid-acc", "delta"]);
    for (ip, helper) in targets.iter().zip(&helpers) {
        let tage_acc = per_ip_accuracy(&mut TageScL::kb8(), &held_out, *ip);
        let mut hybrid = HybridPredictor::new(TageScL::kb8());
        hybrid.attach_cnn(helper.clone());
        let hybrid_acc = per_ip_accuracy(&mut hybrid, &held_out, *ip);
        table.row(vec![
            format!("{ip:#x}"),
            f3(tage_acc),
            f3(hybrid_acc),
            format!("{:+.3}", hybrid_acc - tage_acc),
        ]);
    }
    report.section(
        format!("per-H2P accuracy on held-out input ({})", spec.name),
        format!("helpers_cnn_{}", spec.name.replace('.', "_")),
        table,
    );

    // Whole-trace effect.
    let base_acc = measure(&mut TageScL::kb8(), &held_out).accuracy();
    let mut hybrid = HybridPredictor::new(TageScL::kb8());
    for h in helpers {
        hybrid.attach_cnn(h);
    }
    let hybrid_acc = measure(&mut hybrid, &held_out).accuracy();
    let pipe = PipelineConfig::skylake();
    let base_ipc = run(&held_out, &mut TageScL::kb8(), &pipe).ipc();
    let mut hybrid2 = hybrid.clone();
    let hybrid_ipc = run(&held_out, &mut hybrid2, &pipe).ipc();
    report.note(format!(
        "whole-trace: accuracy {:.4} -> {:.4}; IPC {:.3} -> {:.3} ({:+.1}%) with {} helpers ({} helper bits)",
        base_acc,
        hybrid_acc,
        base_ipc,
        hybrid_ipc,
        (hybrid_ipc / base_ipc - 1.0) * 100.0,
        hybrid.cnn_helper_count(),
        hybrid.storage_bits() - TageScL::kb8().storage_bits(),
    ));
}

fn phase_study(report: &mut Report, spec: &WorkloadSpec, cfg: &DatasetConfig) {
    report.note(format!(
        "\n-- phase-conditioned rare-branch helper on {} --",
        spec.name
    ));
    // Offline training trace = one "prior invocation"; evaluation on a
    // longer fresh run (the paper: statistics aggregated over invocations).
    let train = spec.cached_trace(0, cfg.trace_len);
    let eval = spec.cached_trace(0, cfg.trace_len * 2);
    let helper = PhaseHelper::train(std::slice::from_ref(&train), PhaseHelperConfig::default());

    let base_acc = measure(&mut TageScL::kb8(), &eval).accuracy();
    let mut hybrid = HybridPredictor::new(TageScL::kb8());
    hybrid.attach_phase_helper(helper);
    let hybrid_acc = measure(&mut hybrid, &eval).accuracy();
    let mut table = Table::new(vec!["config", "accuracy"]);
    table.row(vec!["tage-sc-l-8kb".into(), f3(base_acc)]);
    table.row(vec!["tage + phase helper".into(), f3(hybrid_acc)]);
    report.section(
        format!("rare-branch helper accuracy ({})", spec.name),
        format!("helpers_phase_{}", spec.name),
        table,
    );
}

/// §V helper-predictor study: offline-trained CNN helpers deployed on a
/// held-out input, plus the phase-conditioned rare-branch helper.
#[must_use]
pub fn helpers_report(cfg: &DatasetConfig) -> Report {
    let mut report = Report::new();
    for name in ["605.mcf_s", "641.leela_s"] {
        let suite = specint_suite();
        let spec = suite.iter().find(|s| s.name == name).expect("known spec");
        cnn_study(&mut report, spec, cfg);
    }
    let lcf = lcf_suite();
    phase_study(&mut report, &lcf[1], cfg); // game-like: rare-branch dominated
    report
}

/// Calibration probe: per-workload TAGE-SC-L accuracy and branch
/// statistics for tuning suite parameters against Tables I/II.
#[must_use]
pub fn calibrate_report(len: usize) -> Report {
    let mut report = Report::new();
    report.note(format!(
        "{:<18} {:>9} {:>10} {:>8} {:>10} {:>8}",
        "workload", "branches", "static-ips", "acc", "execs/ip", "br-dens"
    ));
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let trace = spec.cached_trace(0, len);
        let mut per_ip: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for b in trace.conditional_branches() {
            *per_ip.entry(b.ip).or_default() += 1;
        }
        let mut bpu = TageScL::kb8();
        let stats = measure(&mut bpu, &trace);
        report.note(format!(
            "{:<18} {:>9} {:>10} {:>8.4} {:>10.1} {:>8.3}",
            spec.name,
            stats.total,
            per_ip.len(),
            stats.accuracy(),
            stats.total as f64 / per_ip.len() as f64,
            stats.total as f64 / trace.len() as f64,
        ));
    }
    report
}

/// Debug probe: absolute IPC per scale for one workload under TAGE-SC-L
/// 8KB and perfect prediction. Both configurations replay in lockstep.
#[must_use]
pub fn debug_ipc_report(which: &str, len: usize) -> Report {
    let mut report = Report::new();
    let suite = specint_suite();
    let lcf = lcf_suite();
    let spec = match which {
        s if s.starts_with("lcf") => &lcf[s[3..].parse::<usize>().unwrap_or(0)],
        s => &suite[s.parse::<usize>().unwrap_or(1)],
    };
    report.note(format!("workload {} len {len}", spec.name));
    let trace = spec.cached_trace(0, len);
    let mut predictors: Vec<Box<dyn DirectionPredictor>> =
        vec![Box::new(TageScL::kb8()), Box::new(PerfectPredictor)];
    let mut streams = sweep_flags(&mut predictors, &trace);
    let perfect_flags = streams.pop().expect("two streams");
    let tage_flags = streams.pop().expect("one stream");
    let mpki = tage_flags.iter().filter(|&&f| f).count() as f64 * 1000.0 / len as f64;
    report.note(format!("tage8 MPKI {mpki:.2}"));
    let base = PipelineConfig::skylake();
    let sweep = SweepReplay::new(&trace, &base);
    for scale in PipelineConfig::SCALES {
        let stats = sweep.simulate_many(&[&tage_flags, &perfect_flags], &base.scaled(scale));
        report.note(format!(
            "{scale:>3}x  tage8 {:.3}  perfect {:.3}  ratio {:.3}",
            stats[0].ipc(),
            stats[1].ipc(),
            stats[1].ipc() / stats[0].ipc()
        ));
    }
    report
}

/// One workload's sampled-vs-full comparison: the full-replay golden and
/// the SimPoint-style weighted reconstruction, side by side.
pub struct SampledComparison {
    /// Intervals the trace divides into at the resolved interval length.
    pub intervals: usize,
    /// Representatives actually simulated (phases found, EOF-capped).
    pub segments: usize,
    /// Full-replay golden MPKI under TAGE-SC-L 8KB.
    pub golden_mpki: f64,
    /// Full-replay golden IPC at the Skylake baseline.
    pub golden_ipc: f64,
    /// The weighted sampled estimates with confidence half-widths.
    pub est: SampledStats,
}

impl SampledComparison {
    /// Relative MPKI reconstruction error against the golden.
    #[must_use]
    pub fn mpki_rel_err(&self) -> f64 {
        (self.est.mpki - self.golden_mpki).abs() / self.golden_mpki.max(f64::MIN_POSITIVE)
    }
}

/// Runs one workload both ways — full replay and sampled replay — under
/// a fresh TAGE-SC-L 8KB each, and returns the comparison.
///
/// The sampled side is the production path end to end: streamed interval
/// profiles ([`bp_trace::profile_intervals`]), medoid selection
/// ([`bp_analysis::simpoint`]), single-pass segment extraction, a
/// functionally-warmed predictor pass
/// ([`bp_pipeline::SampledReplay::warmed_lanes`] — the predictor trains
/// over the whole stream, only pipeline replay is sampled), and weighted
/// reconstruction ([`bp_pipeline::SampledReplay::simulate_weighted`]).
#[must_use]
pub fn sampled_comparison(
    spec: &WorkloadSpec,
    cfg: &DatasetConfig,
    sampling: &ResolvedSampling,
) -> SampledComparison {
    let trace = spec.cached_trace(0, cfg.trace_len);
    let base = PipelineConfig::skylake();

    // Full-replay golden.
    let flags = misprediction_flags(&mut TageScL::kb8(), &trace);
    let sweep = SweepReplay::new(&trace, &base);
    let golden = sweep.simulate(&flags, &base);

    // Sampled path.
    let phase_cfg = PhaseConfig {
        max_phases: sampling.max_phases,
        ..PhaseConfig::default()
    };
    let profiles = profile_intervals(trace.reader(), sampling.interval_len, phase_cfg.dims)
        .expect("in-memory reader cannot fail");
    let simpoints = simpoints_from_profiles(&profiles, &phase_cfg);
    let plan = SamplePlan {
        interval_len: sampling.interval_len,
        warmup: sampling.warmup,
        segments: simpoints
            .representatives
            .iter()
            .map(|r| SampleSegment {
                interval: r.interval,
                weight: r.weight,
                spread: r.spread,
            })
            .collect(),
    };
    let sampled =
        SampledReplay::prepare(trace.reader(), &base, &plan).expect("in-memory reader cannot fail");
    let lanes = sampled
        .warmed_lanes(trace.reader(), &mut TageScL::kb8())
        .expect("in-memory reader cannot fail");
    let lane_refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
    let est = sampled.simulate_weighted(&lane_refs, &base);

    SampledComparison {
        intervals: profiles.len(),
        segments: sampled.num_segments(),
        golden_mpki: golden.mpki(),
        golden_ipc: golden.ipc(),
        est,
    }
}

/// Sampled-replay validation study: every suite workload replayed in
/// full (the golden) and via SimPoint-style sampling, with the weighted
/// reconstruction, its confidence interval, and the achieved error side
/// by side. Workloads run sequentially so the report is byte-identical
/// at any `BRANCH_LAB_THREADS` setting.
#[must_use]
pub fn sampled_report(cfg: &DatasetConfig, sampling: &SamplingConfig) -> Report {
    let resolved = sampling.resolve(cfg);
    let mut report = Report::new();
    report.note(format!(
        "sampled replay: interval {} insts, warmup {} insts, max {} phases",
        resolved.interval_len, resolved.warmup, resolved.max_phases
    ));
    let mut table = Table::new(vec![
        "workload", "ivals", "reps", "cover", "mpki", "mpki-est", "+/-", "err%", "in-ci", "ipc",
        "ipc-est",
    ]);
    let mut worst_err = 0.0f64;
    let mut contained = 0usize;
    let mut total = 0usize;
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let c = sampled_comparison(spec, cfg, &resolved);
        let within = c.est.mpki_contains(c.golden_mpki);
        worst_err = worst_err.max(c.mpki_rel_err());
        contained += usize::from(within);
        total += 1;
        table.row(vec![
            spec.name.to_owned(),
            c.intervals.to_string(),
            c.segments.to_string(),
            format!("{:.1}%", c.est.coverage() * 100.0),
            f3(c.golden_mpki),
            f3(c.est.mpki),
            f3(c.est.mpki_half),
            format!("{:.2}", c.mpki_rel_err() * 100.0),
            if within { "yes" } else { "NO" }.to_owned(),
            f3(c.golden_ipc),
            f3(c.est.ipc),
        ]);
    }
    report.section(
        "sampled replay vs full-replay golden (TAGE-SC-L 8KB, Skylake baseline)",
        "sampled",
        table,
    );
    report.note(format!(
        "golden contained in {contained}/{total} intervals; worst MPKI error {:.2}%",
        worst_err * 100.0
    ));
    report
}
