//! The `branch-lab` command-line dispatcher.
//!
//! One binary fronts every study in [`crate::registry::registry`]:
//!
//! * `branch-lab list` — print the registry;
//! * `branch-lab run <study> [flags]` — run one study;
//! * `branch-lab all [flags]` — run every report study with retries,
//!   checkpointing and manifest merging ([`crate::all_runner`]);
//! * `branch-lab sweep --workload W --predictors a,b,c` — ad-hoc
//!   single-pass predictor sweep on one workload.
//!
//! The per-study binaries (`fig1`, `table2`, …) are one-line shims over
//! [`study_shim`], so both spellings share argument parsing
//! ([`crate::Cli`]), metrics plumbing, and output formatting.

use bp_core::{StudyCtx, StudyKind, Table};
use bp_pipeline::{PipelineConfig, SweepReplay};
use bp_predictors::{sweep_flags, DirectionPredictor, PredictorSpec};
use bp_workloads::{find_workload, workload_names};

use crate::{all_runner, registry, Cli};

/// The single help surface for the unified CLI and all study shims.
#[must_use]
pub fn help_text() -> String {
    let mut s = String::from(
        "branch-lab: reproduce the tables and figures of \"Branch Prediction Is Not A\n\
         Solved Problem\" (IISWC 2019) on synthetic workload models.\n\
         \n\
         USAGE:\n\
         \x20   branch-lab list                     print every registered study\n\
         \x20   branch-lab run <study> [FLAGS]      run one study (see `list` for names)\n\
         \x20   branch-lab all [FLAGS]              run all report studies, with retries,\n\
         \x20                                       a resume checkpoint and merged manifests\n\
         \x20   branch-lab sweep [SWEEP FLAGS]      single-pass predictor sweep on one workload\n\
         \x20   branch-lab serve [SERVE FLAGS]      HTTP study server with a content-addressed\n\
         \x20                                       result cache (see DESIGN.md \"Serving\")\n\
         \x20   branch-lab help                     this text\n\
         \n\
         Every per-study binary (fig1, table2, ...) accepts the same FLAGS and is\n\
         equivalent to `branch-lab run <study>`.\n\
         \n\
         FLAGS (report studies):\n\
         \x20   --len N               instructions per workload trace (default 1,000,000)\n\
         \x20   --quick               reduced dataset scale for smoke runs\n\
         \x20   --csv DIR             also write each table as CSV under DIR\n\
         \x20   --sampled             SimPoint-style sampled replay: simulate only\n\
         \x20                         representative intervals, reconstruct weighted\n\
         \x20                         MPKI/IPC with confidence intervals\n\
         \x20   --sample-interval N   clustering interval in instructions (default len/20)\n\
         \x20   --sample-warmup N     warm-up prefix per interval, discarded from stats\n\
         \x20                         (default interval/5)\n\
         \x20   --sample-phases N     cap on phases = representatives (default 4)\n\
         Probe studies (calibrate, debug_ipc) take positional arguments instead;\n\
         `branch-lab list` shows them in brackets.\n\
         \n\
         ALL-RUNNER FLAGS:\n\
         \x20   --keep-going       continue past a failing study\n\
         \x20   --resume           skip studies recorded in the checkpoint\n\
         \x20   --timeout-secs N   per-study timeout (0 = none)\n\
         remaining flags are forwarded to each study.\n\
         \n\
         SWEEP FLAGS:\n\
         \x20   --workload NAME        workload to replay (see names below)\n\
         \x20   --predictors A,B,..    predictor labels, e.g. gshare,tage-sc-l-64kb\n\
         \x20   --scales N,M,..        pipeline scale factors (default 1)\n\
         \x20   --len N                instructions to trace (default 200,000)\n\
         \n\
         SERVE FLAGS (each overrides its BRANCH_LAB_SERVE_* variable):\n\
         \x20   --addr HOST:PORT       listen address (default 127.0.0.1:7878; :0 = any free port)\n\
         \x20   --workers N            worker threads (default: cores, capped at 8)\n\
         \x20   --cache-dir DIR        persist results to disk under DIR (default memory-only)\n\
         \x20   --cache-budget BYTES   per-tier cache budget, e.g. 64M (default unbounded)\n\
         \x20   --deadline-secs N      default per-request execution deadline (0 = none)\n\
         \n\
         ENVIRONMENT:\n\
         \x20   BRANCH_LAB_THREADS             worker threads for parallel studies\n\
         \x20   BRANCH_LAB_TRACE_DIR           shared on-disk trace cache directory\n\
         \x20   BRANCH_LAB_METRICS            metrics sink: stderr, off, or a directory\n\
         \x20   BRANCH_LAB_FAULTS             deterministic fault injection spec (tests)\n\
         \x20   BRANCH_LAB_CHAOS_SEED         seed for probabilistic faults + retry jitter\n\
         \x20   BRANCH_LAB_MEM_BUDGET         trace-cache memory budget (e.g. 512M); cold\n\
         \x20                                 traces evict and stream from disk when over\n\
         \x20   BRANCH_LAB_KEEP_GOING         all-runner: same as --keep-going\n\
         \x20   BRANCH_LAB_CHILD_TIMEOUT_SECS all-runner: same as --timeout-secs (0 = none)\n\
         \x20   BRANCH_LAB_RETRY_DELAY_MS     all-runner: retry backoff base in ms (default 500);\n\
         \x20                                 read by Backoff::from_env, not serve (no retries)\n\
         \x20   BRANCH_LAB_UPDATE_GOLDEN      golden tests: rewrite fixtures instead of diffing\n\
         \x20   BRANCH_LAB_SAMPLE             1 = default-enable --sampled (flags win)\n\
         \x20   BRANCH_LAB_SAMPLE_INTERVAL    default for --sample-interval\n\
         \x20   BRANCH_LAB_SAMPLE_WARMUP      default for --sample-warmup\n\
         \x20   BRANCH_LAB_SAMPLE_PHASES      default for --sample-phases\n\
         \x20   BRANCH_LAB_SERVE_ADDR         serve: listen address (default 127.0.0.1:7878)\n\
         \x20   BRANCH_LAB_SERVE_WORKERS      serve: worker threads (default: cores, capped at 8)\n\
         \x20   BRANCH_LAB_SERVE_CACHE_DIR    serve: result-cache directory (default memory-only)\n\
         \x20   BRANCH_LAB_SERVE_CACHE_BUDGET serve: per-tier cache budget, e.g. 64M\n\
         \n\
         WORKLOADS:\n",
    );
    for name in workload_names() {
        s.push_str("    ");
        s.push_str(&name);
        s.push('\n');
    }
    s
}

/// Entry point shared by every per-study shim binary: parse the standard
/// flags and run `name` exactly as `branch-lab run <name>` would.
pub fn study_shim(name: &str) {
    run_study(name, std::env::args().skip(1).collect());
}

/// Looks `name` up in the registry and runs it with `args`.
///
/// Report studies reject positional arguments (same message as the
/// legacy binaries), start a manifest-emitting metrics run, and honour
/// `--csv`; probe studies consume the positionals.
///
/// # Panics
///
/// Panics on malformed arguments, as the legacy binaries did.
pub fn run_study(name: &str, args: Vec<String>) {
    let reg = registry::registry();
    let Some(study) = reg.get(name) else {
        eprintln!(
            "unknown study '{name}'; available: {}",
            reg.names().join(", ")
        );
        std::process::exit(2);
    };
    let cli = Cli::parse_from(args);
    match study.info().kind {
        StudyKind::Report | StudyKind::Standalone => {
            if let Some(first) = cli.rest.first() {
                panic!(
                    "unknown argument {first}; supported: --len N --quick --csv DIR \
                     --sampled --sample-interval N --sample-warmup N --sample-phases N"
                );
            }
            let _run = cli.metrics_run(name);
            let mut ctx = StudyCtx::new(cli.dataset());
            ctx.sampling = cli.sampling;
            let report = study.run(&ctx);
            cli.emit_report(&report);
        }
        StudyKind::Probe => {
            let _run = bp_metrics::RunGuard::begin(name);
            let mut ctx = StudyCtx::new(cli.dataset());
            ctx.args.clone_from(&cli.rest);
            ctx.sampling = cli.sampling;
            let report = study.run(&ctx);
            cli.emit_report(&report);
        }
    }
}

fn cmd_list() {
    let reg = registry::registry();
    let width = reg
        .studies()
        .map(|s| s.info().name.len())
        .max()
        .unwrap_or(0);
    for study in reg.studies() {
        let info = study.info();
        let kind = match info.kind {
            StudyKind::Report => "report",
            StudyKind::Standalone => "extra ",
            StudyKind::Probe => "probe ",
        };
        println!("{:width$}  {kind}  {}", info.name, info.title);
    }
}

fn cmd_sweep(args: Vec<String>) {
    let mut workload: Option<String> = None;
    let mut predictors: Option<String> = None;
    let mut scales: Vec<u32> = vec![1];
    let mut len: usize = 200_000;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => workload = Some(it.next().expect("--workload needs a name")),
            "--predictors" => predictors = Some(it.next().expect("--predictors needs labels")),
            "--scales" => {
                scales = it
                    .next()
                    .expect("--scales needs a comma-separated list")
                    .split(',')
                    .map(|s| s.parse().expect("--scales must be integers"))
                    .collect();
            }
            "--len" => {
                len = it
                    .next()
                    .expect("--len needs a value")
                    .parse()
                    .expect("--len must be an integer");
            }
            "--help" | "-h" => {
                print!("{}", help_text());
                return;
            }
            other => panic!(
                "unknown sweep argument {other}; supported: --workload NAME \
                 --predictors A,B --scales N,M --len N"
            ),
        }
    }
    let workload = workload.expect("sweep requires --workload NAME");
    let predictors = predictors.expect("sweep requires --predictors A,B,..");
    let Some(spec) = find_workload(&workload) else {
        eprintln!(
            "unknown workload '{workload}'; available: {}",
            workload_names().join(", ")
        );
        std::process::exit(2);
    };
    let specs: Vec<PredictorSpec> = predictors
        .split(',')
        .map(|s| match PredictorSpec::parse(s.trim()) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        })
        .collect();

    let _run = bp_metrics::RunGuard::begin("sweep");
    print!("{}", sweep_report(&spec, &specs, &scales, len).render());
}

/// Builds the single-pass predictor-sweep report: one table, one row per
/// predictor, accuracy plus IPC at each pipeline scale.
///
/// Shared by `branch-lab sweep` and the serve-mode `/sweep` endpoint;
/// the heading format is load-bearing — [`bp_core::Report::render`] of
/// this report is exactly the CLI's stdout, which is what makes served
/// sweep responses byte-identical to the CLI.
#[must_use]
pub fn sweep_report(
    spec: &bp_workloads::WorkloadSpec,
    specs: &[PredictorSpec],
    scales: &[u32],
    len: usize,
) -> bp_core::Report {
    let trace = spec.cached_trace(0, len);
    let mut built: Vec<Box<dyn DirectionPredictor>> =
        specs.iter().map(PredictorSpec::build).collect();
    let flags = sweep_flags(&mut built, &trace);
    let base = PipelineConfig::skylake();
    let sweep = SweepReplay::new(&trace, &base);
    let lanes: Vec<&[bool]> = flags.iter().map(Vec::as_slice).collect();
    let mut header = vec!["predictor".to_owned(), "accuracy".to_owned()];
    header.extend(scales.iter().map(|s| format!("ipc@{s}x")));
    let mut table = Table::new(header.iter().map(String::as_str).collect());
    let mut ipc: Vec<Vec<f64>> = Vec::new();
    for &scale in scales {
        ipc.push(
            sweep
                .simulate_many(&lanes, &base.scaled(scale))
                .iter()
                .map(bp_pipeline::SimStats::ipc)
                .collect(),
        );
    }
    for (pi, pred) in specs.iter().enumerate() {
        let mispredicts = flags[pi].iter().filter(|&&f| f).count();
        let total = flags[pi].len().max(1);
        let mut row = vec![
            pred.label(),
            format!("{:.3}", 1.0 - mispredicts as f64 / total as f64),
        ];
        row.extend(ipc.iter().map(|per_scale| format!("{:.3}", per_scale[pi])));
        table.row(row);
    }
    let mut report = bp_core::Report::new();
    report.section(
        format!(
            "sweep: {} ({} insts, {} conditional branches, one replay pass)",
            spec.name,
            trace.len(),
            sweep.cond_branch_count()
        ),
        "sweep",
        table,
    );
    report
}

/// The `branch-lab` binary's entry point.
pub fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{}", help_text());
        return;
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => {
            if args.first().is_none_or(|a| a.starts_with('-')) {
                eprintln!("usage: branch-lab run <study> [flags]; see `branch-lab list`");
                std::process::exit(2);
            }
            let name = args.remove(0);
            run_study(&name, args);
        }
        "all" => all_runner::run_from(args),
        "sweep" => cmd_sweep(args),
        "serve" => crate::serve::run_from(args),
        "help" | "--help" | "-h" => print!("{}", help_text()),
        other => {
            eprintln!("unknown command '{other}'; try `branch-lab help`");
            std::process::exit(2);
        }
    }
}
