//! Fig. 1: single-threaded IPC (relative to the 1x TAGE-SC-L 8KB
//! baseline) as pipeline capacity scales 1x–32x, for the SPECint suite.

use bp_core::{f3, scaling_study, Table};
use bp_experiments::Cli;
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let study = scaling_study(&specint_suite(), &cfg);
    let mut table = Table::new(vec![
        "scale",
        "TAGE-SC-L 8KB",
        "TAGE-SC-L 64KB",
        "Perfect H2Ps",
        "Perfect BP",
        "opportunity (perfect/tage8)",
    ]);
    for (si, &scale) in study.scales.iter().enumerate() {
        let v = |label: &str| {
            study
                .series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.relative_ipc[si])
                .unwrap_or(f64::NAN)
        };
        let tage8 = v("TAGE-SC-L 8KB");
        let perfect = v("Perfect BP");
        table.row(vec![
            format!("{scale}x"),
            f3(tage8),
            f3(v("TAGE-SC-L 64KB")),
            f3(v("Perfect H2Ps")),
            f3(perfect),
            f3(perfect / tage8),
        ]);
    }
    cli.emit(
        "Fig. 1: IPC vs pipeline capacity scaling, SPECint suite",
        "fig1",
        &table,
    );
    // The paper's headline numbers for comparison.
    let at = |label: &str, scale: u32| study.value(label, scale);
    println!(
        "IPC opportunity at 1x: {:.1}% (paper: 18.5%)   at 4x: {:.1}% (paper: 55.3%)",
        (at("Perfect BP", 1) / at("TAGE-SC-L 8KB", 1) - 1.0) * 100.0,
        (at("Perfect BP", 4) / at("TAGE-SC-L 8KB", 4) - 1.0) * 100.0,
    );
    println!(
        "H2P share of the 1x opportunity: {:.1}% (paper: 75.7%)",
        (at("Perfect H2Ps", 1) - 1.0) / (at("Perfect BP", 1) - 1.0).max(1e-9) * 100.0
    );
}
