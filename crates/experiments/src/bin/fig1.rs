//! Fig. 1: single-threaded IPC (relative to the 1x TAGE-SC-L 8KB
//! baseline) as pipeline capacity scales 1x–32x, for the SPECint suite.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig1");
    reports::fig1_report(&cli.dataset()).emit(&cli);
}
