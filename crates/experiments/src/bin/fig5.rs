//! Fig. 5: IPC vs pipeline capacity scaling for the large-code-footprint
//! traces — H2Ps play a diminished role; rare branches dominate.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig5");
    reports::fig5_report(&cli.dataset()).emit(&cli);
}
