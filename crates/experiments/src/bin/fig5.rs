//! Fig. 5: IPC vs pipeline capacity scaling for the large-code-footprint
//! traces — H2Ps play a diminished role; rare branches dominate.

use bp_core::{f3, scaling_study, Table};
use bp_experiments::Cli;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let study = scaling_study(&lcf_suite(), &cfg);
    let mut table = Table::new(vec![
        "scale",
        "TAGE-SC-L 8KB",
        "TAGE-SC-L 64KB",
        "Perfect H2Ps",
        "Perfect BP",
        "h2p share of opportunity",
    ]);
    for (si, &scale) in study.scales.iter().enumerate() {
        let v = |label: &str| {
            study
                .series
                .iter()
                .find(|s| s.label == label)
                .map(|s| s.relative_ipc[si])
                .unwrap_or(f64::NAN)
        };
        let share = (v("Perfect H2Ps") - v("TAGE-SC-L 8KB"))
            / (v("Perfect BP") - v("TAGE-SC-L 8KB")).max(1e-9);
        table.row(vec![
            format!("{scale}x"),
            f3(v("TAGE-SC-L 8KB")),
            f3(v("TAGE-SC-L 64KB")),
            f3(v("Perfect H2Ps")),
            f3(v("Perfect BP")),
            format!("{:.1}%", share * 100.0),
        ]);
    }
    cli.emit(
        "Fig. 5: IPC vs pipeline capacity scaling, LCF suite (paper: H2P share 37.8% at 1x, 33.7% at 32x)",
        "fig5",
        &table,
    );
}
