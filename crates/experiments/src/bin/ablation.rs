//! Accuracy ablations for the design choices DESIGN.md calls out:
//!
//! * TAGE component ablation (TAGE vs TAGE-L vs TAGE-SC vs TAGE-SC-L);
//! * maximum history length at fixed storage (the paper's 1,000 at 8KB vs
//!   3,000 at 64KB+);
//! * TAGE usefulness-based allocation vs naive always-allocate;
//! * CNN helper precision: f32 vs naive 2-bit vs fine-tuned 2-bit.

use bp_core::{f3, Table};
use bp_experiments::Cli;
use bp_helpers::{CnnNet, HistoryEncoder};
use bp_predictors::{measure, TageConfig, TageScL, TageSclConfig};
use bp_workloads::{lcf_suite, specint_suite};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("ablation");
    let cfg = cli.dataset();

    // --- Component ablation across a few representative workloads. ---
    let suite = specint_suite();
    let specs = [
        suite.iter().find(|s| s.name.contains("mcf")).unwrap(),
        suite.iter().find(|s| s.name.contains("leela")).unwrap(),
        suite.iter().find(|s| s.name.contains("xalancbmk")).unwrap(),
        &lcf_suite()[1],
    ];
    let mut table = Table::new(vec!["workload", "tage", "tage-l", "tage-sc", "tage-sc-l"]);
    for spec in specs {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let acc = |c: TageSclConfig| {
            let mut p = TageScL::new(c);
            measure(&mut p, &trace).accuracy()
        };
        table.row(vec![
            spec.name.clone(),
            f3(acc(TageSclConfig::tage_only(8))),
            f3(acc(TageSclConfig::tage_l(8))),
            f3(acc(TageSclConfig {
                loop_entries: None,
                ..TageSclConfig::storage_kb(8)
            })),
            f3(acc(TageSclConfig::storage_kb(8))),
        ]);
    }
    cli.emit("Ablation: ensemble components (8KB budget)", "ablation_components", &table);

    // --- History-length limit at fixed storage. ---
    let mut table = Table::new(vec!["workload", "hist-250", "hist-1000", "hist-3000"]);
    for spec in specs {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let acc = |max_hist: usize| {
            let mut c = TageSclConfig::storage_kb(8);
            c.tage = TageConfig { max_hist, ..c.tage };
            measure(&mut TageScL::new(c), &trace).accuracy()
        };
        table.row(vec![
            spec.name.clone(),
            f3(acc(250)),
            f3(acc(1000)),
            f3(acc(3000)),
        ]);
    }
    cli.emit(
        "Ablation: maximum history length at fixed 8KB storage",
        "ablation_history",
        &table,
    );

    // --- Usefulness aging period (allocation churn control). ---
    let mut table = Table::new(vec!["workload", "age-2^14", "age-2^18", "age-never"]);
    for spec in specs {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let acc = |period: u64| {
            let mut c = TageSclConfig::storage_kb(8);
            c.tage = TageConfig {
                u_reset_period: period,
                ..c.tage
            };
            measure(&mut TageScL::new(c), &trace).accuracy()
        };
        table.row(vec![
            spec.name.clone(),
            f3(acc(1 << 14)),
            f3(acc(1 << 18)),
            f3(acc(u64::MAX)),
        ]);
    }
    cli.emit(
        "Ablation: usefulness aging period (8KB budget)",
        "ablation_aging",
        &table,
    );

    // --- CNN precision on a synthetic variable-gap stream. ---
    let (window, buckets) = (12usize, 48usize);
    let make_stream = |seed: u64, n: usize| -> Vec<(Vec<u16>, bool)> {
        let mut enc = HistoryEncoder::new(window, buckets);
        let mut state = seed;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut out = Vec::new();
        for _ in 0..n {
            let d = rnd() % 2 == 0;
            enc.push(0x100, d);
            for k in 0..(1 + rnd() % 5) {
                enc.push(0x200 + k * 4, rnd() % 100 < 70);
            }
            out.push((enc.buckets(), d));
            enc.push(0x300, d);
            // Spacing filler so the window spans roughly one lap and the
            // dependency direction is unambiguous.
            for k in 0..10u64 {
                enc.push(0x400 + k * 4, k % 2 == 0);
            }
        }
        out
    };
    let train = make_stream(3, 4000);
    let test = make_stream(99, 2000);
    let mut net = CnnNet::new(12, buckets, 4);
    for _ in 0..4 {
        for (w, t) in &train {
            net.train_step(w, *t, 0.05);
        }
    }
    let acc_of = |f: &dyn Fn(&[u16]) -> bool| {
        test.iter().filter(|(w, t)| f(w) == *t).count() as f64 / test.len() as f64
    };
    let naive = net.quantize();
    let tuned = net.quantize_finetuned(&train, 2, 0.05);
    let mut table = Table::new(vec!["precision", "held-out accuracy"]);
    table.row(vec!["f32".into(), f3(acc_of(&|w| net.forward(w).taken()))]);
    table.row(vec!["2-bit naive".into(), f3(acc_of(&|w| naive.forward(w).taken()))]);
    table.row(vec![
        "2-bit + classifier fine-tune".into(),
        f3(acc_of(&|w| tuned.forward(w).taken())),
    ]);
    cli.emit(
        "Ablation: CNN helper weight precision (synthetic variable-gap H2P)",
        "ablation_cnn",
        &table,
    );
}
