//! Fig. 2: cumulative fraction of mispredictions owned by the n-th H2P
//! heavy hitter, per SPECint benchmark.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig2");
    reports::fig2_report(&cli.dataset()).emit(&cli);
}
