//! Fig. 2: cumulative fraction of mispredictions owned by the n-th H2P
//! heavy hitter, per SPECint benchmark.

use bp_analysis::{rank_heavy_hitters, top_n_fraction};
use bp_core::{characterize_workload, Table};
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let ns = [1usize, 2, 3, 5, 10, 20, 50];
    let mut headers = vec!["benchmark".to_owned()];
    headers.extend(ns.iter().map(|n| format!("top-{n}")));
    let mut table = Table::new(headers.iter().map(String::as_str).collect());
    let mut top5_sum = 0.0;
    let suite = specint_suite();
    for spec in &suite {
        let c = characterize_workload(spec, &cfg, TageScL::kb8);
        // Merge profiles across inputs; rank the H2P union by executions.
        let mut merged = bp_analysis::BranchProfile::new();
        for ic in &c.inputs {
            merged.merge(&ic.profile);
        }
        let hitters = rank_heavy_hitters(&merged, c.h2p_union.iter().copied());
        top5_sum += top_n_fraction(&hitters, 5);
        let mut row = vec![c.name.clone()];
        row.extend(
            ns.iter()
                .map(|&n| format!("{:.3}", top_n_fraction(&hitters, n))),
        );
        table.row(row);
    }
    cli.emit(
        "Fig. 2: cumulative fraction of TAGE8 mispredictions vs n-th H2P heavy hitter",
        "fig2",
        &table,
    );
    println!(
        "Top-5 heavy hitters own {:.1}% of mispredictions on average (paper: 37%)",
        top5_sum / suite.len() as f64 * 100.0
    );
}
