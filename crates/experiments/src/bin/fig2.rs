//! Shim: `fig2` ≡ `branch-lab run fig2`. The study lives in the registry
//! (`bp_experiments::registry`); this binary exists so scripted
//! per-study invocations and the `all` runner keep working unchanged.

fn main() {
    bp_experiments::cli::study_shim("fig2");
}
