//! Fig. 10: distributions of register values written immediately before
//! the top H2P heavy hitter executes. Structured, branch-specific
//! distributions motivate register values as helper-predictor inputs.

use bp_analysis::{
    rank_heavy_hitters, BranchProfile, H2pCriteria, RegValueAnalysis, PAPER_TRACKED_REGS,
};
use bp_core::Table;
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig10");
    let cfg = cli.dataset();
    // The paper shows six benchmarks; we show the same six.
    let shown = [
        "605.mcf_s",
        "620.omnetpp_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "641.leela_s",
        "657.xz_s",
    ];
    for spec in specint_suite().iter().filter(|s| shown.contains(&s.name.as_str())) {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let criteria = H2pCriteria::paper();
        let mut merged = BranchProfile::new();
        let mut h2ps = std::collections::HashSet::new();
        for slice in trace.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
            merged.merge(&p);
        }
        let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
        let Some(top) = hitters.first() else {
            println!("\n== Fig. 10 {}: no H2P found ==", spec.name);
            continue;
        };
        let rv = RegValueAnalysis::collect(&trace, top.ip, PAPER_TRACKED_REGS);
        let mut table = Table::new(vec![
            "register",
            "distinct-values",
            "entropy-bits",
            "top-value",
            "top-count",
        ]);
        for r in 0..rv.tracked() {
            let d = rv.register(r);
            if d.total() == 0 {
                continue;
            }
            let top_val = d.top(1);
            table.row(vec![
                format!("r{r}"),
                format!("{}", d.distinct()),
                format!("{:.2}", d.entropy_bits()),
                top_val.first().map_or("-".into(), |(v, _)| format!("{v:#x}")),
                top_val.first().map_or("-".into(), |(_, c)| c.to_string()),
            ]);
        }
        cli.emit(
            &format!(
                "Fig. 10 {}: register values preceding H2P {:#x} ({} executions, mean entropy {:.2} bits)",
                spec.name,
                top.ip,
                rv.executions,
                rv.mean_entropy_bits()
            ),
            &format!("fig10_{}", spec.name.replace('.', "_")),
            &table,
        );
    }
}
