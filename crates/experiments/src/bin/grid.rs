//! Standalone shim for the heterogeneous predictor grid study.

fn main() {
    bp_experiments::cli::study_shim("grid");
}
