//! Fig. 3: distributions of dynamic mispredictions, dynamic executions,
//! and prediction accuracy across the static branches of the LCF dataset.

use bp_analysis::{paper_equivalent, BinSpec, BranchProfile};
use bp_core::Table;
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();

    // Pool per-branch stats across all LCF applications, in
    // paper-equivalent counts.
    let mut mispredicts = Vec::new();
    let mut execs = Vec::new();
    let mut accuracy = Vec::new();
    for spec in &lcf_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let profile = BranchProfile::collect(&mut bpu, trace.insts());
        let window = profile.instructions;
        for (_, s) in profile.iter() {
            mispredicts.push(paper_equivalent(s.mispredicts, window));
            execs.push(paper_equivalent(s.execs, window));
            accuracy.push(s.accuracy());
        }
    }

    let specs = [
        ("mispredictions", BinSpec::mispredictions(), &mispredicts),
        ("executions", BinSpec::executions(), &execs),
        ("accuracy", BinSpec::accuracy(), &accuracy),
    ];
    for (name, bins, values) in specs {
        let h = bins.histogram(values.iter().copied());
        let mut table = Table::new(vec!["bin", "fraction of static IPs"]);
        for (label, frac) in h.labels().iter().zip(h.fractions()) {
            table.row(vec![label.clone(), format!("{frac:.4}")]);
        }
        cli.emit(
            &format!("Fig. 3 ({name}) over {} static branch IPs", h.total()),
            &format!("fig3_{name}"),
            &table,
        );
    }

    // The paper's headline fractions.
    let exec_h = BinSpec::executions().histogram(execs.iter().copied());
    let acc_h = BinSpec::accuracy().histogram(accuracy.iter().copied());
    println!(
        "\nbranches with <100 paper-equivalent executions: {:.1}% (paper: 85%)",
        exec_h.fraction_of("0-100") * 100.0
    );
    println!(
        "branches with accuracy >= 0.99: {:.1}% (paper: 55%)",
        acc_h.fraction_of("0.99-1") * 100.0
    );
    println!(
        "branches with accuracy <= 0.10: {:.1}% (paper: 12%)",
        acc_h.fraction_of("0.00-0.10") * 100.0
    );
}
