//! Fig. 3: distributions of dynamic mispredictions, dynamic executions,
//! and prediction accuracy across the static branches of the LCF dataset.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig3");
    reports::fig3_report(&cli.dataset()).emit(&cli);
}
