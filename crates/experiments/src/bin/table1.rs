//! Table I: summary statistics of the SPECint 2017 dataset under
//! TAGE-SC-L 8KB, over multiple application inputs per benchmark.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("table1");
    reports::table1_report(&cli.dataset()).emit(&cli);
}
