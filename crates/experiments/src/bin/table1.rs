//! Table I: summary statistics of the SPECint 2017 dataset under
//! TAGE-SC-L 8KB, over multiple application inputs per benchmark.

use bp_core::{characterize_workload, f3, pct, Table};
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let mut table = Table::new(vec![
        "benchmark",
        "avg-phases",
        "static-br-total",
        "static-br-med/slice",
        "avg-acc",
        "acc-excl-h2p",
        "inputs",
        "h2p-total",
        "h2p-3+inputs",
        "h2p-avg/input",
        "h2p-avg/slice",
        "h2p-execs/slice",
        "h2p-mispred-share",
    ]);
    let mut means = [0.0f64; 12];
    let suite = specint_suite();
    for spec in &suite {
        let c = characterize_workload(spec, &cfg, TageScL::kb8);
        let cells = [
            c.avg_phases,
            c.total_static_branches as f64,
            c.median_static_per_slice as f64,
            c.avg_accuracy,
            c.avg_accuracy_excl_h2p,
            f64::from(cfg.inputs_for(spec.inputs)),
            c.h2p_union.len() as f64,
            c.h2p_3plus_inputs as f64,
            c.avg_h2p_per_input,
            c.avg_h2p_per_slice,
            c.avg_h2p_execs_per_slice,
            c.avg_h2p_mispredict_share,
        ];
        for (m, v) in means.iter_mut().zip(cells) {
            *m += v / suite.len() as f64;
        }
        table.row(vec![
            c.name.clone(),
            format!("{:.1}", cells[0]),
            format!("{}", c.total_static_branches),
            format!("{}", c.median_static_per_slice),
            f3(cells[3]),
            f3(cells[4]),
            format!("{}", cells[5] as u64),
            format!("{}", c.h2p_union.len()),
            format!("{}", c.h2p_3plus_inputs),
            format!("{:.1}", cells[8]),
            format!("{:.1}", cells[9]),
            format!("{:.0}", cells[10]),
            pct(cells[11]),
        ]);
    }
    table.row(vec![
        "MEAN".into(),
        format!("{:.1}", means[0]),
        format!("{:.0}", means[1]),
        format!("{:.0}", means[2]),
        f3(means[3]),
        f3(means[4]),
        format!("{:.1}", means[5]),
        format!("{:.0}", means[6]),
        format!("{:.1}", means[7]),
        format!("{:.1}", means[8]),
        format!("{:.1}", means[9]),
        format!("{:.0}", means[10]),
        pct(means[11]),
    ]);
    cli.emit(
        "Table I: SPECint 2017 dataset summary (TAGE-SC-L 8KB)",
        "table1",
        &table,
    );
}
