//! Fig. 7: fraction of the TAGE8→perfect IPC gap closed by scaling
//! TAGE-SC-L storage from 8KB to 1024KB, at each pipeline scale, for the
//! LCF applications.

use bp_core::{storage_scaling_study, Table};
use bp_experiments::Cli;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let study = storage_scaling_study(&lcf_suite(), &cfg);
    for (si, &scale) in study.scales.iter().enumerate() {
        let mut headers = vec!["application".to_owned()];
        headers.extend(study.storages_kb.iter().map(|kb| format!("TAGE{kb}")));
        let mut table = Table::new(headers.iter().map(String::as_str).collect());
        let mut maxima = 0.0f64;
        for row in &study.rows {
            let mut cells = vec![row.name.clone()];
            for &v in &row.gap_closed[si] {
                cells.push(format!("{v:.3}"));
                maxima = maxima.max(v);
            }
            table.row(cells);
        }
        cli.emit(
            &format!("Fig. 7 ({scale}x pipeline): fraction of TAGE8→perfect IPC gap closed"),
            &format!("fig7_{scale}x"),
            &table,
        );
        if scale == 32 {
            println!(
                "max fraction closed at 32x: {:.2} (paper: at most 0.34 — storage alone cannot rescue rare branches)",
                maxima
            );
        }
    }
}
