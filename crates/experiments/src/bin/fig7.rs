//! Fig. 7: fraction of the TAGE8→perfect IPC gap closed by scaling
//! TAGE-SC-L storage from 8KB to 1024KB, at each pipeline scale, for the
//! LCF applications.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig7");
    reports::fig7_report(&cli.dataset()).emit(&cli);
}
