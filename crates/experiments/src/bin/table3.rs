//! Table III: dependency-branch statistics for the top H2P heavy hitter
//! of each SPECint benchmark (operand dependency graph over the prior
//! 5,000 instructions).

use bp_analysis::{
    rank_heavy_hitters, BranchProfile, DependencyAnalysis, H2pCriteria, DEFAULT_WINDOW,
};
use bp_core::Table;
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("table3");
    let cfg = cli.dataset();
    let mut table = Table::new(vec![
        "benchmark",
        "top-h2p-ip",
        "dep-branches",
        "min-hist-pos",
        "max-hist-pos",
    ]);
    for spec in &specint_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        // Screen H2Ps per slice, merge, rank by executions.
        let mut bpu = TageScL::kb8();
        let criteria = H2pCriteria::paper();
        let mut merged = BranchProfile::new();
        let mut h2ps = std::collections::HashSet::new();
        for slice in trace.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
            merged.merge(&p);
        }
        let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
        let Some(top) = hitters.first() else {
            table.row(vec![
                spec.name.clone(),
                "-".into(),
                "0".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let dep = DependencyAnalysis::new(&trace);
        let report = dep.analyze(&trace, top.ip, DEFAULT_WINDOW, 256);
        table.row(vec![
            spec.name.clone(),
            format!("{:#x}", top.ip),
            format!("{}", report.dep_branch_count()),
            report
                .min_position()
                .map_or("-".into(), |p| p.to_string()),
            report
                .max_position()
                .map_or("-".into(), |p| p.to_string()),
        ]);
    }
    cli.emit(
        "Table III: dependency branches of the top H2P heavy hitter (window 5,000 instructions)",
        "table3",
        &table,
    );
}
