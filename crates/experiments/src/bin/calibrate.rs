//! Calibration probe: prints per-workload TAGE-SC-L accuracy and branch
//! statistics so suite parameters can be tuned against Table I / Table II.

use bp_predictors::{measure, TageScL};
use bp_workloads::{lcf_suite, specint_suite};
use std::collections::HashMap;

fn main() {
    let _run = bp_metrics::RunGuard::begin("calibrate");
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    println!(
        "{:<18} {:>9} {:>10} {:>8} {:>10} {:>8}",
        "workload", "branches", "static-ips", "acc", "execs/ip", "br-dens"
    );
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let trace = spec.cached_trace(0, len);
        let mut per_ip: HashMap<u64, u64> = HashMap::new();
        for b in trace.conditional_branches() {
            *per_ip.entry(b.ip).or_default() += 1;
        }
        let mut bpu = TageScL::kb8();
        let stats = measure(&mut bpu, &trace);
        println!(
            "{:<18} {:>9} {:>10} {:>8.4} {:>10.1} {:>8.3}",
            spec.name,
            stats.total,
            per_ip.len(),
            stats.accuracy(),
            stats.total as f64 / per_ip.len() as f64,
            stats.total as f64 / trace.len() as f64,
        );
    }
}
