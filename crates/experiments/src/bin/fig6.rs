//! Fig. 6: history-position distributions of dependency branches for the
//! top H2P heavy hitter — any given dependency branch appears at many
//! different positions, with highly non-uniform likelihood.

use bp_analysis::{
    rank_heavy_hitters, BranchProfile, DependencyAnalysis, H2pCriteria, DEFAULT_WINDOW,
};
use bp_core::Table;
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig6");
    let cfg = cli.dataset();
    for spec in &specint_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let criteria = H2pCriteria::paper();
        let mut merged = BranchProfile::new();
        let mut h2ps = std::collections::HashSet::new();
        for slice in trace.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
            merged.merge(&p);
        }
        let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
        let Some(top) = hitters.first() else {
            println!("\n== Fig. 6 {}: no H2P found ==", spec.name);
            continue;
        };
        let dep = DependencyAnalysis::new(&trace);
        let report = dep.analyze(&trace, top.ip, DEFAULT_WINDOW, 256);

        // Summarize per dependency branch: how many distinct positions,
        // and the occurrence-weighted position span.
        let mut per_ip: std::collections::HashMap<u64, (usize, usize, usize, u64)> =
            std::collections::HashMap::new();
        for (&(ip, pos), &count) in &report.occurrences {
            let e = per_ip.entry(ip).or_insert((usize::MAX, 0, 0, 0));
            e.0 = e.0.min(pos);
            e.1 = e.1.max(pos);
            e.2 += 1; // distinct positions
            e.3 += count;
        }
        let mut rows: Vec<_> = per_ip.into_iter().collect();
        rows.sort_by_key(|(_, v)| std::cmp::Reverse(v.3));
        let mut table = Table::new(vec![
            "dep-branch-ip",
            "distinct-positions",
            "min-pos",
            "max-pos",
            "occurrences",
        ]);
        for (ip, (min, max, distinct, occ)) in rows.into_iter().take(12) {
            table.row(vec![
                format!("{ip:#x}"),
                format!("{distinct}"),
                format!("{min}"),
                format!("{max}"),
                format!("{occ}"),
            ]);
        }
        cli.emit(
            &format!(
                "Fig. 6 {}: dependency-branch history positions for H2P {:#x} ({} executions)",
                spec.name, top.ip, report.executions
            ),
            &format!("fig6_{}", spec.name.replace('.', "_")),
            &table,
        );
    }
}
