//! Table II: summary branch statistics of the large-code-footprint
//! applications under TAGE-SC-L 8KB (single trace per application).

use bp_analysis::{BranchProfile, H2pCriteria};
use bp_core::{f3, Table};
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_trace::SliceConfig;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let mut table = Table::new(vec![
        "application",
        "static-branch-ips",
        "avg-execs/static",
        "avg-acc/static",
        "h2ps",
        "agg-acc",
    ]);
    let mut means = [0.0f64; 4];
    let suite = lcf_suite();
    for spec in &suite {
        // The paper analyzes each LCF app as one 30M-instruction trace;
        // we use the whole trace as a single slice.
        let trace = spec.cached_trace(0, cfg.trace_len);
        let whole = SliceConfig::new(cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let profile = BranchProfile::collect(&mut bpu, trace.insts());
        let h2ps = H2pCriteria::paper().screen(&profile, whole);
        let cells = [
            profile.static_branch_count() as f64,
            profile.mean_execs_per_static_branch(),
            profile.mean_accuracy_per_static_branch(),
            h2ps.len() as f64,
        ];
        for (m, v) in means.iter_mut().zip(cells) {
            *m += v / suite.len() as f64;
        }
        table.row(vec![
            spec.name.clone(),
            format!("{}", profile.static_branch_count()),
            format!("{:.1}", cells[1]),
            f3(cells[2]),
            format!("{}", h2ps.len()),
            f3(profile.accuracy()),
        ]);
    }
    table.row(vec![
        "MEAN".into(),
        format!("{:.0}", means[0]),
        format!("{:.1}", means[1]),
        f3(means[2]),
        format!("{:.1}", means[3]),
        String::new(),
    ]);
    cli.emit(
        "Table II: LCF application branch statistics (TAGE-SC-L 8KB)",
        "table2",
        &table,
    );
    println!(
        "(paper means: 14,072 static IPs; 612.8 execs/static; 0.85 accuracy; 5.2 H2Ps — \
         static counts scale with trace length, ratios should match)"
    );
}
