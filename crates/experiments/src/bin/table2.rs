//! Table II: summary branch statistics of the large-code-footprint
//! applications under TAGE-SC-L 8KB (single trace per application).

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("table2");
    reports::table2_report(&cli.dataset()).emit(&cli);
}
