//! Fig. 8: fraction of the TAGE8 IPC opportunity that remains even after
//! perfectly predicting every branch with more than 1,000 (or 100)
//! dynamic executions — the remainder is attributable to rare branches.

use bp_core::{rare_oracle_study, Table};
use bp_experiments::Cli;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    let rows = rare_oracle_study(&lcf_suite(), &cfg);
    let mut table = Table::new(vec![
        "application",
        "remaining after perfect >1000",
        "remaining after perfect >100",
    ]);
    let mut m1000 = 0.0;
    let mut m100 = 0.0;
    for r in &rows {
        m1000 += r.remaining_after_1000 / rows.len() as f64;
        m100 += r.remaining_after_100 / rows.len() as f64;
        table.row(vec![
            r.name.clone(),
            format!("{:.3}", r.remaining_after_1000),
            format!("{:.3}", r.remaining_after_100),
        ]);
    }
    table.row(vec![
        "MEAN".into(),
        format!("{m1000:.3}"),
        format!("{m100:.3}"),
    ]);
    cli.emit(
        "Fig. 8: fraction of TAGE8 IPC opportunity remaining (TAGE-SC-L 1024KB + exec-count oracle)",
        "fig8",
        &table,
    );
    println!("(paper means: 34.3% after perfect >1000; 27.4% after perfect >100)");
}
