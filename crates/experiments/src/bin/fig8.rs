//! Fig. 8: fraction of the TAGE8 IPC opportunity that remains even after
//! perfectly predicting every branch with more than 1,000 (or 100)
//! dynamic executions — the remainder is attributable to rare branches.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig8");
    reports::fig8_report(&cli.dataset()).emit(&cli);
}
