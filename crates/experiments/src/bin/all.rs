//! Runs every experiment binary in sequence (same CLI flags forwarded).

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5", "table3", "fig6",
        "alloc_stats", "fig7", "fig8", "fig9", "fig10", "helpers", "ablation",
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let dir = self_path.parent().expect("exe dir");
    for bin in bins {
        println!("\n########## {bin} ##########");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
}
