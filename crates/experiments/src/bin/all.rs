//! Runs every experiment binary in sequence (same CLI flags forwarded).
//!
//! The binaries are separate processes, so the in-memory `TraceStore`
//! cannot be shared between them; instead `all` points every child at one
//! `BRANCH_LAB_TRACE_DIR` (defaulting to `out/traces`) so each workload
//! trace is interpreted once and then loaded from disk by every later
//! binary. An explicit `BRANCH_LAB_TRACE_DIR` in the environment wins.
//!
//! With `BRANCH_LAB_METRICS` pointing at a sink directory, each child
//! writes its own run manifest there; after all children succeed, `all`
//! merges them into one `<sink>/all.json`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = std::env::var("BRANCH_LAB_TRACE_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .unwrap_or_else(|| "out/traces".to_owned());
    let bins = [
        "table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5", "table3", "fig6",
        "alloc_stats", "fig7", "fig8", "fig9", "fig10", "helpers", "ablation",
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let dir = self_path.parent().expect("exe dir");
    for bin in bins {
        println!("\n########## {bin} ##########");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .env("BRANCH_LAB_TRACE_DIR", &trace_dir)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    merge_manifests(&bins);
}

/// Merges the children's per-run manifests into `<sink>/all.json`.
/// Silent no-op when metrics are off; merge problems go to stderr only,
/// so stdout stays byte-identical with and without metrics.
fn merge_manifests(bins: &[&str]) {
    let Some(sink) = bp_metrics::sink_dir() else { return };
    let mut runs = Vec::new();
    for bin in bins {
        let path = sink.join(format!("{bin}.json"));
        match std::fs::read_to_string(&path) {
            Ok(s) => runs.push(s),
            Err(e) => eprintln!("bp-metrics: missing manifest {}: {e}", path.display()),
        }
    }
    match bp_metrics::merge_manifests(&runs) {
        Ok(merged) => {
            let path = sink.join("all.json");
            if let Err(e) = std::fs::write(&path, merged + "\n") {
                eprintln!("bp-metrics: failed to write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("bp-metrics: failed to merge manifests: {e}"),
    }
}
