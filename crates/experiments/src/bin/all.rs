//! Runs every experiment binary in sequence (same CLI flags forwarded).
//!
//! The binaries are separate processes, so the in-memory `TraceStore`
//! cannot be shared between them; instead `all` points every child at one
//! `BRANCH_LAB_TRACE_DIR` (defaulting to `out/traces`) so each workload
//! trace is interpreted once and then loaded from disk by every later
//! binary. An explicit `BRANCH_LAB_TRACE_DIR` in the environment wins.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_dir = std::env::var("BRANCH_LAB_TRACE_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .unwrap_or_else(|| "out/traces".to_owned());
    let bins = [
        "table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5", "table3", "fig6",
        "alloc_stats", "fig7", "fig8", "fig9", "fig10", "helpers", "ablation",
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let dir = self_path.parent().expect("exe dir");
    for bin in bins {
        println!("\n########## {bin} ##########");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .env("BRANCH_LAB_TRACE_DIR", &trace_dir)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
}
