//! Shim: `all` ≡ `branch-lab all`. The fault-tolerant sweep logic lives
//! in `bp_experiments::all_runner`, which derives its child list from
//! the study registry.

fn main() {
    bp_experiments::all_runner::run_from(std::env::args().skip(1).collect());
}
