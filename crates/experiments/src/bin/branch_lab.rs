//! The unified `branch-lab` CLI: `list` / `run <study>` / `all` /
//! `sweep`. See `bp_experiments::cli`.

fn main() {
    bp_experiments::cli::main();
}
