//! Debug probe: absolute IPC per scale for one workload under several
//! predictors, plus MPKI and cache behaviour.

use bp_pipeline::{simulate, PipelineConfig};
use bp_predictors::{misprediction_flags, PerfectPredictor, TageScL};
use bp_workloads::{lcf_suite, specint_suite};

fn main() {
    let _run = bp_metrics::RunGuard::begin("debug_ipc");
    let which = std::env::args().nth(1).unwrap_or_else(|| "1".into());
    let len: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let suite = specint_suite();
    let lcf = lcf_suite();
    let spec = match which.as_str() {
        s if s.starts_with("lcf") => &lcf[s[3..].parse::<usize>().unwrap_or(0)],
        s => &suite[s.parse::<usize>().unwrap_or(1)],
    };
    println!("workload {} len {len}", spec.name);
    let trace = spec.cached_trace(0, len);
    let mut tage = TageScL::kb8();
    let tage_flags = misprediction_flags(&mut tage, &trace);
    let perfect_flags = misprediction_flags(&mut PerfectPredictor, &trace);
    let mpki = tage_flags.iter().filter(|&&f| f).count() as f64 * 1000.0 / len as f64;
    println!("tage8 MPKI {mpki:.2}");
    for scale in PipelineConfig::SCALES {
        let cfg = PipelineConfig::skylake().scaled(scale);
        let t = simulate(&trace, &tage_flags, &cfg);
        let p = simulate(&trace, &perfect_flags, &cfg);
        println!(
            "{scale:>3}x  tage8 {:.3}  perfect {:.3}  ratio {:.3}",
            t.ipc(),
            p.ipc(),
            p.ipc() / t.ipc()
        );
    }
}
