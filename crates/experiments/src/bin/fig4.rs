//! Fig. 4: accuracy spread of rare branches — scatter summary and the
//! per-execution-bin standard deviation of accuracy.

use bp_analysis::{accuracy_spread_from_points, spread_points, BranchProfile};
use bp_core::Table;
use bp_experiments::Cli;
use bp_predictors::TageScL;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig4");
    let cfg = cli.dataset();
    let mut points = Vec::new();
    for spec in &lcf_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::kb8();
        let profile = BranchProfile::collect(&mut bpu, trace.insts());
        points.extend(spread_points(&profile));
    }
    let bins = accuracy_spread_from_points(&points, 100.0, 15_000.0);
    let mut table = Table::new(vec![
        "execs-bin (paper-equiv)",
        "branches",
        "mean-acc",
        "stddev-acc",
    ]);
    for b in &bins {
        table.row(vec![
            format!("{:.0}-{:.0}", b.lo, b.lo + 100.0),
            format!("{}", b.n),
            format!("{:.3}", b.mean),
            format!("{:.3}", b.stddev),
        ]);
    }
    cli.emit(
        "Fig. 4b: stddev of accuracy by dynamic-execution bin (LCF dataset)",
        "fig4",
        &table,
    );
    if let (Some(first), Some(second)) = (bins.first(), bins.get(1)) {
        println!(
            "first bin stddev {:.2} (paper: 0.35); second bin {:.2} (paper: 0.08)",
            first.stddev, second.stddev
        );
    }
}
