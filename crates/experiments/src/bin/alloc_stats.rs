//! §IV-A: TAGE-SC-L table-allocation statistics for H2P vs non-H2P
//! branches. The paper reports (64KB config): median 13,093 allocations /
//! 3,990 unique entries per H2P vs 4 / 4 per non-H2P, and a mean per-H2P
//! allocation share of 3.6% vs <0.01%.

use bp_analysis::{compute_alloc_stats, BranchProfile, H2pCriteria};
use bp_core::Table;
use bp_experiments::Cli;
use bp_predictors::{TageScL, TageSclConfig};
use bp_workloads::specint_suite;

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("alloc_stats");
    let cfg = cli.dataset();
    let mut table = Table::new(vec![
        "benchmark",
        "h2p-med-allocs",
        "h2p-med-unique",
        "other-med-allocs",
        "other-med-unique",
        "h2p-share",
        "other-share",
    ]);
    for spec in &specint_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let mut bpu = TageScL::new(TageSclConfig::storage_kb(64));
        bpu.enable_instrumentation();
        let criteria = H2pCriteria::paper();
        let mut h2ps = std::collections::HashSet::new();
        for slice in trace.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
        }
        let stats = compute_alloc_stats(bpu.tracker().expect("instrumented"), &h2ps);
        table.row(vec![
            spec.name.clone(),
            format!("{}", stats.h2p_median_allocations),
            format!("{}", stats.h2p_median_unique_entries),
            format!("{}", stats.other_median_allocations),
            format!("{}", stats.other_median_unique_entries),
            format!("{:.3}%", stats.h2p_mean_allocation_share * 100.0),
            format!("{:.4}%", stats.other_mean_allocation_share * 100.0),
        ]);
    }
    cli.emit(
        "§IV-A: TAGE-SC-L 64KB allocation statistics, H2P vs non-H2P",
        "alloc_stats",
        &table,
    );
    println!("(paper medians: H2P 13,093 allocs / 3,990 unique; non-H2P 4 / 4)");
}
