//! `serve_smoke` — a dependency-free HTTP client for exercising
//! `branch-lab serve` from tests and the CI chaos leg.
//!
//! ```text
//! serve_smoke --addr HOST:PORT --get /healthz
//! serve_smoke --addr HOST:PORT --post /run --body '{"study":"fig3","quick":true}'
//! serve_smoke --addr HOST:PORT --post /run --body '…' --concurrent 2
//! ```
//!
//! The response body goes to stdout (so CI can byte-diff it against the
//! equivalent CLI invocation); one status line per response goes to
//! stderr in the form
//! `serve_smoke: status=200 cache=miss key=0123456789abcdef`. With
//! `--concurrent K` the same request is fired from K threads at once and
//! the bodies are asserted identical — the singleflight check. Exit is
//! nonzero if any response status differs from `--expect` (default 200).
//!
//! Connection attempts retry (`--retries`, default 40 × 50 ms) so the
//! client can be started immediately after the server process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::Duration;

struct SmokeOptions {
    addr: String,
    method: String,
    path: String,
    body: String,
    concurrent: usize,
    expect: u16,
    retries: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_smoke --addr HOST:PORT (--get PATH | --post PATH --body JSON)\n\
         \x20                [--concurrent K] [--expect STATUS] [--retries N]"
    );
    exit(2);
}

fn parse_args() -> SmokeOptions {
    let mut opts = SmokeOptions {
        addr: String::new(),
        method: String::new(),
        path: String::new(),
        body: String::new(),
        concurrent: 1,
        expect: 200,
        retries: 40,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| {
            eprintln!("serve_smoke: {flag} needs a value");
            exit(2);
        });
        match a.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--get" => {
                opts.method = "GET".to_string();
                opts.path = value("--get");
            }
            "--post" => {
                opts.method = "POST".to_string();
                opts.path = value("--post");
            }
            "--body" => opts.body = value("--body"),
            "--concurrent" => {
                opts.concurrent = value("--concurrent").parse().unwrap_or_else(|_| usage());
            }
            "--expect" => opts.expect = value("--expect").parse().unwrap_or_else(|_| usage()),
            "--retries" => opts.retries = value("--retries").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if opts.addr.is_empty() || opts.method.is_empty() {
        usage();
    }
    opts
}

/// A parsed response: status plus the two cache headers and the body.
struct Reply {
    status: u16,
    cache: String,
    key: String,
    body: Vec<u8>,
}

/// Connects (with readiness retries), sends one request, reads the full
/// `Connection: close` response.
fn exchange(opts: &SmokeOptions) -> Result<Reply, String> {
    let mut stream = connect(&opts.addr, opts.retries)?;
    let request = format!(
        "{} {} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        opts.method,
        opts.path,
        opts.addr,
        opts.body.len()
    );
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.write_all(opts.body.as_bytes()))
        .map_err(|e| format!("send failed: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read failed: {e}"))?;
    parse_response(&raw)
}

fn connect(addr: &str, retries: u32) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..=retries {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt < retries {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    Err(format!("cannot connect to {addr}: {last}"))
}

fn parse_response(raw: &[u8]) -> Result<Reply, String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8")?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line}"))?;
    let mut cache = String::from("-");
    let mut key = String::from("-");
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "x-branch-lab-cache" => cache = value.trim().to_string(),
                "x-branch-lab-key" => key = value.trim().to_string(),
                _ => {}
            }
        }
    }
    Ok(Reply { status, cache, key, body })
}

fn main() {
    let opts = parse_args();
    let replies: Vec<Result<Reply, String>> = if opts.concurrent <= 1 {
        vec![exchange(&opts)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..opts.concurrent)
                .map(|_| scope.spawn(|| exchange(&opts)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("client thread panicked".into())))
                .collect()
        })
    };

    let mut failed = false;
    let mut first_body: Option<&[u8]> = None;
    for reply in &replies {
        match reply {
            Ok(r) => {
                eprintln!("serve_smoke: status={} cache={} key={}", r.status, r.cache, r.key);
                if r.status != opts.expect {
                    eprintln!(
                        "serve_smoke: expected status {}, got {}: {}",
                        opts.expect,
                        r.status,
                        String::from_utf8_lossy(&r.body).trim_end()
                    );
                    failed = true;
                }
                match first_body {
                    None => first_body = Some(&r.body),
                    Some(first) if first != r.body.as_slice() => {
                        eprintln!("serve_smoke: concurrent responses differ");
                        failed = true;
                    }
                    Some(_) => {}
                }
            }
            Err(e) => {
                eprintln!("serve_smoke: {e}");
                failed = true;
            }
        }
    }
    if let Some(body) = first_body {
        let mut out = std::io::stdout();
        let _ = out.write_all(body);
        let _ = out.flush();
    }
    if failed {
        exit(1);
    }
}
