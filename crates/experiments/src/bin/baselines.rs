//! §II context: the predictor landscape the paper surveys, compared on
//! our suites — bimodal, two-level local, gshare, tournament, perceptron,
//! PPM, and TAGE-SC-L, at comparable storage.

use bp_core::{f3, Table};
use bp_experiments::Cli;
use bp_predictors::{
    measure, Bimodal, GShare, Perceptron, Ppm, PpmConfig, TageScL, Tournament, TwoLevelLocal,
};
use bp_workloads::{lcf_suite, specint_suite};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("baselines");
    let cfg = cli.dataset();
    let mut table = Table::new(vec![
        "workload",
        "bimodal",
        "local",
        "gshare",
        "tournament",
        "perceptron",
        "ppm",
        "tage-sc-l-8kb",
    ]);
    let mut means = [0.0f64; 7];
    let mut n = 0.0f64;
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let accs = [
            measure(&mut Bimodal::new(12), &trace).accuracy(),
            measure(&mut TwoLevelLocal::new(11, 10), &trace).accuracy(),
            measure(&mut GShare::new(13, 16), &trace).accuracy(),
            measure(&mut Tournament::new(12), &trace).accuracy(),
            measure(&mut Perceptron::new(9, 32), &trace).accuracy(),
            measure(&mut Ppm::new(PpmConfig::default()), &trace).accuracy(),
            measure(&mut TageScL::kb8(), &trace).accuracy(),
        ];
        n += 1.0;
        for (m, a) in means.iter_mut().zip(accs) {
            *m += a;
        }
        let mut row = vec![spec.name.clone()];
        row.extend(accs.iter().map(|&a| f3(a)));
        table.row(row);
    }
    let mut row = vec!["MEAN".to_owned()];
    row.extend(means.iter().map(|&m| f3(m / n)));
    table.row(row);
    cli.emit(
        "Predictor generations on the branch-lab suites (§II survey context)",
        "baselines",
        &table,
    );
}
