//! Shim: `baselines` ≡ `branch-lab run baselines`. The study lives in
//! the registry (`bp_experiments::registry`); this binary exists so
//! scripted per-study invocations keep working unchanged.

fn main() {
    bp_experiments::cli::study_shim("baselines");
}
