//! §V helper-predictor study (the paper's proposed future direction,
//! exercised end-to-end):
//!
//! 1. Screen H2Ps on a SPECint-like benchmark's *training* inputs, train
//!    2-bit CNN helpers offline, deploy on a *held-out* input, and compare
//!    per-H2P accuracy and whole-trace accuracy/IPC against TAGE-SC-L 8KB.
//! 2. Train a phase-conditioned rare-branch helper on an LCF application
//!    and measure aggregate accuracy with and without it.

use bp_analysis::{rank_heavy_hitters, BranchProfile, H2pCriteria};
use bp_core::{f3, DatasetConfig, Table};
use bp_experiments::Cli;
use bp_helpers::{train_helper, HybridPredictor, PhaseHelper, PhaseHelperConfig, TrainerConfig};
use bp_pipeline::{run, PipelineConfig};
use bp_predictors::{measure, Predictor, TageScL};
use bp_trace::Trace;
use bp_workloads::{lcf_suite, specint_suite, WorkloadSpec};

fn per_ip_accuracy(predictor: &mut dyn bp_predictors::DirectionPredictor, trace: &Trace, ip: u64) -> f64 {
    let mut total = 0u64;
    let mut correct = 0u64;
    for b in trace.conditional_branches() {
        let pred = predictor.predict_and_train(b.ip, b.taken);
        if b.ip == ip {
            total += 1;
            correct += u64::from(pred == b.taken);
        }
    }
    correct as f64 / total.max(1) as f64
}

fn cnn_study(spec: &WorkloadSpec, cfg: &DatasetConfig, cli: &Cli) {
    println!("\n-- CNN helper study on {} --", spec.name);
    let train_inputs = 3.min(spec.inputs - 1);
    let train_traces: Vec<_> = (0..train_inputs)
        .map(|i| spec.cached_trace(i, cfg.trace_len))
        .collect();
    let held_out = spec.cached_trace(spec.inputs - 1, cfg.trace_len);

    // Screen H2Ps on the training traces.
    let criteria = H2pCriteria::paper();
    let mut h2ps = std::collections::HashSet::new();
    let mut merged = BranchProfile::new();
    for t in &train_traces {
        let mut bpu = TageScL::kb8();
        for slice in t.slices(cfg.slice) {
            let p = BranchProfile::collect(&mut bpu, slice);
            h2ps.extend(criteria.screen(&p, cfg.slice));
            merged.merge(&p);
        }
    }
    let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
    let targets: Vec<u64> = hitters.iter().take(8).map(|h| h.ip).collect();
    if targets.is_empty() {
        println!("no H2Ps found; skipping");
        return;
    }

    let tcfg = TrainerConfig::default();
    let helpers: Vec<_> = targets
        .iter()
        .map(|&ip| train_helper(&train_traces, ip, &tcfg))
        .collect();

    // Per-IP accuracy on the held-out input: TAGE alone vs hybrid.
    let mut table = Table::new(vec!["h2p-ip", "tage8-acc", "hybrid-acc", "delta"]);
    for (ip, helper) in targets.iter().zip(&helpers) {
        let tage_acc = per_ip_accuracy(&mut TageScL::kb8(), &held_out, *ip);
        let mut hybrid = HybridPredictor::new(TageScL::kb8());
        hybrid.attach_cnn(helper.clone());
        let hybrid_acc = per_ip_accuracy(&mut hybrid, &held_out, *ip);
        table.row(vec![
            format!("{ip:#x}"),
            f3(tage_acc),
            f3(hybrid_acc),
            format!("{:+.3}", hybrid_acc - tage_acc),
        ]);
    }
    cli.emit(
        &format!("per-H2P accuracy on held-out input ({})", spec.name),
        &format!("helpers_cnn_{}", spec.name.replace('.', "_")),
        &table,
    );

    // Whole-trace effect.
    let base_acc = measure(&mut TageScL::kb8(), &held_out).accuracy();
    let mut hybrid = HybridPredictor::new(TageScL::kb8());
    for h in helpers {
        hybrid.attach_cnn(h);
    }
    let hybrid_acc = measure(&mut hybrid, &held_out).accuracy();
    let pipe = PipelineConfig::skylake();
    let base_ipc = run(&held_out, &mut TageScL::kb8(), &pipe).ipc();
    let mut hybrid2 = hybrid.clone();
    let hybrid_ipc = run(&held_out, &mut hybrid2, &pipe).ipc();
    println!(
        "whole-trace: accuracy {:.4} -> {:.4}; IPC {:.3} -> {:.3} ({:+.1}%) with {} helpers ({} helper bits)",
        base_acc,
        hybrid_acc,
        base_ipc,
        hybrid_ipc,
        (hybrid_ipc / base_ipc - 1.0) * 100.0,
        hybrid.cnn_helper_count(),
        hybrid.storage_bits() - TageScL::kb8().storage_bits(),
    );
}

fn phase_study(spec: &WorkloadSpec, cfg: &DatasetConfig, cli: &Cli) {
    println!("\n-- phase-conditioned rare-branch helper on {} --", spec.name);
    // Offline training trace = one "prior invocation"; evaluation on a
    // longer fresh run (the paper: statistics aggregated over invocations).
    let train = spec.cached_trace(0, cfg.trace_len);
    let eval = spec.cached_trace(0, cfg.trace_len * 2);
    let helper = PhaseHelper::train(std::slice::from_ref(&train), PhaseHelperConfig::default());

    let base_acc = measure(&mut TageScL::kb8(), &eval).accuracy();
    let mut hybrid = HybridPredictor::new(TageScL::kb8());
    hybrid.attach_phase_helper(helper);
    let hybrid_acc = measure(&mut hybrid, &eval).accuracy();
    let mut table = Table::new(vec!["config", "accuracy"]);
    table.row(vec!["tage-sc-l-8kb".into(), f3(base_acc)]);
    table.row(vec!["tage + phase helper".into(), f3(hybrid_acc)]);
    cli.emit(
        &format!("rare-branch helper accuracy ({})", spec.name),
        &format!("helpers_phase_{}", spec.name),
        &table,
    );
}

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("helpers");
    let cfg = cli.dataset();
    for name in ["605.mcf_s", "641.leela_s"] {
        let suite = specint_suite();
        let spec = suite.iter().find(|s| s.name == name).expect("known spec");
        cnn_study(spec, &cfg, &cli);
    }
    let lcf = lcf_suite();
    phase_study(&lcf[1], &cfg, &cli); // game-like: rare-branch dominated
}
