//! Shim: `helpers` ≡ `branch-lab run helpers`. The study lives in the registry
//! (`bp_experiments::registry`); this binary exists so scripted
//! per-study invocations and the `all` runner keep working unchanged.

fn main() {
    bp_experiments::cli::study_shim("helpers");
}
