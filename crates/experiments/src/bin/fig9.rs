//! Fig. 9: distribution of median recurrence intervals of static branch
//! IPs in the LCF dataset — long-timescale phase behaviour exists and is
//! exploitable by helper predictors.

use bp_analysis::RecurrenceAnalysis;
use bp_core::Table;
use bp_experiments::Cli;
use bp_workloads::lcf_suite;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.dataset();
    // Pool per-IP medians across the whole dataset, as the paper does.
    let mut fractions_sum: Vec<f64> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut total_ips = 0u64;
    let napps = lcf_suite().len() as f64;
    for spec in &lcf_suite() {
        let trace = spec.cached_trace(0, cfg.trace_len);
        let rec = RecurrenceAnalysis::compute(&trace);
        let h = rec.histogram(trace.len() as u64);
        total_ips += h.total();
        if labels.is_empty() {
            labels = h.labels().to_vec();
            fractions_sum = vec![0.0; labels.len()];
        }
        for (acc, f) in fractions_sum.iter_mut().zip(h.fractions()) {
            *acc += f / napps;
        }
    }
    let mut table = Table::new(vec!["MRI bin (paper-equiv instructions)", "fraction of static IPs"]);
    for (label, frac) in labels.iter().zip(&fractions_sum) {
        table.row(vec![label.clone(), format!("{frac:.4}")]);
    }
    cli.emit(
        &format!("Fig. 9: median recurrence interval distribution over {total_ips} static IPs (LCF)"),
        "fig9",
        &table,
    );
    let peak = labels
        .iter()
        .zip(&fractions_sum)
        .skip(1) // ignore the singleton 0-1 bin, as the paper does
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(l, _)| l.clone())
        .unwrap_or_default();
    println!("peak bin (excluding singletons): {peak} (paper: 100K-1M)");
}
