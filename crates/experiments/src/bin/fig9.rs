//! Fig. 9: distribution of median recurrence intervals of static branch
//! IPs in the LCF dataset — long-timescale phase behaviour exists and is
//! exploitable by helper predictors.

use bp_experiments::{reports, Cli};

fn main() {
    let cli = Cli::parse();
    let _run = cli.metrics_run("fig9");
    reports::fig9_report(&cli.dataset()).emit(&cli);
}
