//! Registry-completeness and CLI golden-parity tests.
//!
//! The registry test pins the study list and its order: the `all`
//! runner's child sequence, the checkpoint format, and ci.sh's
//! summary-table expectations all depend on `report_names()` matching
//! the legacy hand-maintained BINS array exactly.
//!
//! The parity tests run the unified `branch-lab` CLI as a subprocess and
//! require its stdout to be byte-identical to the legacy golden fixtures
//! under `tests/golden/` (recorded from the standalone binaries), and to
//! the per-study shim binaries themselves.

use std::path::PathBuf;
use std::process::Command;

use bp_core::StudyKind;
use bp_experiments::registry::registry;

/// The legacy `all.rs` BINS array, verbatim. `report_names()` must keep
/// producing exactly this list: it is the `all` child sequence, the
/// checkpoint vocabulary, and what ci.sh's fault-injection leg greps.
const LEGACY_BINS: [&str; 16] = [
    "table1", "fig1", "fig2", "table2", "fig3", "fig4", "fig5", "table3", "fig6",
    "alloc_stats", "fig7", "fig8", "fig9", "fig10", "helpers", "ablation",
];

/// Every study fixture recorded from the legacy binaries at `--quick`
/// (plus `grid`, recorded from the single-pass study when it landed).
const GOLDEN: [&str; 10] = [
    "table1", "table2", "fig1", "fig2", "fig3", "fig5", "fig7", "fig8", "fig9", "grid",
];

#[test]
fn report_names_match_the_legacy_all_list() {
    assert_eq!(registry().report_names(), LEGACY_BINS);
}

#[test]
fn registry_covers_every_study_binary() {
    let reg = registry();
    // Full presentation order: the sixteen `all` children with the
    // standalone survey interleaved, then the probes.
    assert_eq!(
        reg.names(),
        vec![
            "table1", "fig1", "fig2", "table2", "baselines", "grid", "fig3", "fig4",
            "fig5", "table3", "fig6", "alloc_stats", "fig7", "fig8", "fig9", "fig10",
            "helpers", "ablation", "sampled", "calibrate", "debug_ipc",
        ]
    );
    for standalone in ["baselines", "grid", "sampled"] {
        assert_eq!(
            reg.get(standalone).unwrap().info().kind,
            StudyKind::Standalone
        );
    }
    for probe in ["calibrate", "debug_ipc"] {
        assert_eq!(reg.get(probe).unwrap().info().kind, StudyKind::Probe);
    }
    for study in reg.studies() {
        assert!(!study.info().title.is_empty(), "{}", study.info().name);
    }
}

/// Shared trace cache for the subprocess runs (honours the CI-provided
/// directory when set).
fn trace_dir() -> PathBuf {
    std::env::var_os("BRANCH_LAB_TRACE_DIR").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../../target/cli-test-traces")
        },
        PathBuf::from,
    )
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_branch-lab"))
        .args(args)
        .env("BRANCH_LAB_TRACE_DIR", trace_dir())
        .output()
        .expect("spawn branch-lab")
}

#[test]
fn cli_output_matches_the_legacy_golden_fixtures() {
    for name in GOLDEN {
        let out = run_cli(&["run", name, "--quick"]);
        assert!(
            out.status.success(),
            "branch-lab run {name} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden")
            .join(format!("{name}.txt"));
        let expected = std::fs::read_to_string(&fixture)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", fixture.display()));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            expected,
            "branch-lab run {name} --quick diverged from the legacy fixture"
        );
    }
}

#[test]
fn shim_binary_and_unified_cli_agree() {
    let shim = Command::new(env!("CARGO_BIN_EXE_fig1"))
        .arg("--quick")
        .env("BRANCH_LAB_TRACE_DIR", trace_dir())
        .output()
        .expect("spawn fig1 shim");
    let unified = run_cli(&["run", "fig1", "--quick"]);
    assert!(shim.status.success() && unified.status.success());
    assert_eq!(shim.stdout, unified.stdout);
}

#[test]
fn probe_studies_take_positional_arguments() {
    let out = run_cli(&["run", "calibrate", "60000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("workload"), "calibrate header missing");
    assert!(stdout.contains("game"), "calibrate rows missing");
}

#[test]
fn list_prints_every_study() {
    let out = run_cli(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for study in registry().studies() {
        assert!(stdout.contains(study.info().name));
    }
}

#[test]
fn unknown_study_exits_with_a_usage_error() {
    let out = run_cli(&["run", "fig99", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown study"));
}

#[test]
fn sweep_runs_a_single_pass_over_one_workload() {
    let out = run_cli(&[
        "sweep",
        "--workload",
        "streaming",
        "--predictors",
        "gshare,tage-sc-l-8kb,perfect",
        "--len",
        "30000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("one replay pass"));
    assert!(stdout.contains("tage-sc-l-8kb"));
    // The oracle lane must show perfect accuracy in the same table.
    assert!(stdout.contains("perfect     1.000"));
}

#[test]
fn help_is_the_single_flag_surface() {
    let out = run_cli(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--len N",
        "--quick",
        "--csv DIR",
        "--keep-going",
        "BRANCH_LAB_TRACE_DIR",
        "BRANCH_LAB_METRICS",
        "BRANCH_LAB_THREADS",
        "branch-lab sweep",
    ] {
        assert!(stdout.contains(needle), "help is missing {needle}");
    }
}
