//! Out-of-order pipeline timing model for `branch-lab`.
//!
//! Turns branch (mis)prediction streams into single-threaded IPC, closing
//! the loop from prediction accuracy to core performance as the paper does
//! with ChampSim (§I). See [`simulate`] for the model and
//! [`PipelineConfig`] for the Skylake-calibrated baseline and its 1x–32x
//! capacity scalings.
//!
//! # Examples
//!
//! ```
//! use bp_pipeline::{run, PipelineConfig};
//! use bp_predictors::{PerfectPredictor, TageScL};
//! use bp_workloads::specint_suite;
//!
//! let trace = specint_suite()[1].trace(0, 30_000);
//! let cfg = PipelineConfig::skylake();
//! let tage = run(&trace, &mut TageScL::kb8(), &cfg);
//! let perfect = run(&trace, &mut PerfectPredictor, &cfg);
//! // Perfect branch prediction never hurts.
//! assert!(perfect.ipc() >= tage.ipc());
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
pub mod lanes;
mod sampled;
mod scoreboard;
mod sweep;

pub use cache::{CacheConfig, CacheModel};
pub use config::PipelineConfig;
pub use sampled::{SampledReplay, SampledStats, SamplePlan, SampleSegment};
pub use scoreboard::{simulate, SimStats};
pub use sweep::{simulate_interleaved, InterleaveGroup, RangePreparer, SweepReplay};

use bp_predictors::{misprediction_flags, DirectionPredictor};
use bp_trace::Trace;

/// Convenience driver: runs `predictor` over the trace's conditional
/// branches, then simulates the pipeline with the resulting misprediction
/// stream.
#[must_use]
pub fn run(trace: &Trace, predictor: &mut dyn DirectionPredictor, config: &PipelineConfig) -> SimStats {
    let flags = misprediction_flags(predictor, trace);
    simulate(trace, &flags, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_predictors::{AlwaysTaken, PerfectPredictor, TageScL};
    use bp_workloads::{lcf_suite, specint_suite};

    #[test]
    fn predictor_quality_orders_ipc() {
        // A compute-bound workload (leela-like, cache-resident): prediction
        // quality translates directly into IPC. On memory-bound LCF apps
        // the ordering between weak predictors can invert, because a smart
        // predictor's *surviving* mispredictions sit on late-resolving
        // loads while a naive predictor's extra mispredictions hide under
        // memory stalls.
        let trace = specint_suite()[6].trace(0, 40_000);
        let cfg = PipelineConfig::skylake();
        let perfect = run(&trace, &mut PerfectPredictor, &cfg).ipc();
        let tage = run(&trace, &mut TageScL::kb8(), &cfg).ipc();
        let naive = run(&trace, &mut AlwaysTaken, &cfg).ipc();
        assert!(perfect > tage, "perfect {perfect} vs tage {tage}");
        assert!(tage > naive, "tage {tage} vs always-taken {naive}");
    }

    #[test]
    fn misprediction_gap_grows_with_scale() {
        // The IPC opportunity (perfect/tage) widens with pipeline scaling —
        // the paper's central Fig. 1 observation.
        let trace = lcf_suite()[1].trace(0, 60_000);
        let base = PipelineConfig::skylake();
        let gap_at = |scale: u32| {
            let cfg = base.scaled(scale);
            let perfect = run(&trace, &mut PerfectPredictor, &cfg).ipc();
            let tage = run(&trace, &mut TageScL::kb8(), &cfg).ipc();
            perfect / tage
        };
        let g1 = gap_at(1);
        let g8 = gap_at(8);
        assert!(g8 > g1, "gap should grow: 1x {g1:.3} vs 8x {g8:.3}");
    }
}
