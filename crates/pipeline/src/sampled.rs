//! SimPoint-style sampled replay: simulate only representative
//! intervals, reconstruct whole-trace MPKI/IPC by cluster weight.
//!
//! The paper's studies replay every branch of every trace; at the 10B
//! scale that is the cost every figure pays. [`SampledReplay`] instead
//! prepares only the representative intervals a clustering planner
//! selected (one medoid per phase, e.g. `bp_analysis::simpoint`), each
//! with an architectural warm-up prefix whose contribution is discarded
//! from the statistics, and combines the per-interval measurements into
//! a weighted whole-trace estimate with a reported confidence interval.
//!
//! The planner is deliberately decoupled: this module consumes a
//! [`SamplePlan`] (interval geometry plus `(interval, weight, spread)`
//! tuples) so the pipeline crate stays free of clustering and predictor
//! dependencies. The experiments layer trains predictors over each
//! segment's records ([`SampledReplay::segment_trace`]) exactly as it
//! would over a full trace.
//!
//! # Cost and memory model
//!
//! One streaming pass over the [`TraceReader`] extracts every segment's
//! records; peak memory and all replay work scale with the *sampled*
//! records (`segments × (warmup + interval)`), never the trace length.
//! The pass itself is O(trace) *time* but O(1) extra memory: it runs
//! the cache model and store-forwarding map over every record
//! ([`RangePreparer`] — *functional warming*), because a mid-trace
//! excerpt prepared cold would see systematically slower loads than the
//! full replay does. The same applies to predictor state:
//! [`SampledReplay::warmed_lanes`] trains the direction predictor over
//! the whole stream and collects misprediction flags only inside the
//! segments. Only the expensive part — pipeline replay, which dominates
//! full-trace studies — is confined to the sampled records.
//!
//! # Error model
//!
//! Warm-up is subtracted by replaying each segment twice — once whole,
//! once only its warm-up prefix — and differencing the counters; both
//! replays come from the same warmed pass, so the prefix latencies are
//! identical and the subtraction is exact. The residual boundary effect
//! (the pipeline starts from an empty scoreboard at the splice) is
//! covered by a fixed relative floor, and phase-internal dispersion by
//! a term proportional to the weighted mean BBV spread the planner
//! measured. The reconstruction-error suite (`tests/sampled_replay.rs`)
//! gates that the resulting MPKI interval contains the full-replay
//! golden across the workload suite; IPC bars are reported best-effort
//! (the scoreboard splice error does not shrink with spread, so they
//! carry a wider floor and are not gated).

use bp_predictors::DirectionPredictor;
use bp_trace::{ReadTraceError, RetiredInst, Trace, TraceReader};

use crate::config::PipelineConfig;
use crate::sweep::{RangePreparer, SweepReplay};

/// Relative half-width floor on the MPKI estimate: covers predictor
/// cold-start inside the warm-up prefix and interval-boundary effects.
const MPKI_REL_FLOOR: f64 = 0.025;

/// Relative half-width floor on the IPC estimate: MPKI's floor plus the
/// warm-up cycle-splice residual (the pipeline starts from an empty
/// scoreboard at each segment boundary instead of overlapping with the
/// preceding interval, a cycle error the warm-up subtraction only
/// partially cancels). IPC bars are reported but not gated — see the
/// error-model notes above.
const IPC_REL_FLOOR: f64 = 0.10;

/// Scale from weighted mean BBV spread (normalized-frequency space) to
/// relative error: clusters whose members sit further from their medoid
/// get proportionally wider bars. Calibrated against the full-replay
/// goldens of the 15-workload suite at the standard dataset scale so
/// every workload's MPKI interval contains its golden
/// (`branch-lab run sampled`); the binding workload leaves ~10% margin.
const SPREAD_COEFF: f64 = 3.5;

/// One representative interval in a [`SamplePlan`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleSegment {
    /// Index of the representative interval (interval `i` covers records
    /// `[i × interval_len, (i + 1) × interval_len)`).
    pub interval: usize,
    /// The represented cluster's share of all intervals; weights across
    /// the plan sum to 1.
    pub weight: f64,
    /// Mean BBV distance from cluster members to this representative
    /// (the planner's dispersion measure; widens the error bars).
    pub spread: f64,
}

/// Which intervals to replay, and how to weight them back together.
#[derive(Clone, Debug, PartialEq)]
pub struct SamplePlan {
    /// Interval length in instructions (the clustering granularity).
    pub interval_len: usize,
    /// Architectural warm-up prefix per segment, in instructions, taken
    /// from the records preceding the interval and discarded from the
    /// statistics. Clamped at the trace head.
    pub warmup: usize,
    /// The representative intervals, one per phase.
    pub segments: Vec<SampleSegment>,
}

/// A prepared representative segment: its records (for predictor
/// training), the whole-segment replay, and the warm-up-only replay
/// whose counters are subtracted back out.
struct PreparedSegment {
    seg: SampleSegment,
    trace: Trace,
    first_record: u64,
    warmup_records: usize,
    full: SweepReplay,
    warm: Option<SweepReplay>,
}

/// Sampled counterpart of [`SweepReplay`]: prepared representative
/// segments plus the weights that reconstruct whole-trace estimates.
pub struct SampledReplay {
    segments: Vec<PreparedSegment>,
    total_records: u64,
    sampled_records: u64,
}

impl SampledReplay {
    /// Extracts and prepares every planned segment in one streaming pass
    /// over `reader`.
    ///
    /// Segments beyond the end of the stream are dropped; a final
    /// segment the stream truncates is kept at its actual length (the
    /// planner derived the plan from the same stream, so its ragged-tail
    /// rule already matches).
    ///
    /// # Errors
    ///
    /// Propagates any [`ReadTraceError`] from the underlying stream.
    ///
    /// # Panics
    ///
    /// Panics if the plan's `interval_len` is zero.
    pub fn prepare<R: TraceReader>(
        mut reader: R,
        config: &PipelineConfig,
        plan: &SamplePlan,
    ) -> Result<Self, ReadTraceError> {
        assert!(plan.interval_len > 0, "interval length must be positive");
        let meta = reader.meta().clone();
        // Per-segment record ranges [lo, hi) and collection buffers.
        struct Pending {
            seg: SampleSegment,
            lo: u64,
            hi: u64,
            records: Vec<RetiredInst>,
        }
        let mut pending: Vec<Pending> = plan
            .segments
            .iter()
            .map(|&seg| {
                let start = (seg.interval * plan.interval_len) as u64;
                Pending {
                    seg,
                    lo: start.saturating_sub(plan.warmup as u64),
                    hi: start + plan.interval_len as u64,
                    records: Vec::new(),
                }
            })
            .collect();
        // Two prepared ranges per segment — the whole segment and its
        // warm-up prefix — share one functionally warmed pass: the cache
        // model and forwarding map train over *every* record, so a
        // mid-trace excerpt sees the load latencies the full replay
        // would, and the prefix replay stays a strict prefix of the full
        // one (identical latencies, so the warm-up subtraction is exact).
        let ranges: Vec<(u64, u64)> = pending
            .iter()
            .flat_map(|p| {
                let interval_start = (p.seg.interval * plan.interval_len) as u64;
                [(p.lo, p.hi), (p.lo, interval_start)]
            })
            .collect();
        let mut preparer = RangePreparer::new(config, &ranges);
        let mut offset = 0u64;
        while let Some(chunk) = reader.next_chunk()? {
            bp_metrics::cancel::checkpoint("sampled.prepare");
            preparer.feed(chunk);
            let end = offset + chunk.len() as u64;
            for p in &mut pending {
                // Warm-up prefixes may overlap a neighbouring segment's
                // interval, so every segment slices the chunk
                // independently.
                let lo = p.lo.max(offset);
                let hi = p.hi.min(end);
                if lo < hi {
                    let a = (lo - offset) as usize;
                    let b = (hi - offset) as usize;
                    p.records.extend_from_slice(&chunk[a..b]);
                }
            }
            offset = end;
        }
        let mut replays = preparer.finish().into_iter();
        let mut segments = Vec::with_capacity(pending.len());
        let mut sampled_records = 0u64;
        for p in pending {
            let full = replays.next().expect("one replay per planned range");
            let warm = replays.next().expect("one replay per planned range");
            if p.records.is_empty() {
                continue;
            }
            let interval_start = (p.seg.interval * plan.interval_len) as u64;
            let warmup_records = (interval_start - p.lo) as usize;
            let mut trace = Trace::new(meta.clone());
            for inst in &p.records {
                trace.push(*inst);
            }
            sampled_records += p.records.len() as u64;
            segments.push(PreparedSegment {
                seg: p.seg,
                trace,
                first_record: p.lo,
                warmup_records,
                full,
                warm: (!warm.is_empty()).then_some(warm),
            });
        }
        Ok(SampledReplay { segments, total_records: offset, sampled_records })
    }

    /// Number of prepared segments (dropped-at-EOF segments excluded).
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Records of segment `i` — warm-up prefix plus interval — for
    /// training predictors exactly as a full replay would.
    #[must_use]
    pub fn segment_trace(&self, i: usize) -> &Trace {
        &self.segments[i].trace
    }

    /// Conditional branches in segment `i` (warm-up plus interval); a
    /// flag stream for [`SampledReplay::simulate_weighted`] must have
    /// exactly this many entries.
    #[must_use]
    pub fn segment_branches(&self, i: usize) -> usize {
        self.segments[i].full.cond_branch_count()
    }

    /// Record range `[start, end)` of segment `i` in whole-stream
    /// coordinates (warm-up prefix included).
    #[must_use]
    pub fn segment_record_range(&self, i: usize) -> (u64, u64) {
        let p = &self.segments[i];
        (p.first_record, p.first_record + p.trace.len() as u64)
    }

    /// One functionally-warmed predictor pass: streams the *whole* trace
    /// through `predictor` — training it continuously, exactly as a full
    /// replay would — and collects one misprediction-flag lane per
    /// segment covering exactly that segment's records.
    ///
    /// This is the SimPoint warming discipline: predictor training is
    /// cheap and runs over everything (constant memory — nothing is
    /// buffered outside segment ranges), while the expensive pipeline
    /// replay happens only on the representatives. Without it each
    /// segment would replay under a cold predictor and the reconstruction
    /// would systematically overestimate MPKI.
    ///
    /// `reader` must stream the same trace the replay was prepared from;
    /// each returned lane then has exactly
    /// [`SampledReplay::segment_branches`] entries, ready for
    /// [`SampledReplay::simulate_weighted`].
    ///
    /// # Errors
    ///
    /// Propagates any [`ReadTraceError`] from the underlying stream.
    pub fn warmed_lanes<R: TraceReader>(
        &self,
        mut reader: R,
        predictor: &mut dyn DirectionPredictor,
    ) -> Result<Vec<Vec<bool>>, ReadTraceError> {
        let mut lanes: Vec<Vec<bool>> = self
            .segments
            .iter()
            .map(|p| Vec::with_capacity(p.full.cond_branch_count()))
            .collect();
        let ranges: Vec<(u64, u64)> =
            (0..self.segments.len()).map(|i| self.segment_record_range(i)).collect();
        let mut offset = 0u64;
        while let Some(chunk) = reader.next_chunk()? {
            bp_metrics::cancel::checkpoint("sampled.warm");
            for (j, inst) in chunk.iter().enumerate() {
                if !inst.is_conditional_branch() {
                    continue;
                }
                let taken = inst.branch.expect("conditional branch carries info").taken;
                let flag = predictor.predict_and_train(inst.ip, taken) != taken;
                let idx = offset + j as u64;
                // Warm-up prefixes may overlap a neighbouring interval,
                // so a branch can land in more than one lane.
                for (lane, &(lo, hi)) in lanes.iter_mut().zip(&ranges) {
                    if idx >= lo && idx < hi {
                        lane.push(flag);
                    }
                }
            }
            offset += chunk.len() as u64;
        }
        Ok(lanes)
    }

    /// Records consumed from the stream (the full trace length).
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Records extracted into segments — the work actually simulated.
    #[must_use]
    pub fn sampled_records(&self) -> u64 {
        self.sampled_records
    }

    /// Fraction of the trace actually simulated (warm-ups included).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.sampled_records as f64 / self.total_records as f64
        }
    }

    /// Replays every segment under its misprediction flags (one stream
    /// per segment, warm-up branches first), subtracts the warm-up
    /// prefix, and reconstructs weighted whole-trace estimates.
    ///
    /// # Panics
    ///
    /// Panics if `flags` does not hold one stream per segment or a
    /// stream's length differs from [`SampledReplay::segment_branches`].
    #[must_use]
    pub fn simulate_weighted(&self, flags: &[&[bool]], config: &PipelineConfig) -> SampledStats {
        assert_eq!(flags.len(), self.segments.len(), "one flag stream per segment");
        let mut est_insts = 0.0f64;
        let mut est_cycles = 0.0f64;
        let mut est_mispredicts = 0.0f64;
        let mut est_branches = 0.0f64;
        let mut weighted_spread = 0.0f64;
        let mut weight_total = 0.0f64;
        for (p, &lane) in self.segments.iter().zip(flags) {
            assert_eq!(
                lane.len(),
                p.full.cond_branch_count(),
                "flag stream length must match segment branches"
            );
            let full = p.full.simulate(lane, config);
            let (wi, wc, wb, wm) = match &p.warm {
                Some(warm) => {
                    let prefix = warm.simulate(&lane[..warm.cond_branch_count()], config);
                    (prefix.instructions, prefix.cycles, prefix.cond_branches, prefix.mispredictions)
                }
                None => (0, 0, 0, 0),
            };
            debug_assert_eq!(wi as usize, p.warmup_records);
            let w = p.seg.weight;
            est_insts += w * (full.instructions - wi) as f64;
            est_cycles += w * (full.cycles - wc) as f64;
            est_branches += w * (full.cond_branches - wb) as f64;
            est_mispredicts += w * (full.mispredictions - wm) as f64;
            weighted_spread += w * p.seg.spread;
            weight_total += w;
        }
        let mpki = if est_insts > 0.0 { est_mispredicts * 1000.0 / est_insts } else { 0.0 };
        let ipc = if est_cycles > 0.0 { est_insts / est_cycles } else { 0.0 };
        // Spread is weighted by the weights present (EOF-dropped
        // segments shrink the total), keeping the term a mean.
        let mean_spread = if weight_total > 0.0 { weighted_spread / weight_total } else { 0.0 };
        let dispersion = SPREAD_COEFF * mean_spread;
        SampledStats {
            mpki,
            mpki_half: (MPKI_REL_FLOOR + dispersion) * mpki,
            ipc,
            ipc_half: (IPC_REL_FLOOR + dispersion) * ipc,
            est_branches,
            segments: self.segments.len(),
            sampled_records: self.sampled_records,
            total_records: self.total_records,
        }
    }
}

/// Weighted whole-trace estimates with confidence half-widths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampledStats {
    /// Estimated mispredictions per kilo-instruction.
    pub mpki: f64,
    /// Half-width of the MPKI confidence interval.
    pub mpki_half: f64,
    /// Estimated instructions per cycle.
    pub ipc: f64,
    /// Half-width of the IPC confidence interval.
    pub ipc_half: f64,
    /// Weighted per-interval conditional-branch estimate (diagnostic).
    pub est_branches: f64,
    /// Segments replayed.
    pub segments: usize,
    /// Records extracted and simulated (warm-ups included).
    pub sampled_records: u64,
    /// Records in the full stream.
    pub total_records: u64,
}

impl SampledStats {
    /// Whether the MPKI interval `mpki ± mpki_half` contains `golden`.
    #[must_use]
    pub fn mpki_contains(&self, golden: f64) -> bool {
        (self.mpki - golden).abs() <= self.mpki_half
    }

    /// Whether the IPC interval `ipc ± ipc_half` contains `golden`.
    #[must_use]
    pub fn ipc_contains(&self, golden: f64) -> bool {
        (self.ipc - golden).abs() <= self.ipc_half
    }

    /// Fraction of the trace simulated.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_records == 0 {
            0.0
        } else {
            self.sampled_records as f64 / self.total_records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{InstClass, TraceMeta};

    fn synthetic(len: usize) -> Trace {
        let mut t = Trace::new(TraceMeta::new("sampled", 0));
        for i in 0..len {
            let ip = 0x40 + (i as u64 % 41) * 4;
            if i % 4 == 0 {
                t.push(RetiredInst::cond_branch(ip, i % 3 != 0, 0x800, Some(1), None));
            } else {
                t.push(RetiredInst::op(
                    ip,
                    InstClass::Alu,
                    Some(bp_trace::Reg::new(1)),
                    None,
                    Some(bp_trace::Reg::new(2)),
                    i as u64,
                ));
            }
        }
        t
    }

    fn plan_all(len: usize, interval: usize, warmup: usize) -> SamplePlan {
        // Every interval selected with equal weight: the reconstruction
        // must then equal a per-interval replay stitched together.
        let n = len / interval;
        SamplePlan {
            interval_len: interval,
            warmup,
            segments: (0..n)
                .map(|i| SampleSegment { interval: i, weight: 1.0 / n as f64, spread: 0.0 })
                .collect(),
        }
    }

    #[test]
    fn prepare_extracts_expected_ranges() {
        let t = synthetic(1000);
        let plan = SamplePlan {
            interval_len: 100,
            warmup: 30,
            segments: vec![
                SampleSegment { interval: 0, weight: 0.5, spread: 0.0 },
                SampleSegment { interval: 4, weight: 0.5, spread: 0.0 },
            ],
        };
        let cfg = PipelineConfig::skylake();
        let sr = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        assert_eq!(sr.num_segments(), 2);
        // Interval 0 has no room for warm-up; interval 4 gets 30 records.
        assert_eq!(sr.segment_trace(0).len(), 100);
        assert_eq!(sr.segment_trace(1).len(), 130);
        assert_eq!(sr.total_records(), 1000);
        assert_eq!(sr.sampled_records(), 230);
        assert_eq!(sr.segment_trace(1).insts(), &t.insts()[370..500]);
    }

    #[test]
    fn chunking_is_immaterial() {
        // The same plan over a re-chunked stream must extract identical
        // segments — chunk boundaries carry no meaning.
        struct Chunked<'a> {
            t: &'a Trace,
            at: usize,
            step: usize,
        }
        impl TraceReader for Chunked<'_> {
            fn meta(&self) -> &TraceMeta {
                self.t.meta()
            }
            fn len_hint(&self) -> Option<u64> {
                None
            }
            fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
                if self.at >= self.t.len() {
                    return Ok(None);
                }
                let end = (self.at + self.step).min(self.t.len());
                let chunk = &self.t.insts()[self.at..end];
                self.at = end;
                Ok(Some(chunk))
            }
        }
        let t = synthetic(997);
        let plan = SamplePlan {
            interval_len: 100,
            warmup: 25,
            segments: vec![
                SampleSegment { interval: 2, weight: 0.6, spread: 0.0 },
                SampleSegment { interval: 8, weight: 0.4, spread: 0.0 },
            ],
        };
        let cfg = PipelineConfig::skylake();
        let whole = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        for step in [1, 7, 64, 997] {
            let chunked = SampledReplay::prepare(Chunked { t: &t, at: 0, step }, &cfg, &plan).unwrap();
            assert_eq!(chunked.num_segments(), whole.num_segments());
            for i in 0..whole.num_segments() {
                assert_eq!(
                    chunked.segment_trace(i).insts(),
                    whole.segment_trace(i).insts(),
                    "step {step}, segment {i}"
                );
            }
        }
    }

    #[test]
    fn full_coverage_plan_reconstructs_exactly() {
        // With every interval selected, zero warm-up, and equal weights,
        // the weighted per-interval sums telescope into the exact
        // aggregate branch/instruction counts.
        let t = synthetic(800);
        let cfg = PipelineConfig::skylake();
        let plan = plan_all(800, 100, 0);
        let sr = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        let lanes: Vec<Vec<bool>> =
            (0..sr.num_segments()).map(|i| vec![false; sr.segment_branches(i)]).collect();
        let refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
        let stats = sr.simulate_weighted(&refs, &cfg);
        assert_eq!(stats.segments, 8);
        assert!((stats.coverage() - 1.0).abs() < 1e-12);
        // 8 intervals × weight 1/8 × 100 insts = mean interval = 100.
        assert!((stats.est_branches - 25.0).abs() < 1e-9);
        assert_eq!(stats.mpki, 0.0);
        assert!(stats.ipc > 0.0);
    }

    #[test]
    fn warmup_is_subtracted_from_the_estimate() {
        let t = synthetic(600);
        let cfg = PipelineConfig::skylake();
        let with = SamplePlan {
            interval_len: 100,
            warmup: 50,
            segments: vec![SampleSegment { interval: 3, weight: 1.0, spread: 0.0 }],
        };
        let sr = SampledReplay::prepare(t.reader(), &cfg, &with).unwrap();
        let lane = vec![true; sr.segment_branches(0)];
        let stats = sr.simulate_weighted(&[&lane], &cfg);
        // All flags set: interval mispredictions = interval branches =
        // 25 per 100-inst interval, never the warm-up's 12-13 extra.
        assert!((stats.est_branches - 25.0).abs() < 1e-9);
        assert!((stats.mpki - 250.0).abs() < 1e-9);
    }

    #[test]
    fn segments_past_eof_are_dropped() {
        let t = synthetic(300);
        let cfg = PipelineConfig::skylake();
        let plan = SamplePlan {
            interval_len: 100,
            warmup: 0,
            segments: vec![
                SampleSegment { interval: 1, weight: 0.5, spread: 0.0 },
                SampleSegment { interval: 9, weight: 0.5, spread: 0.0 },
            ],
        };
        let sr = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        assert_eq!(sr.num_segments(), 1);
    }

    #[test]
    fn error_bars_widen_with_spread() {
        let t = synthetic(400);
        let cfg = PipelineConfig::skylake();
        let mut plan = plan_all(400, 100, 0);
        let sr = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        let lanes: Vec<Vec<bool>> =
            (0..sr.num_segments()).map(|i| vec![true; sr.segment_branches(i)]).collect();
        let refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
        let tight = sr.simulate_weighted(&refs, &cfg);
        for s in &mut plan.segments {
            s.spread = 0.05;
        }
        let sr = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        let loose = sr.simulate_weighted(&refs, &cfg);
        assert!(loose.mpki_half > tight.mpki_half);
        assert!(loose.ipc_half > tight.ipc_half);
        assert!(tight.mpki_contains(tight.mpki));
    }

    #[test]
    #[should_panic(expected = "one flag stream per segment")]
    fn lane_count_mismatch_panics() {
        let t = synthetic(200);
        let cfg = PipelineConfig::skylake();
        let plan = plan_all(200, 100, 0);
        let sr = SampledReplay::prepare(t.reader(), &cfg, &plan).unwrap();
        let _ = sr.simulate_weighted(&[], &cfg);
    }
}
