//! The trace-driven out-of-order scoreboard timing model.
//!
//! A dependency-aware first-order model of a superscalar OoO core:
//!
//! * the front end inserts instructions into the window in program order at
//!   `fetch_width` per cycle, stalling when the ROB is full;
//! * execution is dataflow-limited — an instruction starts when its source
//!   registers (and, for loads, any earlier store to the same address) are
//!   ready, with per-class latencies;
//! * retirement is in order at `retire_width` per cycle;
//! * a mispredicted conditional branch redirects the front end: no younger
//!   instruction enters the window until the branch *resolves* (executes)
//!   plus a constant refill penalty.
//!
//! This captures exactly the mechanism behind the paper's Figs. 1/5/7:
//! with mispredictions present, scaling capacity saturates because fetch
//! keeps waiting on branch resolution, while perfect prediction scales.

use bp_metrics::Counter;
use bp_trace::{InstClass, Trace, NUM_REGS};

use crate::cache::CacheModel;
use crate::config::PipelineConfig;

/// Results of one timing simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Instructions simulated.
    pub instructions: u64,
    /// Total cycles to retire them all.
    pub cycles: u64,
    /// Dynamic conditional branches seen.
    pub cond_branches: u64,
    /// Mispredicted conditional branches (pipeline flushes).
    pub mispredictions: u64,
}

impl SimStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per kilo-instruction.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// `bp-metrics` handles for the scoreboard, resolved once per
/// [`simulate`] call in the `METRICS = true` instantiation only. The hot
/// loop accumulates plain locals; totals are flushed through the handles
/// at the end, so even the enabled path does nothing atomic per
/// instruction.
pub(crate) struct PipeCounters {
    pub(crate) sim_runs: Counter,
    pub(crate) instructions: Counter,
    pub(crate) cycles: Counter,
    pub(crate) flushes: Counter,
    pub(crate) refetch_bubbles: Counter,
    pub(crate) rob_stalls: Counter,
}

impl PipeCounters {
    pub(crate) fn get() -> Self {
        PipeCounters {
            sim_runs: Counter::get("pipeline.sim_runs"),
            instructions: Counter::get("pipeline.instructions"),
            cycles: Counter::get("pipeline.cycles"),
            flushes: Counter::get("pipeline.flushes"),
            refetch_bubbles: Counter::get("pipeline.refetch_bubble_cycles"),
            rob_stalls: Counter::get("pipeline.rob_stall_events"),
        }
    }
}

/// A deterministic open-addressed map from memory address to ready cycle,
/// used for store-to-load forwarding in the replay loop.
///
/// Replaces `std::collections::HashMap` on the hot path: `std`'s SipHash
/// costs tens of cycles per store/load and its growth policy allocates
/// during the loop. This map is preallocated from the trace length,
/// multiplicatively hashed, linearly probed, and never deletes — the
/// access pattern (`insert` overwrites per store, `get` per load) needs
/// exactly map semantics, so simulation results are unchanged.
#[derive(Clone, Debug)]
pub(crate) struct AddrMap {
    /// Keys stored offset by +1 so 0 marks an empty slot.
    keys: Vec<u64>,
    vals: Vec<u64>,
    mask: usize,
    len: usize,
    /// Value for `u64::MAX`, the one address the +1 offset can't encode.
    max_key_val: Option<u64>,
}

impl AddrMap {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        let size = cap.next_power_of_two().max(16);
        AddrMap {
            keys: vec![0; size],
            vals: vec![0; size],
            mask: size - 1,
            len: 0,
            max_key_val: None,
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    pub(crate) fn insert(&mut self, addr: u64, val: u64) {
        if addr == u64::MAX {
            self.max_key_val = Some(val);
            return;
        }
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let key = addr + 1;
        let mut i = self.slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = val;
                return;
            }
            if k == 0 {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    pub(crate) fn get(&self, addr: u64) -> Option<u64> {
        if addr == u64::MAX {
            return self.max_key_val;
        }
        let key = addr + 1;
        let mut i = self.slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == 0 {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_size = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_size]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_size]);
        self.mask = new_size - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                let mut i = self.slot(k);
                while self.keys[i] != 0 {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

/// A fixed-size ring of recent cycle timestamps, used for bandwidth and
/// ROB-occupancy constraints.
///
/// The replay loop touches each ring once per instruction in strict
/// sequence, so the ring keeps its own cursor and advances by one on each
/// `record` — an increment-and-compare instead of the `i % len` integer
/// division a position-indexed ring would cost (six divisions per
/// instruction across the three rings, measurable at replay rates).
#[derive(Clone, Debug)]
struct CycleRing {
    buf: Vec<u64>,
    cursor: usize,
}

impl CycleRing {
    fn new(len: usize) -> Self {
        CycleRing {
            buf: vec![0; len.max(1)],
            cursor: 0,
        }
    }

    /// Timestamp of the event `len` positions ago (0 if not yet seen):
    /// the slot the next `record` will overwrite.
    #[inline]
    fn oldest(&self) -> u64 {
        self.buf[self.cursor]
    }

    /// Records the current event's timestamp and advances the ring.
    #[inline]
    fn record(&mut self, cycle: u64) {
        self.buf[self.cursor] = cycle;
        self.cursor += 1;
        if self.cursor == self.buf.len() {
            self.cursor = 0;
        }
    }
}

/// Simulates `trace` with the given per-branch misprediction flags.
///
/// `mispredicted` must contain one entry per dynamic *conditional* branch
/// of the trace, in retirement order — exactly the output of
/// [`bp_predictors::misprediction_flags`].
///
/// # Panics
///
/// Panics if `mispredicted` has fewer entries than the trace has
/// conditional branches.
///
/// # Examples
///
/// ```
/// use bp_pipeline::{simulate, PipelineConfig};
/// use bp_predictors::{misprediction_flags, PerfectPredictor, AlwaysTaken};
/// use bp_workloads::specint_suite;
///
/// let trace = specint_suite()[1].trace(0, 20_000);
/// let cfg = PipelineConfig::skylake();
/// let perfect = simulate(&trace, &misprediction_flags(&mut PerfectPredictor, &trace), &cfg);
/// let poor = simulate(&trace, &misprediction_flags(&mut AlwaysTaken, &trace), &cfg);
/// assert!(perfect.ipc() > poor.ipc());
/// ```
#[must_use]
pub fn simulate(trace: &Trace, mispredicted: &[bool], config: &PipelineConfig) -> SimStats {
    // Monomorphize the hot loop on the metrics switch: the disabled
    // instantiation carries no accumulators at all, so replay throughput
    // with metrics off is identical to a build without observability.
    if bp_metrics::enabled() {
        simulate_impl::<true>(trace, mispredicted, config)
    } else {
        simulate_impl::<false>(trace, mispredicted, config)
    }
}

fn simulate_impl<const METRICS: bool>(
    trace: &Trace,
    mispredicted: &[bool],
    config: &PipelineConfig,
) -> SimStats {
    assert!(
        mispredicted.len() >= trace.conditional_branch_count(),
        "need one misprediction flag per conditional branch"
    );
    let n = trace.len() as u64;
    let mut stats = SimStats {
        instructions: n,
        ..SimStats::default()
    };
    if trace.is_empty() {
        return stats;
    }

    // Per-register ready cycles.
    let mut reg_ready = [0u64; NUM_REGS];
    // Data-cache model: load latency depends on the footprint.
    let mut cache = CacheModel::new(config.cache.clone());
    // Store-to-load forwarding through memory: ready cycle per word.
    // Starts small on purpose: store-free traces (common in the LCF
    // suite) then cost one 16KB table instead of a footprint-sized
    // allocation, and store-heavy traces reach their size in a dozen
    // amortized doublings.
    let mut mem_ready = AddrMap::with_capacity(1024);

    // Front-end bandwidth ring (fetch_width per cycle) and ROB ring.
    let mut fetch_ring = CycleRing::new(config.fetch_width as usize);
    let mut retire_ring = CycleRing::new(config.rob_size as usize);
    let mut retire_bw_ring = CycleRing::new(config.retire_width as usize);

    // Earliest cycle the front end may deliver the next instruction
    // (advanced by misprediction redirects).
    let mut fetch_base = 0u64;
    let mut last_retire = 0u64;
    let mut flag_idx = 0usize;

    // Observability accumulators (flushed to counters after the loop).
    // Keeping them live unconditionally costs register pressure in a loop
    // this tight, hence the METRICS monomorphization.
    let mut refetch_bubbles = 0u64;
    let mut rob_stalls = 0u64;

    for inst in trace.iter() {
        // Enter the window: front-end bandwidth, redirect stall, ROB space.
        let bw_enter = fetch_base.max(fetch_ring.oldest() + 1);
        let rob_free = retire_ring.oldest(); // ROB slot frees at old retire
        if METRICS {
            rob_stalls += u64::from(rob_free > bw_enter);
        }
        let enter = bw_enter.max(rob_free);
        fetch_ring.record(enter);

        // Dataflow: sources ready?
        let mut ready = enter;
        if let Some(r) = inst.src1 {
            ready = ready.max(reg_ready[r.index()]);
        }
        if let Some(r) = inst.src2 {
            ready = ready.max(reg_ready[r.index()]);
        }
        let latency = match inst.class {
            InstClass::Load => cache.access(inst.mem_addr),
            InstClass::Mul => config.mul_latency,
            InstClass::Store => {
                // Stores retire from the store buffer; they still allocate
                // the line so later loads hit.
                let _ = cache.access(inst.mem_addr);
                1
            }
            _ => 1,
        };
        let mut done = ready + u64::from(latency);
        match inst.class {
            InstClass::Load => {
                if let Some(m) = mem_ready.get(inst.mem_addr) {
                    done = done.max(m + 1);
                }
            }
            InstClass::Store => {
                mem_ready.insert(inst.mem_addr, done);
            }
            _ => {}
        }
        if let Some(r) = inst.dst {
            reg_ready[r.index()] = done;
        }

        // Branch handling: a mispredicted conditional branch stalls the
        // front end until it resolves plus the refill penalty.
        if inst.is_conditional_branch() {
            stats.cond_branches += 1;
            let wrong = mispredicted[flag_idx];
            flag_idx += 1;
            if wrong {
                stats.mispredictions += 1;
                let redirect = done + u64::from(config.mispredict_penalty);
                if METRICS {
                    // Front-end bubble: cycles fetch is held past the
                    // cycle after this branch entered the window.
                    refetch_bubbles += redirect.saturating_sub(enter + 1);
                }
                fetch_base = fetch_base.max(redirect);
            }
        }

        // In-order retirement with bandwidth.
        let retire = done
            .max(last_retire)
            .max(retire_bw_ring.oldest() + 1);
        retire_bw_ring.record(retire);
        retire_ring.record(retire);
        last_retire = retire;
    }

    // Finite L2/DRAM bandwidth floors total execution time; this is what
    // ultimately bounds perfect-BP pipeline scaling (Fig. 1's ceiling).
    stats.cycles = last_retire.max(cache.bandwidth_floor_cycles()).max(1);

    if METRICS {
        let counters = PipeCounters::get();
        counters.sim_runs.incr();
        counters.instructions.add(stats.instructions);
        counters.cycles.add(stats.cycles);
        counters.flushes.add(stats.mispredictions);
        counters.refetch_bubbles.add(refetch_bubbles);
        counters.rob_stalls.add(rob_stalls);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_trace::{RetiredInst, Reg, TraceMeta};

    fn cfg() -> PipelineConfig {
        PipelineConfig::skylake()
    }

    fn alu(ip: u64, src: Option<u8>, dst: Option<u8>) -> RetiredInst {
        RetiredInst::op(
            ip,
            InstClass::Alu,
            src.map(Reg::new),
            None,
            dst.map(Reg::new),
            0,
        )
    }

    #[test]
    fn independent_stream_hits_fetch_width() {
        // Independent ALU ops: IPC should approach fetch_width.
        let mut t = Trace::new(TraceMeta::new("ind", 0));
        for i in 0..40_000u64 {
            // Rotate destinations, never reading them.
            t.push(alu(i * 4, None, Some((i % 8) as u8)));
        }
        let s = simulate(&t, &[], &cfg());
        let ipc = s.ipc();
        assert!(
            (3.5..=4.0).contains(&ipc),
            "independent stream IPC {ipc} should approach 4"
        );
    }

    #[test]
    fn dependency_chain_serializes() {
        // r1 = r1 + 1 chain: IPC must be ~1 (1-cycle latency).
        let mut t = Trace::new(TraceMeta::new("chain", 0));
        for i in 0..10_000u64 {
            t.push(alu(i * 4, Some(1), Some(1)));
        }
        let s = simulate(&t, &[], &cfg());
        let ipc = s.ipc();
        assert!((0.9..=1.1).contains(&ipc), "chain IPC {ipc} should be ~1");
    }

    #[test]
    fn load_latency_slows_chains() {
        // A pointer-chasing-style chain through loads.
        let mut t = Trace::new(TraceMeta::new("loads", 0));
        for i in 0..10_000u64 {
            t.push(RetiredInst::mem(
                i * 4,
                InstClass::Load,
                (i % 64) * 8,
                Some(Reg::new(1)),
                None,
                Some(Reg::new(1)),
                0,
            ));
        }
        let s = simulate(&t, &[], &cfg());
        let ipc = s.ipc();
        // The 64-line working set fits L1 after warmup: chain IPC is
        // bounded by the L1 hit latency.
        let expect = 1.0 / f64::from(cfg().cache.l1_latency);
        assert!(
            (ipc - expect).abs() < 0.05,
            "load chain IPC {ipc}, expected ~{expect}"
        );
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let mut t = Trace::new(TraceMeta::new("br", 0));
        let mut flags = Vec::new();
        for i in 0..20_000u64 {
            if i % 10 == 0 {
                t.push(RetiredInst::cond_branch(i * 4, true, 0, Some(1), None));
                flags.push(i % 20 == 0); // every other branch mispredicted
            } else {
                t.push(alu(i * 4, None, Some((i % 8) as u8)));
            }
        }
        let with_miss = simulate(&t, &flags, &cfg());
        let no_miss = simulate(&t, &vec![false; flags.len()], &cfg());
        assert!(with_miss.cycles > no_miss.cycles * 2);
        assert_eq!(with_miss.mispredictions, 1000);
        assert_eq!(no_miss.mispredictions, 0);
    }

    #[test]
    fn perfect_prediction_scales_but_mispredicted_saturates() {
        // Mixed stream: branches every 8 instructions, all mispredicted in
        // one run, none in the other.
        let mut t = Trace::new(TraceMeta::new("scale", 0));
        let mut nbr = 0;
        for i in 0..40_000u64 {
            if i % 8 == 0 {
                t.push(RetiredInst::cond_branch(i * 4, true, 0, Some(1), None));
                nbr += 1;
            } else {
                t.push(alu(i * 4, None, Some((i % 8) as u8)));
            }
        }
        let base = cfg();
        let big = base.scaled(8);
        let all_wrong = vec![true; nbr];
        let none_wrong = vec![false; nbr];

        let perfect_1x = simulate(&t, &none_wrong, &base).ipc();
        let perfect_8x = simulate(&t, &none_wrong, &big).ipc();
        let bad_1x = simulate(&t, &all_wrong, &base).ipc();
        let bad_8x = simulate(&t, &all_wrong, &big).ipc();

        let perfect_gain = perfect_8x / perfect_1x;
        let bad_gain = bad_8x / bad_1x;
        assert!(perfect_gain > 3.0, "perfect should scale ({perfect_gain:.2}x)");
        assert!(bad_gain < 1.5, "mispredicted must saturate ({bad_gain:.2}x)");
    }

    #[test]
    fn store_load_forwarding_orders_memory() {
        // store to addr X, then a load from X: load can't finish before
        // the store's data is ready.
        let mut t = Trace::new(TraceMeta::new("stld", 0));
        // Long-latency producer chain for the store data.
        for i in 0..10u64 {
            t.push(RetiredInst::op(
                i * 4,
                InstClass::Mul,
                Some(Reg::new(2)),
                None,
                Some(Reg::new(2)),
                0,
            ));
        }
        t.push(RetiredInst::mem(
            100,
            InstClass::Store,
            0x40,
            Some(Reg::new(2)),
            None,
            None,
            0,
        ));
        t.push(RetiredInst::mem(
            104,
            InstClass::Load,
            0x40,
            None,
            None,
            Some(Reg::new(3)),
            0,
        ));
        let with_fwd = simulate(&t, &[], &cfg());
        // Without the store, the load would retire much earlier; total
        // cycles must reflect the mul chain (10 * 3 cycles) + forwarding.
        assert!(with_fwd.cycles >= 30);
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::new(TraceMeta::new("empty", 0));
        let s = simulate(&t, &[], &cfg());
        assert_eq!(s.instructions, 0);
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "misprediction flag")]
    fn missing_flags_panic() {
        let mut t = Trace::new(TraceMeta::new("b", 0));
        t.push(RetiredInst::cond_branch(4, true, 0, None, None));
        let _ = simulate(&t, &[], &cfg());
    }

    /// `AddrMap` must behave exactly like a `HashMap` for the scoreboard's
    /// access pattern (overwriting inserts + lookups), including through
    /// growth and at the `u64::MAX` sentinel boundary.
    #[test]
    fn addr_map_matches_hash_map() {
        let mut fast = AddrMap::with_capacity(4);
        let mut slow = std::collections::HashMap::new();
        let mut state = 99u64;
        for i in 0..50_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Mixed footprint with deliberate collisions and edge keys.
            let addr = match state % 5 {
                0 => state >> 40,
                1 => (state >> 30) & 0xFFF,
                2 => u64::MAX,
                3 => 0,
                _ => state,
            };
            if state.is_multiple_of(3) {
                fast.insert(addr, i);
                slow.insert(addr, i);
            } else {
                assert_eq!(fast.get(addr), slow.get(&addr).copied(), "addr {addr:#x}");
            }
        }
        assert_eq!(fast.len, slow.len() - usize::from(slow.contains_key(&u64::MAX)));
    }
}
