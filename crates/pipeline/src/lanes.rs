//! Explicit fixed-width SIMD lane vectors for lockstep replay.
//!
//! [`SweepReplay`](crate::SweepReplay) steps up to 16 independent
//! simulations through one pass over a prepared trace. All per-lane state
//! is held in [`LaneVec`] values — thin `[C; K]` wrappers whose
//! operations are written as straight-line per-lane loops that LLVM
//! reliably auto-vectorizes (`max`/`add`/`select` over 4–16 integer
//! lanes compile to packed vector instructions on any SIMD ISA the
//! target offers, with scalar fallback elsewhere; no intrinsics, no
//! `unsafe`).
//!
//! The module is public so the replay loop's primitives can be property
//! tested against per-lane scalar loops (see
//! `crates/pipeline/tests/lane_properties.rs`): every operation here is
//! required to be *exactly* the lane-wise lift of its scalar
//! counterpart, which is what makes a 16-lane replay bit-identical to 16
//! scalar replays.
//!
//! Lane *masks* are plain `u32` bit sets (bit `k` = lane `k`), so a
//! single integer test skips the masked path when no lane is affected —
//! the common case for well-trained predictors. `K` may not exceed
//! [`MAX_LANES`].

/// Maximum lanes per [`LaneVec`]: masks are `u32` bit sets.
pub const MAX_LANES: usize = 32;

/// A lane timestamp word: `u64`, or `u32` when a prepare-time bound
/// proves no timestamp can overflow it (see
/// [`SweepReplay`](crate::SweepReplay)).
///
/// Only the operations the replay loop performs are abstracted; all of
/// them are exact (never wrapping) for in-bound timestamps, so the two
/// widths produce bit-identical results.
pub trait CycleWord: Copy + Default + Ord + std::fmt::Debug {
    /// The constant 1, for the loop's `+ 1` steps.
    const ONE: Self;
    /// Converts from `u64`; the caller guarantees `v` fits.
    fn narrow(v: u64) -> Self;
    /// Converts back to `u64` (always lossless).
    fn widen(self) -> u64;
    /// Exact addition (caller-guaranteed not to overflow).
    fn add(self, rhs: Self) -> Self;
    /// Saturating subtraction, mirroring the scalar loop's
    /// `saturating_sub`.
    fn sub_sat(self, rhs: Self) -> Self;
}

macro_rules! impl_cycle_word {
    ($($ty:ty),*) => {$(
        impl CycleWord for $ty {
            const ONE: Self = 1;
            #[inline(always)]
            fn narrow(v: u64) -> Self {
                v as Self
            }
            #[inline(always)]
            fn widen(self) -> u64 {
                u64::from(self)
            }
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline(always)]
            fn sub_sat(self, rhs: Self) -> Self {
                self.saturating_sub(rhs)
            }
        }
    )*};
}

impl_cycle_word!(u32, u64);

/// `K` per-lane words stepped in lockstep.
///
/// Every method is the exact lane-wise lift of a scalar operation: lane
/// `k` of the result depends only on lane `k` of the inputs (and bit `k`
/// of a mask), never on its neighbours. `K` must be at most
/// [`MAX_LANES`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct LaneVec<C, const K: usize>(pub [C; K]);

impl<C: CycleWord, const K: usize> Default for LaneVec<C, K> {
    fn default() -> Self {
        LaneVec([C::default(); K])
    }
}

#[allow(clippy::needless_range_loop)] // index k runs over parallel lane arrays
impl<C: CycleWord, const K: usize> LaneVec<C, K> {
    /// Compile-time guard: masks are `u32`, so at most [`MAX_LANES`]
    /// lanes.
    const FITS_MASK: () = assert!(K <= MAX_LANES, "LaneVec is limited to MAX_LANES lanes");

    /// All lanes set to `v`.
    #[inline(always)]
    #[must_use]
    pub fn splat(v: C) -> Self {
        let () = Self::FITS_MASK;
        LaneVec([v; K])
    }

    /// Lane-wise maximum.
    #[inline(always)]
    #[must_use]
    pub fn max(self, rhs: Self) -> Self {
        let mut out = self;
        for k in 0..K {
            out.0[k] = if rhs.0[k] > out.0[k] { rhs.0[k] } else { out.0[k] };
        }
        out
    }

    /// Adds the scalar `rhs` to every lane (exact; the caller guarantees
    /// no overflow, as with [`CycleWord::add`]).
    #[inline(always)]
    #[must_use]
    pub fn add_scalar(self, rhs: C) -> Self {
        let mut out = self;
        for k in 0..K {
            out.0[k] = out.0[k].add(rhs);
        }
        out
    }

    /// Lane-wise saturating subtraction (`max(self - rhs, 0)` per lane).
    #[inline(always)]
    #[must_use]
    pub fn sub_sat(self, rhs: Self) -> Self {
        let mut out = self;
        for k in 0..K {
            out.0[k] = out.0[k].sub_sat(rhs.0[k]);
        }
        out
    }

    /// The masked saturating update: lanes whose mask bit is set take
    /// `max(self, rhs)`, all other lanes keep their value. This is the
    /// redirect-skip primitive — a mispredicting lane advances its
    /// front-end redirect base while correctly-predicting lanes are
    /// untouched.
    #[inline(always)]
    #[must_use]
    pub fn masked_max(self, mask: u32, rhs: Self) -> Self {
        let mut out = self;
        for k in 0..K {
            let take = mask & (1 << k) != 0 && rhs.0[k] > out.0[k];
            out.0[k] = if take { rhs.0[k] } else { out.0[k] };
        }
        out
    }

    /// Lane select: lanes whose mask bit is set come from `a`, the rest
    /// from `b`.
    #[inline(always)]
    #[must_use]
    pub fn select(mask: u32, a: Self, b: Self) -> Self {
        let mut out = b;
        for k in 0..K {
            if mask & (1 << k) != 0 {
                out.0[k] = a.0[k];
            }
        }
        out
    }

    /// Bit mask of lanes where `self > rhs`.
    #[inline(always)]
    #[must_use]
    pub fn gt_mask(self, rhs: Self) -> u32 {
        let mut m = 0u32;
        for k in 0..K {
            m |= u32::from(self.0[k] > rhs.0[k]) << k;
        }
        m
    }

    /// Widens every lane to `u64` (lossless).
    #[inline(always)]
    #[must_use]
    pub fn widen(self) -> LaneVec<u64, K> {
        let mut out = LaneVec([0u64; K]);
        for k in 0..K {
            out.0[k] = self.0[k].widen();
        }
        out
    }
}

#[allow(clippy::needless_range_loop)] // index k runs over parallel lane arrays
impl<const K: usize> LaneVec<u64, K> {
    /// Adds 1 to every lane whose mask bit is set — the lane-wise lift of
    /// `counter += u64::from(condition)`.
    #[inline(always)]
    pub fn add_mask_bits(&mut self, mask: u32) {
        for k in 0..K {
            self.0[k] += u64::from(mask & (1 << k) != 0);
        }
    }

    /// Adds `delta`'s lanes into the masked lanes only.
    #[inline(always)]
    pub fn add_masked(&mut self, mask: u32, delta: LaneVec<u64, K>) {
        for k in 0..K {
            if mask & (1 << k) != 0 {
                self.0[k] += delta.0[k];
            }
        }
    }

    /// Sum of all lanes.
    #[inline(always)]
    #[must_use]
    pub fn lane_sum(&self) -> u64 {
        self.0.iter().sum()
    }
}
